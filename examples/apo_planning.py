#!/usr/bin/env python
"""Deployment planning with APO (§5.3).

For each of the paper's five models, run Algorithm 1 against the calibrated
hardware catalog (T4 PipeStores, one V100 Tuner, 10 GbE) and print the
recommended partition point, PipeStore count, training time, and energy
efficiency — then show how the plan shifts on a slower network and on AWS
Inferentia PipeStores.

Run:  python examples/apo_planning.py
"""

from repro.analysis.tables import format_table
from repro.core.apo import plan_organization
from repro.core.partition import FinetunePlanConfig
from repro.models.catalog import ALL_MODELS, model_graph
from repro.sim.specs import INF1_2XLARGE, NetworkSpec, TEN_GBE


def plan_row(model_name: str, **kwargs):
    graph = model_graph(model_name)
    plan = plan_organization(graph, **kwargs)
    best = plan.most_energy_efficient()
    return [
        model_name,
        plan.split_label,
        plan.num_pipestores,
        plan.best.training_time_s / 60.0,
        best.num_pipestores,
        best.ips_per_kj,
    ]


HEADERS = ["model", "cut point", "APO stores", "train time (min)",
           "max-IPS/kJ stores", "IPS/kJ"]


def main() -> None:
    config = FinetunePlanConfig(dataset_images=1_200_000, num_runs=3)

    rows = [plan_row(m, config=config) for m in ALL_MODELS]
    print(format_table(HEADERS, rows,
                       title="APO plans (T4 PipeStores, V100 Tuner, 10 GbE)"))

    slow = NetworkSpec(gbps=1.0)
    rows = [plan_row(m, network=slow, config=config) for m in ALL_MODELS]
    print()
    print(format_table(HEADERS, rows,
                       title="APO plans on a 1 Gbps fabric (cuts go deeper)"))

    rows = [plan_row(m, store_server=INF1_2XLARGE, config=config)
            for m in ALL_MODELS]
    print()
    print(format_table(
        HEADERS, rows,
        title="APO plans with AWS Inferentia PipeStores (more, cheaper stores)",
    ))


if __name__ == "__main__":
    main()
