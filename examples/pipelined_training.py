#!/usr/bin/env python
"""Pipelined FT-DMP (§5.2, Fig. 17): the time/quality trade-off of N_run.

Splits a time-ordered upload stream into N_run sub-datasets, trains the
classifier run by run (for real, on the numpy substrate), audits every
run's starting loss against the Lemma 5.2 Hoeffding bound, and maps the
schedule onto the calibrated full-scale pipeline to show the paper's
~25% / ~33% wall-clock reductions.

Run:  python examples/pipelined_training.py
"""

from repro.analysis.accuracy import FAST, Scale, fig17_pipelined_training
from repro.analysis.tables import format_table
from repro.core.convergence import check_pipelined_losses, inter_run_loss_gap


def main() -> None:
    scale = Scale(train=500, test=350, finetune=360, base_epochs=4,
                  finetune_epochs=3, width=8)
    print("running pipelined FT-DMP for N_run in {1, 2, 3, 4} ...")
    out = fig17_pipelined_training(scale=scale, num_runs_list=(1, 2, 3, 4))

    rows = [
        [n, e["sim_time_s"], e["time_reduction_pct"], e["final_top1"] * 100]
        for n, e in sorted(out.items())
    ]
    print(format_table(
        ["N_run", "simulated time (s)", "time reduction %", "final top-1 %"],
        rows, title="pipelined FT-DMP (ResNet50, 4 PipeStores)",
    ))

    # Lemma 5.2 audit for the N_run=3 job.  The stream above is
    # *time-ordered*, which deliberately violates the paper's condition
    # (iii) ("sub-datasets used over different runs have similar
    # distributions") — so later runs may exceed the Hoeffding bound.
    # That is exactly why catastrophic forgetting appears at large N_run.
    losses = out[3]["losses_by_run"]
    verdicts = check_pipelined_losses(losses, num_weights=10_000,
                                      samples_per_run=scale.finetune // 3)
    gap = inter_run_loss_gap(10_000, scale.finetune // 3)
    print()
    print(format_table(
        ["run", "start loss", "end loss", "bound on start", "obeys Lemma 5.2"],
        [[v.run, v.start_loss, v.end_loss,
          "-" if v.start_bound == float("inf") else v.start_bound,
          v.satisfies_lemma] for v in verdicts],
        title=(f"convergence audit, Delta = {gap:.3f} "
               "(violations = drifted sub-datasets, i.e. condition (iii))"),
    ))


if __name__ == "__main__":
    main()
