#!/usr/bin/env python
"""Quickstart: stand up an NDPipe cluster and run its three flows.

Builds a 3-PipeStore cluster with a tiny ResNet50, ingests photos through
online inference, fine-tunes continuously with FT-DMP, redistributes the
model as a Check-N-Run delta, and refreshes labels with near-data offline
inference — printing the byte traffic that makes NDPipe's case.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.tables import format_bytes, format_table
from repro.core.cluster import NDPipeCluster
from repro.core.config import ClusterConfig
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.data.loader import normalize_images
from repro.models.registry import tiny_model
from repro.train.fulltrain import full_train


def main() -> None:
    # 1. a drifting photo world and a pre-trained base model
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))
    num_classes = world.config.max_classes

    base = tiny_model("ResNet50", num_classes=num_classes, width=8, seed=7)
    x0, y0 = world.sample(300, 0, rng=np.random.default_rng(1))
    print("training the day-0 base model ...")
    full_train(base, normalize_images(x0), y0, epochs=4, lr=3e-3, seed=0)
    base_state = base.state_dict()

    def factory():
        model = tiny_model("ResNet50", num_classes=num_classes, width=8,
                           seed=7)
        model.load_state_dict(base_state)
        return model

    # 2. the cluster: Tuner + PipeStores + inference server + label DB
    cluster = NDPipeCluster(factory, ClusterConfig(
        num_stores=3, nominal_raw_bytes=8192, lr=5e-3))

    # 3. ingest: online inference labels uploads, photos land near-data
    x_up, y_up = world.sample(150, 0, rng=np.random.default_rng(2))
    cluster.ingest(x_up, train_labels=y_up)
    print(f"ingested {len(cluster.database)} photos across "
          f"{len(cluster.stores)} PipeStores")

    # 4. two weeks later the distribution has drifted
    x_new, y_new = world.sample(150, 14, rng=np.random.default_rng(3))
    cluster.ingest(x_new, train_labels=y_new)

    x_test, y_test = world.sample(300, 14, rng=np.random.default_rng(4))
    before_top1, _ = cluster.evaluate(x_test, y_test)

    # 5. continuous training: pipelined FT-DMP + Check-N-Run deltas
    report = cluster.finetune(epochs=3, num_runs=2)
    after_top1, _ = cluster.evaluate(x_test, y_test)
    dist = cluster.tuner.distributions[-1]

    # 6. offline inference refreshes outdated labels near the data
    relabel = cluster.offline_relabel()

    print(format_table(
        ["metric", "value"],
        [
            ["top-1 before fine-tuning", f"{before_top1:.3f}"],
            ["top-1 after fine-tuning", f"{after_top1:.3f}"],
            ["images fine-tuned (FT-DMP)", report.images_extracted],
            ["labels refreshed offline", relabel.photos_processed],
            ["labels changed by the new model", relabel.labels_changed],
            ["model delta vs full model",
             f"{dist.reduction_factor:.1f}x smaller"],
        ],
        title="\nNDPipe quickstart results",
    ))

    kinds = cluster.traffic_summary()
    print(format_table(
        ["traffic kind", "bytes"],
        [[kind, format_bytes(num)] for kind, num in sorted(kinds.items())],
        title="\nnetwork traffic by kind (features & labels stay tiny)",
    ))


if __name__ == "__main__":
    main()
