#!/usr/bin/env python
"""Continuous training under drift — the §3.2 / Fig. 4 scenario.

Tracks a photo service over two simulated weeks with 1.78 %/day upload
growth and new categories appearing: an untouched model decays, NDPipe's
classifier fine-tuning holds accuracy, and biweekly full retraining sets
the (impractically expensive) upper bound.  Also prints what each update
costs on the calibrated full-scale hardware.

Run:  python examples/drift_continuous_training.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.data.datasets import IMAGENET1K_LIKE
from repro.models.catalog import model_graph
from repro.models.registry import tiny_model
from repro.sim.specs import TESLA_V100
from repro.workloads.scenarios import (
    DriftScenarioConfig,
    run_drift_scenario,
    train_base_model,
)


def main() -> None:
    world = IMAGENET1K_LIKE.world(seed=0)
    num_classes = world.config.max_classes
    config = DriftScenarioConfig(
        horizon_days=12, eval_every_days=4, train_size=500, test_size=350,
        base_epochs=4, finetune_epochs=3, finetune_size=350,
    )

    def factory():
        return tiny_model("ResNet50", num_classes=num_classes, width=8,
                          seed=0)

    print("training the shared day-0 base model ...")
    base = train_base_model(world, factory, config)
    base_state = base.state_dict()

    def cloned_factory():
        model = factory()
        model.load_state_dict(base_state)
        return model

    results = {}
    for strategy in ("outdated", "finetune", "full"):
        print(f"running strategy: {strategy} ...")
        results[strategy] = run_drift_scenario(
            world, factory, strategy, config, base_model=cloned_factory(),
        )

    days = [p.day for p in results["outdated"].points]
    rows = []
    for i, day in enumerate(days):
        rows.append([
            f"+{day}d" if day else "Base",
            results["outdated"].points[i].top1 * 100,
            results["finetune"].points[i].top1 * 100,
            results["full"].points[i].top1 * 100,
        ])
    print()
    print(format_table(
        ["day", "Outdated %", "NDPipe fine-tune %", "Full retrain %"],
        rows, title="top-1 accuracy under drift (ResNet50-tiny)",
    ))

    # what each maintenance round costs at full scale
    graph = model_graph("ResNet50")
    finetune_s = 1_200_000 / TESLA_V100.tail_train_ips(graph, 5)
    full_s = 90 * 1_200_000 / (2 * TESLA_V100.full_train_ips(graph))
    print()
    print(format_table(
        ["maintenance strategy", "full-scale time per update"],
        [
            ["NDPipe fine-tune (1.2M images)", f"{finetune_s / 60:.1f} min"],
            ["Full retrain (90 epochs)", f"{full_s / 3600:.1f} h"],
            ["speedup", f"{full_s / finetune_s:.0f}x (paper: >300x)"],
        ],
    ))


if __name__ == "__main__":
    main()
