#!/usr/bin/env python
"""Two weeks of production operation, end to end.

Drives the runnable NDPipe cluster through daily drifting uploads under a
scheduled maintenance policy: online inference labels every upload, the
Tuner fine-tunes every other day via FT-DMP, Check-N-Run deltas update
the fleet, and each update triggers a near-data relabel campaign.  The
daily log shows the whole §3.1 story in one table.

Run:  python examples/continuous_operation.py
"""

import numpy as np

from repro.analysis.tables import format_bytes, format_table
from repro.core.cluster import NDPipeCluster
from repro.core.config import ClusterConfig
from repro.core.driftdetect import ScheduledPolicy
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.data.loader import normalize_images
from repro.models.registry import tiny_model
from repro.train.fulltrain import full_train
from repro.workloads.continuous import run_continuous_operation


def main() -> None:
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=10, image_size=16, noise=0.32, seed=0,
    ))
    num_classes = world.config.max_classes

    print("training the day-0 base model ...")
    base = tiny_model("ResNet50", num_classes=num_classes, width=8, seed=2)
    x, y = world.sample(360, 0, rng=np.random.default_rng(1))
    full_train(base, normalize_images(x), y, epochs=4, lr=3e-3, seed=0)
    state = base.state_dict()

    def factory():
        model = tiny_model("ResNet50", num_classes=num_classes, width=8,
                           seed=2)
        model.load_state_dict(state)
        return model

    cluster = NDPipeCluster(factory, ClusterConfig(
        num_stores=3, nominal_raw_bytes=8192, lr=5e-3))
    print("running 14 days of operation (fine-tune every 2 days) ...")
    log = run_continuous_operation(
        cluster, world, ScheduledPolicy(period_days=2),
        horizon_days=14, uploads_per_day=30, eval_size=150,
        finetune_epochs=2, num_runs=2,
    )

    print()
    print(format_table(
        ["day", "uploads", "top-1 %", "fine-tuned", "labels refreshed",
         "stale labels"],
        [[d.day, d.uploads, d.top1 * 100, "yes" if d.fine_tuned else "-",
          d.labels_refreshed or "-", d.stale_labels] for d in log.days],
        title=f"continuous operation under policy '{log.policy}'",
    ))
    print(f"\nupdates: {log.updates}; mean top-1 {log.mean_top1 * 100:.1f}%")
    print(format_table(
        ["traffic kind", "bytes"],
        [[kind, format_bytes(num)]
         for kind, num in sorted(log.traffic_by_kind.items())],
        title="\ncumulative network traffic",
    ))


if __name__ == "__main__":
    main()
