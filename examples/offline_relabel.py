#!/usr/bin/env python
"""Offline relabelling campaign — the outdated-label problem (Table 1).

Runs the real near-data relabel flow on a tiny cluster (labels change after
a model update; only label bytes cross the network), then sizes a
planet-scale campaign on the calibrated catalog: relabelling a billion
photos under NDPipe vs the SRV baselines.

Run:  python examples/offline_relabel.py
"""

import numpy as np

from repro.analysis.tables import format_bytes, format_table
from repro.core.cluster import NDPipeCluster
from repro.core.config import ClusterConfig
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.data.loader import normalize_images
from repro.inference.offline import campaign_comparison
from repro.models.catalog import model_graph
from repro.models.registry import tiny_model
from repro.train.fulltrain import full_train


def runnable_demo() -> None:
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))
    nc = world.config.max_classes
    base = tiny_model("ResNet50", num_classes=nc, width=8, seed=3)
    x0, y0 = world.sample(260, 0, rng=np.random.default_rng(1))
    full_train(base, normalize_images(x0), y0, epochs=3, seed=0)
    state = base.state_dict()

    def factory():
        model = tiny_model("ResNet50", num_classes=nc, width=8, seed=3)
        model.load_state_dict(state)
        return model

    cluster = NDPipeCluster(factory, ClusterConfig(
        num_stores=3, nominal_raw_bytes=8192))
    x, y = world.sample(120, 0, rng=np.random.default_rng(2))
    cluster.ingest(x, train_labels=y)
    snapshot = cluster.database.snapshot_labels()

    # a model update makes the indexed labels stale
    x_new, y_new = world.sample(120, 10, rng=np.random.default_rng(3))
    cluster.ingest(x_new, train_labels=y_new)
    cluster.finetune(epochs=3)
    stats = cluster.offline_relabel()

    changed = cluster.database.fraction_changed_since(snapshot)
    print(format_table(
        ["metric", "value"],
        [
            ["photos relabelled near-data", stats.photos_processed],
            ["labels changed by the new model", stats.labels_changed],
            ["% of original labels fixed", f"{changed * 100:.1f}%"],
            ["label bytes on the wire", format_bytes(stats.label_bytes)],
        ],
        title="runnable relabel campaign (tiny cluster)",
    ))


def planet_scale_estimate() -> None:
    graph = model_graph("ResNet50")
    photos = 1_000_000_000
    out = campaign_comparison(graph, photos, num_stores=20)
    rows = []
    for name in ("SRV-P", "SRV-C", "SRV-I", "NDPipe"):
        est = out[name]
        rows.append([
            name,
            est.duration_s / 3600.0,
            est.energy_kj / 1e3,
            format_bytes(est.network_bytes),
        ])
    print()
    print(format_table(
        ["system", "duration (h)", "energy (MJ)", "network traffic"],
        rows,
        title="relabelling 1B photos (20 PipeStores vs 2xV100 host)",
    ))


if __name__ == "__main__":
    runnable_demo()
    planet_scale_estimate()
