#!/usr/bin/env python
"""NDPipe beyond photos (§7.1): video, audio, and document content.

Each medium is reduced near the data to something the NDPipe pipeline
already handles — key frames, spectrogram images, or small embeddings —
and the example quantifies what that saves in compute and network traffic.

Run:  python examples/media_extensions.py
"""

import numpy as np

from repro.analysis.tables import format_bytes, format_table
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.extensions.media import (
    AudioAdapter,
    DocumentAdapter,
    DocumentEncoder,
    VideoAdapter,
    synthesize_audio,
    synthesize_document,
    synthesize_video,
)
from repro.models.registry import tiny_model
from repro.nn.tensor import Tensor
from repro.storage.imageformat import preprocess


def video_demo(world, model) -> list:
    adapter = VideoAdapter(num_key_frames=4)
    video = synthesize_video(world, label=3, num_frames=24, seed=5)
    frames = adapter.prepare(video)
    logits = model(Tensor(np.stack([preprocess(f) for f in frames]))).data
    label, confidence = adapter.summarize(
        logits.argmax(axis=-1).tolist(), logits.max(axis=-1).tolist())
    saved = adapter.compute_saved_fraction(video)
    return ["video", f"{video.num_frames} frames -> 4 key frames",
            f"label {label} (conf {confidence:.2f})",
            f"{saved * 100:.0f}% inference compute saved"]


def audio_demo(model) -> list:
    adapter = AudioAdapter(image_size=16)
    audio = synthesize_audio(label=2, num_classes=8, seed=4)
    image = adapter.prepare(audio)
    logits = model(Tensor(preprocess(image)[None])).data[0]
    return ["audio", f"{format_bytes(audio.nominal_bytes)} waveform -> "
            "16x16 spectrogram", f"label {int(logits.argmax())}",
            "CNN reused unchanged (AST)"]


def document_demo() -> list:
    adapter = DocumentAdapter(DocumentEncoder(embedding_dim=64))
    text = synthesize_document(label=1, num_classes=4, length=600, seed=2)
    embedding = adapter.prepare(text)
    reduction = adapter.traffic_reduction(text)
    return ["document", f"{format_bytes(len(text.encode()))} text -> "
            f"{format_bytes(embedding.nbytes)} embedding",
            "classified Tuner-side", f"{reduction:.1f}x less traffic"]


def main() -> None:
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))
    model = tiny_model("ResNet50", num_classes=8, width=8, seed=1).eval()

    rows = [video_demo(world, model), audio_demo(model), document_demo()]
    print(format_table(
        ["medium", "near-data reduction", "result", "saving"],
        rows, title="NDPipe media extensions (§7.1)",
    ))


if __name__ == "__main__":
    main()
