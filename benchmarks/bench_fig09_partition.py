"""Fig. 9 — impact of layer offloading on data traffic and training time.

Paper: feature traffic falls as layers are offloaded (9.16 GB at +Conv5 for
1.2M ImageNet images), surges at +FC from weight sync, and training time is
minimised at +Conv5 with 4 PipeStores.
"""

from repro.analysis.perf import fig09_partition_sweep
from repro.analysis.tables import format_table


def test_fig09_partition_sweep(benchmark, report):
    rows = benchmark(fig09_partition_sweep)

    table = format_table(
        ["cut", "feature GB", "sync GB", "train time (s)", "store s",
         "tuner s", "sync s"],
        [[r["cut"], r["feature_traffic_gb"], r["sync_traffic_gb"],
          r["training_time_s"], r["store_time_s"], r["tuner_time_s"],
          r["sync_time_s"]] for r in rows],
        title="Fig. 9: ResNet50 partition sweep (4 PipeStores, 10 GbE, 1.2M imgs)",
    )
    report("fig09_partition", table)

    by_cut = {r["cut"]: r for r in rows}
    # +Conv5 minimises training time (paper's headline for this figure)
    best = min(rows, key=lambda r: r["training_time_s"])
    assert best["cut"] == "+Conv5"
    # ~9.16 GB feature traffic at +Conv5 (we compute 9.8 GB at fp32)
    assert 8.0 < by_cut["+Conv5"]["feature_traffic_gb"] < 11.0
    # the +FC sync surge
    assert by_cut["+FC"]["sync_traffic_gb"] > 5 * (
        by_cut["+Conv5"]["feature_traffic_gb"])
    assert by_cut["+FC"]["training_time_s"] > by_cut["+Conv5"]["training_time_s"]
