"""Ablation: offline inference and fine-tuning sharing one fleet.

The paper's PipeStore handles both near-data jobs on the same hardware
(§5); operators will overlap a relabelling campaign with a continuous-
training round.  The event-driven simulation quantifies the interference
across fleet sizes: both jobs slow down, but total work is conserved —
the accelerator is simply time-shared.
"""

from repro.analysis.tables import format_table
from repro.models.catalog import model_graph
from repro.sim.cluster_sim import simulate_mixed_workload


def run_sweep():
    graph = model_graph("ResNet50")
    rows = []
    for stores in (2, 4, 8):
        res = simulate_mixed_workload(graph, stores, 150_000, 150_000)
        rows.append({
            "stores": stores,
            "inf_s": res.inference.makespan_s,
            "inf_solo_s": res.inference_solo_s,
            "inf_slowdown": res.inference_slowdown,
            "ft_s": res.finetune.makespan_s,
            "ft_solo_s": res.finetune_solo_s,
            "ft_slowdown": res.finetune_slowdown,
            "accel_util": res.inference.utilization_of("store0-accel"),
        })
    return rows


def test_ablation_mixed_workload(benchmark, report):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    table = format_table(
        ["#stores", "inference s (shared)", "inference s (solo)",
         "slowdown", "fine-tune s (shared)", "fine-tune s (solo)",
         "slowdown", "accel util"],
        [[r["stores"], r["inf_s"], r["inf_solo_s"], r["inf_slowdown"],
          r["ft_s"], r["ft_solo_s"], r["ft_slowdown"], r["accel_util"]]
         for r in rows],
        title=("Ablation: concurrent relabel + fine-tune on shared "
               "PipeStores (ResNet50, 150K images each)"),
    )
    report("ablation_mixed", table)

    for r in rows:
        # contention slows the latency-visible job but never deadlocks
        assert 1.0 <= r["inf_slowdown"] < 3.0
        assert 1.0 <= r["ft_slowdown"] < 3.0
        # the shared accelerator stays near-saturated — time-sharing, not
        # waste (at large fleets the Tuner's trailing epoch lowers the
        # store-side fraction of the measured window slightly)
        assert r["accel_util"] > 0.8
