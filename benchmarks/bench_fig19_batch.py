"""Fig. 19 — impact of batch size on PipeStore inference throughput.

Paper: throughput is poor at batch 1 (idle GPU), saturates around 128,
InceptionV3 hits the 2-core decompression wall past 128, and ViT OOMs at
large batches on the 16 GB T4.
"""

from repro.analysis.perf import fig19_batch_sweep
from repro.analysis.tables import format_table


def test_fig19_batch_sweep(benchmark, report):
    rows = benchmark(fig19_batch_sweep)

    table = format_table(
        ["model", "batch", "IPS", "bottleneck"],
        [[r["model"], r["batch"],
          "OOM" if r["oom"] else f"{r['ips']:.0f}", r["bottleneck"]]
         for r in rows],
        title="Fig. 19: per-PipeStore inference throughput vs batch size",
    )
    report("fig19_batch", table)

    by_model = {}
    for r in rows:
        by_model.setdefault(r["model"], {})[r["batch"]] = r

    # batch-1 underutilisation, saturation by 128 (small models suffer the
    # launch overhead most; big models are compute-heavy even at batch 1)
    for model, batches in by_model.items():
        if not batches[128]["oom"]:
            assert batches[1]["ips"] < 0.5 * batches[128]["ips"], model
    assert by_model["ResNet50"][1]["ips"] < 0.2 * by_model["ResNet50"][128]["ips"]
    # ViT OOM at >= 256 based on its activation footprint
    assert by_model["ViT"][512]["oom"]
    assert not by_model["ViT"][128]["oom"]
    # InceptionV3 decompression wall beyond 128
    assert by_model["InceptionV3"][512]["bottleneck"] == "Decomp."
