"""Fig. 13 — offline-inference throughput scaling across four models.

Paper: NDPipe scales linearly in PipeStores (per-store IPS 2129 / 2439 /
449 / 277); it matches SRV-P at P1, SRV-C at P2 (4-7 stores), and SRV-I
(two V100s) at P3 (5-7 stores).  For ResNeXt101/ViT the host GPUs are the
SRV bottleneck, so the three SRV variants collapse together.
"""

from repro.analysis.perf import fig13_inference_scaling
from repro.analysis.tables import format_table


def test_fig13_inference_scaling(benchmark, report):
    out = benchmark(fig13_inference_scaling)

    parts = []
    for model, data in out.items():
        rows = [
            [n, data["ndpipe_ips"][n] / 1e3] for n in (1, 2, 4, 8, 12, 16, 20)
        ]
        table = format_table(
            ["#PipeStores", "NDPipe KIPS"], rows,
            title=(f"Fig. 13 [{model}]  SRV-I/P/C = "
                   f"{data['srv_ips']['SRV-I'] / 1e3:.2f} / "
                   f"{data['srv_ips']['SRV-P'] / 1e3:.2f} / "
                   f"{data['srv_ips']['SRV-C'] / 1e3:.2f} KIPS"),
        )
        crossings = data["crossovers"]
        table += (f"\nper-store {data['per_store_ips']:.0f} IPS; crossovers "
                  f"P1={crossings['P1']} P2={crossings['P2']} "
                  f"P3={crossings['P3']}")
        parts.append(table)
    report("fig13_inference", "\n\n".join(parts))

    for model, data in out.items():
        nd = data["ndpipe_ips"]
        assert nd[20] > 19 * nd[1] * 0.99, model  # linear scaling
        assert data["crossovers"]["P3"] is not None, model
        assert 5 <= data["crossovers"]["P3"] <= 8, model
