"""Table 2 — model accuracy matrix: Base / Outdated / NDPipe / Full.

Paper: across 5 models x 3 datasets, NDPipe beats Outdated everywhere
(avg +1.7 top-1), trails Full slightly (avg -2.3 top-1), and the dataset
difficulty ordering is CIFAR100 > ImageNet-1K > ImageNet-21K.  The ViT /
ImageNet-21K Full cell is omitted like the paper's.
"""

import numpy as np

from repro.analysis.accuracy import tab02_accuracy_matrix
from repro.analysis.tables import format_table


def test_tab02_accuracy_matrix(benchmark, report, bench_scale):
    rows = benchmark.pedantic(
        lambda: tab02_accuracy_matrix(scale=bench_scale),
        iterations=1, rounds=1,
    )

    table = format_table(
        ["dataset", "model", "Base t1", "Base t5", "Outdated t1",
         "Outdated t5", "NDPipe t1", "NDPipe t5", "Full t1", "Full t5"],
        [[r["dataset"], r["model"],
          r["base_top1"] * 100, r["base_top5"] * 100,
          r["outdated_top1"] * 100, r["outdated_top5"] * 100,
          r["ndpipe_top1"] * 100, r["ndpipe_top5"] * 100,
          r["full_top1"] * 100, r["full_top5"] * 100] for r in rows],
        title="Table 2: accuracy (%) after two weeks of drift",
    )

    nd_gain = np.mean([r["ndpipe_top1"] - r["outdated_top1"] for r in rows])
    full_gap = np.nanmean([r["full_top1"] - r["ndpipe_top1"] for r in rows])
    table += (f"\nNDPipe vs Outdated: {nd_gain * 100:+.1f} top-1 on average "
              "(paper: +1.7); "
              f"Full vs NDPipe: {full_gap * 100:+.1f} (paper: +2.3)")
    report("tab02_accuracy", table)

    # NDPipe recovers accuracy relative to the outdated model on average
    if bench_scale.train >= 400:  # statistically meaningful scales only
        assert nd_gain > 0.0
    # top-5 always >= top-1
    for r in rows:
        assert r["ndpipe_top5"] >= r["ndpipe_top1"]
    # the ViT / ImageNet-21K Full cell is absent, like the paper
    vit_21k = next(r for r in rows
                   if r["model"] == "ViT" and r["dataset"] == "ImageNet-21K")
    assert np.isnan(vit_21k["full_top1"])
    # dataset difficulty ordering (averaged over models, Base top-1)
    if bench_scale.train >= 400:
        by_dataset = {}
        for r in rows:
            by_dataset.setdefault(r["dataset"], []).append(r["base_top1"])
        means = {d: np.mean(v) for d, v in by_dataset.items()}
        assert means["CIFAR100"] > means["ImageNet-1K"] > means["ImageNet-21K"]
