"""Ablation: Check-N-Run delta distribution vs alternatives.

The paper reports up to 427.4x traffic reduction from shipping compressed
deltas instead of whole models.  This ablation measures, with real zlib on
ResNet50-shaped state dicts, how the reduction decomposes: shipping only
changed tensors, deflate, and quantisation — and what quantisation costs
in weight error.
"""

import numpy as np

from repro.analysis.tables import format_bytes, format_table
from repro.core.checknrun import apply_delta, delta_stats, encode_delta


def make_states(seed: int = 0):
    """A ResNet50-shaped fp32 state where only the classifier changed."""
    rng = np.random.default_rng(seed)
    old = {
        "backbone.conv": rng.normal(0, 0.05, size=(5_880_000,)).astype(np.float32),
        "classifier.weight": rng.normal(0, 0.05, size=(2048, 250)).astype(np.float32),
        "classifier.bias": np.zeros(250, dtype=np.float32),
    }
    new = {k: v.copy() for k, v in old.items()}
    new["classifier.weight"] = (
        new["classifier.weight"]
        + rng.normal(0, 0.003, size=new["classifier.weight"].shape)
        .astype(np.float32))
    new["classifier.bias"] = new["classifier.bias"] + 0.001
    return old, new


def run_ablation():
    old, new = make_states()
    rows = []
    for bits in (None, 16, 8, 4):
        stats = delta_stats(old, new, quantize_bits=bits)
        blob = encode_delta(old, new, quantize_bits=bits)
        rebuilt = apply_delta(old, blob)
        err = max(
            float(np.abs(rebuilt[k] - new[k]).max()) for k in new
        )
        rows.append({
            "mode": "exact" if bits is None else f"{bits}-bit",
            "delta_bytes": stats.delta_bytes,
            "reduction": stats.reduction_factor,
            "max_weight_error": err,
        })
    return rows


def test_ablation_checknrun(benchmark, report):
    rows = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    old, new = make_states()
    full = delta_stats(old, new).full_model_bytes
    table = format_table(
        ["delta mode", "bytes on wire", "reduction vs full model",
         "max weight error"],
        [[r["mode"], format_bytes(r["delta_bytes"]),
          f"{r['reduction']:.1f}x", f"{r['max_weight_error']:.2e}"]
         for r in rows],
        title=(f"Ablation: Check-N-Run delta encoding "
               f"(full model {format_bytes(full)}; paper: up to 427.4x)"),
    )
    report("ablation_checknrun", table)

    by_mode = {r["mode"]: r for r in rows}
    # exact deltas are bit-faithful
    assert by_mode["exact"]["max_weight_error"] == 0.0
    # quantisation buys more reduction at bounded error
    assert (by_mode["8-bit"]["reduction"]
            > by_mode["exact"]["reduction"])
    assert by_mode["8-bit"]["max_weight_error"] < 1e-3
    # the headline: >40x even exact, >100x quantised on this shape
    assert by_mode["exact"]["reduction"] > 10
    assert by_mode["8-bit"]["reduction"] > 25
