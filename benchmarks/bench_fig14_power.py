"""Fig. 14 — inference power breakdown (GPU / CPU / other) at P1, P2, P3.

Paper: at matched throughput NDPipe draws less power than SRV-P (1.83x
average efficiency gain) and SRV-C (1.39x), and stays competitive with the
impractical SRV-I thanks to the commodity GPUs' efficiency.
"""

import numpy as np

from repro.analysis.perf import fig14_power_breakdown
from repro.analysis.tables import format_table
from repro.models.catalog import FIGURE_MODELS


def test_fig14_power_breakdown(benchmark, report):
    rows = benchmark(fig14_power_breakdown)

    table = format_table(
        ["point", "system", "GPU W", "CPU W", "other W", "total W", "IPS",
         "IPS/W"],
        [[r["operating_point"], r["system"], r["gpu_w"], r["cpu_w"],
          r["other_w"], r["total_w"], r["ips"], r["ips_per_w"]]
         for r in rows],
        title="Fig. 14: power breakdown at matched throughput (ResNet50)",
    )

    # average efficiency gains across the four figure models
    gains = {"P1": [], "P2": [], "P3": []}
    for model in FIGURE_MODELS:
        model_rows = fig14_power_breakdown(model)
        for i in range(0, len(model_rows), 2):
            point = model_rows[i]["operating_point"]
            gains[point].append(
                model_rows[i + 1]["ips_per_w"] / model_rows[i]["ips_per_w"])
    summary = "; ".join(
        f"{point} avg gain {np.mean(vals):.2f}x" for point, vals in gains.items()
    )
    table += ("\n4-model average NDPipe power-efficiency gain: " + summary
              + "\n(paper: 1.83x vs SRV-P, 1.39x vs SRV-C, >1x vs SRV-I)")
    report("fig14_power", table)

    assert np.mean(gains["P1"]) > np.mean(gains["P2"]) > 1.2
    assert np.mean(gains["P3"]) > 0.95
