"""Ablation: pipelined vs unpipelined FT-DMP on the event-driven cluster.

Beyond Fig. 17's accuracy story, this quantifies the §5.2 design choice
purely in systems terms on the DES: run-count sweep, agreement with the
closed-form pipeline model, and the NPE buffer-depth sensitivity (deep
queues are pointless once stages are balanced).
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.partition import FinetunePlanConfig, evaluate_partition
from repro.models.catalog import model_graph
from repro.sim.cluster_sim import (
    simulate_ftdmp_finetune,
    simulate_offline_inference,
)
from repro.sim.specs import TEN_GBE, TESLA_T4, TESLA_V100

IMAGES = 200_000
STORES = 4


def run_sweep():
    # tuner_epochs=2 balances the Store and Tuner stages at 4 stores,
    # which is where pipelining pays most (the Fig. 17 configuration)
    graph = model_graph("ResNet50")
    rows = []
    for num_runs in (1, 2, 3, 4, 6, 8):
        des = simulate_ftdmp_finetune(graph, STORES, IMAGES,
                                      num_runs=num_runs, tuner_epochs=2)
        analytic = evaluate_partition(
            graph, 5, STORES, TESLA_T4, TESLA_V100, TEN_GBE,
            FinetunePlanConfig(dataset_images=IMAGES, num_runs=num_runs,
                               tuner_epochs=2),
        ).training_time_s
        rows.append({
            "num_runs": num_runs,
            "des_s": des.makespan_s,
            "analytic_s": analytic,
            "error_pct": 100 * abs(des.makespan_s - analytic) / analytic,
        })
    return rows


def test_ablation_pipelined_runs(benchmark, report):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    base = rows[0]["des_s"]
    table = format_table(
        ["N_run", "DES time (s)", "analytic (s)", "model error %",
         "reduction vs serial %"],
        [[r["num_runs"], r["des_s"], r["analytic_s"], r["error_pct"],
          100 * (1 - r["des_s"] / base)] for r in rows],
        title="Ablation: pipelined FT-DMP run count (ResNet50, 4 stores, DES)",
    )

    graph = model_graph("ResNet50")
    depth_rows = []
    for depth in (1, 2, 4, 16):
        des = simulate_offline_inference(graph, 2, 60_000, queue_depth=depth)
        depth_rows.append([depth, des.throughput_ips])
    table += "\n\n" + format_table(
        ["NPE queue depth", "inference IPS (2 stores)"], depth_rows,
        title="Ablation: NPE inter-stage buffer depth",
    )
    report("ablation_pipelining", table)

    # the DES validates the closed-form model everywhere
    assert all(r["error_pct"] < 10 for r in rows)
    # pipelining monotonically shortens the job with diminishing returns
    times = [r["des_s"] for r in rows]
    assert times == sorted(times, reverse=True)
    assert times[2] < 0.75 * times[0]    # N_run=3 saves >25%
    assert times[-1] > 0.5 * times[0]    # but it cannot halve the job
    # queue depth beyond 2 buys nearly nothing once stages are balanced
    assert depth_rows[-1][1] == pytest.approx(depth_rows[1][1], rel=0.05)
