"""Online serving: adaptive micro-batching vs the batch=1 baseline.

Not a paper figure — the serving-layer counterpart of the paper's
online-inference story (§3.1): photo uploads must be labelled within a
tail-latency budget, and the only lever that scales throughput without
more accelerators is batching.  One Poisson upload trace is served twice
under the same p99 budget:

* **adaptive** — the full :mod:`repro.serving` front end (NPE-seeded
  SLO batch controller, content-addressed tensor cache, replica
  dispatch);
* **baseline** — identical machinery pinned to synchronous batch=1,
  i.e. the pre-serving ``InferenceServer.classify`` path.

The headline claim recorded in ``results/BENCH_serving.json``: adaptive
micro-batching sustains >= 3x the baseline throughput at an equal p99
latency budget.
"""

from repro.analysis.tables import format_table
from repro.bench.harness import serving_payload
from repro.obs.benchjson import BenchResult
from repro.serving.bench import run_serving_comparison

SEED = 0


def serving_comparison():
    return run_serving_comparison(seed=SEED)


def test_serving_adaptive_vs_baseline(benchmark, report, bench_json):
    result = benchmark(serving_comparison)
    adaptive = result["adaptive"]
    baseline = result["baseline"]
    budget = result["latency_budget_s"]

    text = format_table(
        ["frontend", "offered", "completed", "shed", "rps", "p50 (ms)",
         "p99 (ms)", "mean batch"],
        [[name, r["offered"], r["completed"], sum(r["shed"].values()),
          f"{r['throughput_rps']:.0f}",
          f"{r['p50_latency_s'] * 1e3:.1f}",
          f"{r['p99_latency_s'] * 1e3:.1f}",
          f"{r['mean_batch']:.1f}"]
         for name, r in (("adaptive", adaptive), ("baseline", baseline))],
        title=(f"serving @ {result['offered_rps']:.0f} rps offered, "
               f"p99 budget {budget * 1e3:.0f} ms "
               f"-> {result['speedup']:.2f}x throughput"),
    )
    report("serving_adaptive_vs_baseline", text)

    # the perf harness (repro.bench.harness) builds the exact same
    # payload, so the CLI gate and this bench write identical files
    payload = serving_payload(result)
    bench_json("BENCH_serving", [
        BenchResult(e["metric"], e["value"], e["unit"],
                    dict(e.get("labels", {})), e.get("direction"))
        for e in payload["results"]
    ], config=payload["config"])

    # the acceptance claim: >= 3x throughput at an equal p99 budget
    assert adaptive["p99_latency_s"] <= budget + 1e-9
    assert baseline["p99_latency_s"] <= budget + 1e-9
    assert result["speedup"] >= 3.0
    # load-shedding accounting is exact on both front ends
    for r in (adaptive, baseline):
        assert r["offered"] == r["completed"] + sum(r["shed"].values())
