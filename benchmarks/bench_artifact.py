"""Artifact appendix A.6 — the end-to-end numbers the artifact prints.

Paper artifact (ResNet50, CIFAR-100-scale data):

* feature-extraction throughput ~1913 images/s per PipeStore,
* overall fine-tuning completes in ~75 s,
* offline inference ~2417 IPS across the fleet.

We reproduce both faces: the calibrated full-scale numbers from the
simulator and a real end-to-end run of the tiny cluster.
"""

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.core.cluster import NDPipeCluster
from repro.data.datasets import CIFAR100_LIKE
from repro.models.catalog import model_graph
from repro.models.registry import tiny_model
from repro.sim.specs import TESLA_T4, TESLA_V100


def run_artifact_workflow():
    """The A.5 experiment workflow on the runnable tiny cluster."""
    world = CIFAR100_LIKE.world(seed=0)
    num_classes = world.config.max_classes

    def factory():
        return tiny_model("ResNet50", num_classes=num_classes, width=8, seed=0)

    cluster = NDPipeCluster(factory, num_stores=2, nominal_raw_bytes=4096)
    x, y = world.sample(240, 0, rng=np.random.default_rng(1))
    cluster.ingest(x, train_labels=y)

    start = time.perf_counter()
    report = cluster.finetune(epochs=2)
    finetune_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stats = cluster.offline_relabel()
    inference_seconds = time.perf_counter() - start

    return {
        "images": 240,
        "finetune_seconds": finetune_seconds,
        "inference_seconds": inference_seconds,
        "inference_ips": stats.photos_processed / inference_seconds,
        "feature_bytes": report.feature_bytes,
    }


def test_artifact_numbers(benchmark, report):
    runnable = benchmark.pedantic(run_artifact_workflow, iterations=1,
                                  rounds=1)

    graph = model_graph("ResNet50")
    fe_ips = TESLA_T4.fe_ips(graph, 5, 512)
    images = 60_000  # CIFAR-100 scale
    fe_seconds = images / fe_ips
    tuner_rate = TESLA_V100.tail_train_ips(graph, 5)
    overall = fe_seconds + 9 * images / tuner_rate  # ~9 classifier epochs
    inference_ips = TESLA_T4.inference_ips(graph, 128)

    rows = [
        ["Feature extraction time (s)", 31.36, fe_seconds],
        ["Feature extraction throughput (IPS)", 1913.26, fe_ips],
        ["Overall fine-tuning time (s)", 75.19, overall],
        ["Offline inference throughput (IPS)", 2417.53, inference_ips],
    ]
    table = format_table(["metric", "paper artifact", "this repro"],
                         rows, title="Artifact A.6: expected results")
    table += ("\n\nrunnable tiny cluster: "
              f"fine-tuned {runnable['images']} photos in "
              f"{runnable['finetune_seconds']:.2f}s, relabelled them at "
              f"{runnable['inference_ips']:.0f} IPS")
    report("artifact", table)

    import pytest

    assert fe_ips == pytest.approx(1913.26, rel=0.03)
    assert fe_seconds == pytest.approx(31.36, rel=0.05)
    assert inference_ips == pytest.approx(2417.53, rel=0.15)
    assert runnable["inference_ips"] > 0
