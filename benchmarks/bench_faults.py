"""Degraded-fleet behaviour: throughput and traffic vs failed PipeStores.

Not a paper figure — the operational counterpart the paper's fleet story
implies (§4, Fig. 7): when stores crash, survivors absorb the re-sharded
work.  Two views:

* the DES fleet (`simulate_offline_inference(failed_stores=...)`) —
  campaign makespan as the fleet degrades, which should track the ideal
  ``n / survivors`` slowdown closely because the campaign is
  embarrassingly parallel;
* the runnable cluster under a `FaultInjector` crash — accounted
  accelerator busy-seconds concentrate on survivors, and retry/backoff
  accounting shows what fault tolerance costs on the wire.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.cluster import NDPipeCluster
from repro.faults import FaultInjector, StoreCrash
from repro.models.catalog import model_graph
from repro.models.registry import tiny_model
from repro.sim.cluster_sim import simulate_offline_inference

NUM_STORES = 8
IMAGES = 4096


def degraded_fleet_sweep():
    graph = model_graph("ResNet50")
    baseline = None
    rows = []
    for failed in range(NUM_STORES):
        result = simulate_offline_inference(
            graph, NUM_STORES, IMAGES, batch_size=128, failed_stores=failed)
        if baseline is None:
            baseline = result.makespan_s
        survivors = NUM_STORES - failed
        rows.append({
            "failed": failed,
            "survivors": survivors,
            "makespan_s": result.makespan_s,
            "throughput_ips": result.throughput_ips,
            "slowdown": result.makespan_s / baseline,
            "ideal": NUM_STORES / survivors,
        })
    return rows


def test_degraded_fleet_throughput(benchmark, report):
    rows = benchmark(degraded_fleet_sweep)

    text = format_table(
        ["failed", "survivors", "makespan_s", "throughput_ips",
         "slowdown", "ideal"],
        [[r[k] for k in ("failed", "survivors", "makespan_s",
                         "throughput_ips", "slowdown", "ideal")]
         for r in rows],
        title=f"offline inference, {NUM_STORES}-store fleet, "
              f"{IMAGES} images, N stores failed",
    )
    report("faults_degraded_fleet", text)

    # monotone: losing stores never speeds the campaign up
    makespans = [r["makespan_s"] for r in rows]
    assert makespans == sorted(makespans)
    baseline_ips = rows[0]["throughput_ips"]
    for r in rows:
        # never worse than proportional re-sharding...
        assert r["slowdown"] <= r["ideal"] * 1.05
        # ...and each survivor is at least as efficient as in the full
        # fleet (longer per-store streams amortise pipeline fill better)
        assert r["throughput_ips"] >= (baseline_ips * r["survivors"]
                                       / NUM_STORES)


def crashed_cluster_accounting():
    def factory():
        return tiny_model("ResNet50", num_classes=8, width=8, seed=5)

    cluster = NDPipeCluster(factory, num_stores=4, nominal_raw_bytes=2048)
    rng = np.random.default_rng(0)
    x = rng.random((48, 3, 16, 16))
    y = rng.integers(0, 8, size=48)
    cluster.ingest(x, train_labels=y)
    injector = FaultInjector([
        StoreCrash(at=2, store_id="pipestore-3")]).attach(cluster)
    report = cluster.finetune(epochs=1, relocate_lost=True)
    stats = cluster.offline_relabel()
    return cluster, injector, report, stats


def test_crashed_cluster_busy_seconds(report):
    cluster, injector, ft, relabel = crashed_cluster_accounting()
    busy = {s.store_id: s.busy_seconds for s in cluster.stores}
    retry = cluster.retry

    lines = [
        f"fine-tune: extracted={ft.images_extracted} "
        f"repartitioned={ft.photos_repartitioned} "
        f"deferred={ft.photos_deferred} skipped={ft.skipped_stores}",
        f"relabel:   processed={relabel.photos_processed} "
        f"deferred={relabel.photos_deferred}",
        f"retry:     calls={retry.calls} retries={retry.retries} "
        f"giveups={retry.giveups} backoff_s={retry.backoff_s:.3f}",
        "accelerator busy seconds (crashed store does no work):",
    ] + [f"  {sid}: {seconds:.4f}s" for sid, seconds in sorted(busy.items())]
    report("faults_crashed_cluster", "\n".join(lines))

    # the dead store extracted nothing after its crash; survivors absorbed
    # its shard, so the fleet still covered every photo
    assert ft.images_extracted == 48
    assert ft.photos_repartitioned == 12
    assert busy["pipestore-3"] == 0.0
    assert all(busy[f"pipestore-{i}"] > 0 for i in range(3))
    assert relabel.photos_processed == 48
