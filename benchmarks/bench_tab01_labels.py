"""Table 1 — % of outdated labels fixed by successive retrained models.

Paper: 6.67% of the reference photos' labels are corrected by M1, rising
to 8.98% with M4 — evidence that databases accumulate outdated labels.
"""

from repro.analysis.accuracy import tab01_label_refresh
from repro.analysis.tables import format_table


def test_tab01_label_refresh(benchmark, report, bench_scale):
    rows = benchmark.pedantic(
        lambda: tab01_label_refresh(scale=bench_scale),
        iterations=1, rounds=1,
    )

    table = format_table(
        ["model", "% of M0 labels fixed", "accuracy on reference set"],
        [[r["model"], r["pct_fixed"], r["ref_accuracy"] * 100] for r in rows],
        title="Table 1: labels fixed by newer models (paper: 6.67% -> 8.98%)",
    )
    report("tab01_labels", table)

    assert rows[0]["pct_fixed"] == 0.0
    fixed = [r["pct_fixed"] for r in rows[1:]]
    if bench_scale.train >= 400:  # statistically meaningful scales only
        # every retrained model corrects a nontrivial share of old labels
        assert all(f > 1.0 for f in fixed)
        # later models fix at least as much as the first (allowing noise)
        assert max(fixed[1:]) >= fixed[0] - 2.0
