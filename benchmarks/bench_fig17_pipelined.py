"""Fig. 17 — pipelined FT-DMP: accuracy and wall-clock vs N_run.

Paper: pipelining cuts training time by 23% (N_run=2) and 32% (N_run=3)
with negligible accuracy loss (71.61 -> 71.55 / 71.52%); N_run=4 drops
accuracy noticeably (70.36%) as catastrophic forgetting bites.
"""

from repro.analysis.accuracy import fig17_pipelined_training
from repro.analysis.tables import format_table


def test_fig17_pipelined_training(benchmark, report, bench_scale):
    out = benchmark.pedantic(
        lambda: fig17_pipelined_training(scale=bench_scale),
        iterations=1, rounds=1,
    )

    rows = [
        [n, entry["sim_time_s"], entry["time_reduction_pct"],
         entry["final_top1"] * 100]
        for n, entry in sorted(out.items())
    ]
    table = format_table(
        ["N_run", "simulated time (s)", "time reduction %", "final top-1 %"],
        rows,
        title="Fig. 17: pipelined FT-DMP (ResNet50, 4 PipeStores)",
    )
    report("fig17_pipelined", table)

    # time reductions land near the paper's 23% / 32%
    assert 18 < out[2]["time_reduction_pct"] < 30
    assert 27 < out[3]["time_reduction_pct"] < 38
    if bench_scale.train >= 400:  # statistically meaningful scales only
        # accuracy holds up to N_run=3 (within a few points of N_run=1);
        # the Lemma 5.2 audit lives in tests/core/test_convergence.py on an
        # IID run split — the time-ordered stream here deliberately
        # violates the paper's condition (iii)
        assert out[3]["final_top1"] > out[1]["final_top1"] - 0.06
