"""Ablation: maintenance policies — scheduled vs detection-triggered (§2.2).

The paper argues detection-based retraining 'may degrade the prediction
quality as the training starts after sufficient drift is observed', while
NDPipe's cheap fine-tuning makes aggressive schedules affordable.  This
ablation runs real fine-tuning over the drift horizon under three
policies and compares mean accuracy vs update count.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.driftdetect import (
    DetectionPolicy,
    MaintenanceLog,
    NeverPolicy,
    ScheduledPolicy,
)
from repro.core.ftdmp import FTDMPTrainer
from repro.data.datasets import IMAGENET1K_LIKE
from repro.data.loader import normalize_images
from repro.analysis.accuracy import make_model
from repro.train.fulltrain import full_train
from repro.workloads.scenarios import evaluate_model


def run_policies(scale, horizon_days: int = 12):
    world = IMAGENET1K_LIKE.world(seed=0)
    num_classes = world.config.max_classes

    def factory():
        return make_model("ResNet50", num_classes, scale)

    base = factory()
    x0, y0 = world.sample(scale.train, 0, rng=np.random.default_rng(7))
    full_train(base, normalize_images(x0), y0, epochs=scale.base_epochs,
               lr=scale.lr, seed=0)
    base_state = base.state_dict()

    policies = [
        NeverPolicy(),
        ScheduledPolicy(period_days=2),
        DetectionPolicy(tolerance=0.05),
    ]
    logs = []
    for policy in policies:
        model = factory()
        model.load_state_dict(base_state)
        trainer = FTDMPTrainer(model, lr=scale.lr, seed=0)
        log = MaintenanceLog(policy=policy.name)
        rng = np.random.default_rng(99)
        for day in range(0, horizon_days + 1, 2):
            x_test, y_test = world.sample(
                scale.test, day, rng=np.random.default_rng(500 + day))
            top1, _ = evaluate_model(model, x_test, y_test)
            if day > 0 and policy.should_update(day, top1):
                x_new, y_new = world.sample(scale.finetune, day, rng=rng)
                trainer.finetune(normalize_images(x_new), y_new,
                                 epochs=scale.finetune_epochs)
                policy.notify_updated(day)
                log.triggered_days.append(day)
                top1, _ = evaluate_model(model, x_test, y_test)
            log.accuracies.append(top1)
        logs.append(log)
    return logs


def test_ablation_policies(benchmark, report, bench_scale):
    logs = benchmark.pedantic(lambda: run_policies(bench_scale),
                              iterations=1, rounds=1)

    table = format_table(
        ["policy", "updates run", "update days", "mean top-1 %"],
        [[log.policy, log.num_updates,
          ",".join(map(str, log.triggered_days)) or "-",
          log.mean_accuracy * 100] for log in logs],
        title="Ablation: maintenance policy under two weeks of drift",
    )
    report("ablation_policies", table)

    by_name = {log.policy: log for log in logs}
    never = by_name["never"]
    scheduled = next(v for k, v in by_name.items() if k.startswith("sched"))
    # the scheduled policy actually maintains the model
    assert scheduled.num_updates >= 4
    assert never.num_updates == 0
    if bench_scale.train >= 400:
        # maintenance pays: scheduled >= never on mean accuracy
        assert scheduled.mean_accuracy >= never.mean_accuracy - 0.01
