"""Streaming serving protocol vs the synchronous front end.

Not a paper figure — the production counterpart of the paper's serving
deployment (§3.1): upload traffic is bursty, and a hard-bounded queue
turns every burst into dropped uploads.  One flash-crowd trace is
played through both front ends:

* **streaming** — the :mod:`repro.serving.stream` protocol: request-id'd
  out-of-order completion, credit-window backpressure, SLO-headroom
  replica autoscaling;
* **sync** — the PR 5 :class:`~repro.serving.frontend.ServingFrontend`
  at a static replica count with its hard-bounded admission queue.

The headline claims recorded in ``results/BENCH_serving_stream.json``:
the streaming side sheds *zero* requests as ``queue_full`` on an
offered load that makes the synchronous queue drop (conservation is
``offered == completed + cancelled + expired``), completes provably out
of submission order, and scales the replica set up under the flash.
"""

from repro.analysis.tables import format_table
from repro.bench.harness import serving_stream_payload
from repro.obs.benchjson import BenchResult
from repro.serving.bench import run_streaming_bench

SEED = 0


def streaming_comparison():
    return run_streaming_bench(seed=SEED)


def test_streaming_vs_sync_frontend(benchmark, report, bench_json):
    result = benchmark(streaming_comparison)
    s = result["streaming"]
    sync = result["sync"]

    text = format_table(
        ["frontend", "offered", "completed", "expired", "queue_full",
         "rps", "p50 (ms)", "p99 (ms)", "replicas"],
        [
            ["streaming", s["offered"], s["completed"], s["expired"],
             s["queue_full"], f"{s['throughput_rps']:.0f}",
             f"{s['p50_latency_s'] * 1e3:.1f}",
             f"{s['p99_latency_s'] * 1e3:.1f}",
             f"{result['stream_config']['min_replicas']}->"
             f"{s['final_replicas']}"],
            ["sync", sync["offered"], sync["completed"],
             sync["shed"]["deadline"], sync["shed"]["queue_full"],
             f"{sync['throughput_rps']:.0f}",
             f"{sync['p50_latency_s'] * 1e3:.1f}",
             f"{sync['p99_latency_s'] * 1e3:.1f}",
             str(result["config"]["replicas"])],
        ],
        title=(f"streaming vs sync on a {result['trace']} trace "
               f"({s['out_of_order']} out-of-order completions, "
               f"+{s['scale_ups']} replicas)"),
    )
    report("serving_streaming_vs_sync", text)

    # the perf harness (repro.bench.harness) builds the exact same
    # payload, so the CLI gate and this bench write identical files
    payload = serving_stream_payload(result)
    bench_json("BENCH_serving_stream", [
        BenchResult(e["metric"], e["value"], e["unit"],
                    dict(e.get("labels", {})), e.get("direction"))
        for e in payload["results"]
    ], config=payload["config"])

    # credit flow never sheds: conservation without a queue_full path
    assert s["queue_full"] == 0
    assert s["conserved"]
    assert s["offered"] == s["completed"] + s["cancelled"] + s["expired"]
    # ...at an offered load that makes the synchronous queue drop
    assert sync["shed"]["queue_full"] > 0
    assert s["completed"] > sync["completed"]
    # completion order provably differs from submission order
    assert s["out_of_order"] > 0
    # the flash forces the autoscaler's hand
    assert s["scale_ups"] >= 1
    assert s["peak_replicas"] > result["stream_config"]["min_replicas"]
