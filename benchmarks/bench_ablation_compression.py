"""Ablation: deflate level for preprocessed binaries (§5.4 +Comp).

The paper stores preprocessed binaries deflate-compressed to cut the
17.5% storage overhead.  This ablation runs *real zlib* over realistic
preprocessed tensors (smooth image statistics, fp32) and reports the
ratio / speed trade-off across compression levels, plus the storage
overhead with and without compression.
"""

import time

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.storage.compression import deflate, inflate
from repro.storage.imageformat import encode_preprocessed


def make_preprocessed_binary(seed: int = 0, size: int = 96) -> bytes:
    """A realistic preprocessed tensor.

    Crucially, real preprocessed binaries are normalised *decoded pixels*:
    each float comes from one of 256 uint8 values, which is exactly the
    redundancy deflate exploits (the paper's §5.4 trick).  A tensor of
    free-floating fp32 noise would barely compress.
    """
    rng = np.random.default_rng(seed)
    # sum of low-frequency gratings + mild noise, like natural images
    y, x = np.mgrid[0:size, 0:size] / size
    channels = []
    for c in range(3):
        img = sum(
            rng.normal() * np.sin(2 * np.pi * (fx * x + fy * y))
            for fx, fy in [(1, 0), (0, 1), (2, 1), (1, 3)]
        )
        img = img + rng.normal(0, 0.05, size=img.shape)
        channels.append(img)
    tensor = np.stack(channels)
    tensor = (tensor - tensor.min()) / (tensor.max() - tensor.min() + 1e-9)
    pixels = (tensor * 255).astype(np.uint8)  # the decoded JPEG
    preprocessed = ((pixels / 255.0 - 0.485) / 0.229).astype(np.float32)
    return encode_preprocessed(preprocessed)


def run_sweep():
    blobs = [make_preprocessed_binary(seed) for seed in range(8)]
    raw_bytes = sum(len(b) for b in blobs)
    rows = []
    for level in (1, 3, 6, 9):
        start = time.perf_counter()
        compressed = [deflate(b, level=level) for b in blobs]
        compress_s = time.perf_counter() - start
        start = time.perf_counter()
        for blob in compressed:
            inflate(blob)
        decompress_s = time.perf_counter() - start
        comp_bytes = sum(len(b) for b in compressed)
        rows.append({
            "level": level,
            "ratio": raw_bytes / comp_bytes,
            "compress_mbps": raw_bytes / 1e6 / compress_s,
            "decompress_mbps": comp_bytes / 1e6 / decompress_s,
        })
    return rows, raw_bytes


def test_ablation_compression(benchmark, report):
    rows, raw_bytes = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    table = format_table(
        ["deflate level", "compression ratio", "compress MB/s",
         "decompress MB/s (compressed)"],
        [[r["level"], r["ratio"], r["compress_mbps"], r["decompress_mbps"]]
         for r in rows],
        title="Ablation: deflate level on preprocessed fp32 binaries",
    )

    # storage-overhead arithmetic from §5.4
    raw, pre = 2_700_000, 590_000
    best_ratio = max(r["ratio"] for r in rows)
    uncompressed_overhead = pre / (raw + pre)
    compressed_overhead = (pre / best_ratio) / (raw + pre / best_ratio)
    table += (f"\nstorage overhead of preprocessed binaries: "
              f"{uncompressed_overhead * 100:.1f}% raw (paper: 17.5%), "
              f"{compressed_overhead * 100:.1f}% deflated")
    report("ablation_compression", table)

    ratios = [r["ratio"] for r in rows]
    # higher levels compress at least as well (tiny inversions tolerated)
    for lo, hi in zip(ratios[:-1], ratios[1:]):
        assert hi >= lo * 0.995
    # the measured ratio brackets the catalog's calibrated 2.86x
    assert ratios[0] > 2.0
    assert ratios[-1] > 2.86
    assert uncompressed_overhead == pytest.approx(0.179, abs=0.01)
    assert compressed_overhead < uncompressed_overhead
    # decompression is far cheaper than compression (why PipeStores can
    # afford it with two cores)
    assert all(r["decompress_mbps"] > r["compress_mbps"] for r in rows[2:])
