"""Ablation: what GPU should the Tuner have?

APO takes the Tuner's FLOPS as an input (Algorithm 1).  A weaker Tuner
saturates with fewer PipeStores; a stronger one moves the balance point
out.  This sweep re-runs APO with a T4-class Tuner and a 2x-V100-class
Tuner next to the paper's single V100, showing how the organisation
adapts — the design insight behind making APO a *tool* rather than a
constant.
"""

import dataclasses


from repro.analysis.tables import format_table
from repro.core.apo import plan_organization
from repro.models.catalog import model_graph
from repro.sim.specs import G4DN_4XLARGE, P3_2XLARGE, P3_8XLARGE


def run_sweep():
    graph = model_graph("ResNet50")
    tuners = [
        ("T4 Tuner", dataclasses.replace(
            G4DN_4XLARGE, name="g4dn-as-tuner", disk=None)),
        ("V100 Tuner (paper)", P3_2XLARGE),
        ("2x V100 Tuner", P3_8XLARGE),
    ]
    rows = []
    for label, server in tuners:
        plan = plan_organization(graph, tuner_server=server)
        best = plan.most_energy_efficient()
        rows.append({
            "tuner": label,
            "apo_stores": plan.num_pipestores,
            "cut": plan.split_label,
            "train_s": plan.best.training_time_s,
            "best_stores": best.num_pipestores,
            "ips_per_kj": best.ips_per_kj,
        })
    return rows


def test_ablation_tuner_choice(benchmark, report):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)

    table = format_table(
        ["Tuner", "APO stores", "cut", "train time (s)",
         "max-IPS/kJ stores", "IPS/kJ"],
        [[r["tuner"], r["apo_stores"], r["cut"], r["train_s"],
          r["best_stores"], r["ips_per_kj"]] for r in rows],
        title="Ablation: Tuner hardware choice (ResNet50, 1.2M images)",
    )
    report("ablation_tuner", table)

    by_tuner = {r["tuner"]: r for r in rows}
    # the paper's configuration reproduces the 8-store pick at +Conv5
    assert by_tuner["V100 Tuner (paper)"]["apo_stores"] == 8
    assert by_tuner["V100 Tuner (paper)"]["cut"] == "+Conv5"
    # a stronger Tuner supports more PipeStores before saturating
    assert (by_tuner["2x V100 Tuner"]["apo_stores"]
            > by_tuner["V100 Tuner (paper)"]["apo_stores"])
    # with a T4-class Tuner the classifier stage is so slow that APO
    # resorts to full offload (+FC) despite the sync cost — the §4.1
    # pathology, and exactly why the paper provisions a V100 Tuner
    assert by_tuner["T4 Tuner"]["cut"] == "+FC"
    # bigger Tuner -> shorter training at its pick
    assert (by_tuner["2x V100 Tuner"]["train_s"]
            < by_tuner["T4 Tuner"]["train_s"])
