"""Fig. 11 — APO: training time and energy efficiency vs #PipeStores.

Paper: training time drops near-linearly until 8 PipeStores (APO's pick for
ResNet50, where T_diff ~ 0), then flattens; IPS/kJ falls once extra
PipeStores idle.
"""

from repro.analysis.perf import fig11_apo_sweep
from repro.analysis.tables import format_table


def test_fig11_apo_sweep(benchmark, report):
    out = benchmark(fig11_apo_sweep)

    table = format_table(
        ["#PipeStores", "training time (s)", "T_diff (s)", "IPS/kJ"],
        [[r["stores"], r["training_time_s"], r["t_diff_s"], r["ips_per_kj"]]
         for r in out["rows"]],
        title="Fig. 11: APO sweep (ResNet50, V100 Tuner, 10 GbE)",
    )
    table += (f"\nAPO pick: {out['apo_pick']} PipeStores at cut "
              f"{out['cut']} (paper: 8, +Conv5); "
              f"max IPS/kJ at {out['best_energy_stores']} stores")
    report("fig11_apo", table)

    assert out["apo_pick"] == 8
    assert out["cut"] == "+Conv5"
    times = {r["stores"]: r["training_time_s"] for r in out["rows"]}
    assert times[8] < times[1] / 4
    assert times[20] > 0.8 * times[8]  # flattens
