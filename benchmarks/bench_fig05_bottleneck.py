"""Fig. 5 — impact of the network bottleneck (Typical vs Ideal strawmen).

Paper: Typical fine-tuning is 3.7x slower than Ideal; offline inference
runs at 94 IPS (Typical) vs 123 IPS (Ideal).
"""

from repro.analysis.perf import fig05_bottleneck
from repro.analysis.tables import format_table


def test_fig05_bottleneck(benchmark, report, bench_json):
    out = benchmark(fig05_bottleneck)

    rows = [
        ["Fine-tuning time (min, 1.2M images)",
         out["finetune_time_min"]["Typical"],
         out["finetune_time_min"]["Ideal"]],
        ["Offline inference throughput (IPS)",
         out["inference_ips"]["Typical"],
         out["inference_ips"]["Ideal"]],
    ]
    text = format_table(["metric", "Typical", "Ideal"], rows,
                        title="Fig. 5: Typical vs Ideal (ResNet50)")
    ratio = (out["finetune_time_min"]["Typical"]
             / out["finetune_time_min"]["Ideal"])
    text += f"\nfine-tune slowdown: {ratio:.2f}x (paper: 3.7x)"
    report("fig05_bottleneck", text)

    results = [
        ("finetune_time", out["finetune_time_min"][variant], "min",
         {"system": variant})
        for variant in ("Typical", "Ideal")
    ] + [
        ("offline_inference_throughput", out["inference_ips"][variant],
         "images/s", {"system": variant})
        for variant in ("Typical", "Ideal")
    ] + [("finetune_slowdown", ratio, "x", {})]
    bench_json("fig05_bottleneck", results,
               config={"model": "ResNet50", "dataset_images": 1_200_000})

    assert 3.0 < ratio < 4.6
    assert out["inference_ips"]["Typical"] < out["inference_ips"]["Ideal"]
