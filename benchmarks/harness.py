"""Thin entry point for the perf-trajectory harness.

``python benchmarks/harness.py [args]`` is exactly
``PYTHONPATH=src python -m repro.cli perf [args]`` — the harness
itself lives in :mod:`repro.bench` so the CLI, CI gate, and this
script can never disagree.  Typical invocations::

    python benchmarks/harness.py                  # run all scenarios
    python benchmarks/harness.py --check          # gate vs baselines
    python benchmarks/harness.py --bless          # re-record baselines
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402  (path bootstrap must run first)

if __name__ == "__main__":
    argv = ["perf", *sys.argv[1:]]
    if not any(a.startswith("--baseline-dir") for a in argv):
        argv += ["--baseline-dir",
                 str(Path(__file__).resolve().parent / "results")]
    sys.exit(main(argv))
