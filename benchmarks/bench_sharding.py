"""Geo-sharded multi-tenant fleet: placement, fan-out, live rebalance.

Not a paper figure — the fleet-scale deployment shape of the paper's
production story (§3.1): one Tuner cannot unicast model updates to a
datacenter of PipeStores, and a photo service is never single-tenant.
One seeded run exercises the three claims recorded in
``results/BENCH_sharding.json``:

* **placement** — a multi-tenant Zipf trace over a ~1M-user population
  spreads across the consistent-hash ring within a small constant of
  perfectly even, and a shard join/leave re-homes at most
  ``1/N + 10%`` of keys (join strictly onto the newcomer);
* **fan-out** — the Check-N-Run fan-out tree distributes the identical
  delta with strictly fewer Tuner-egress bytes than unicast at equal
  model freshness on every store;
* **migration** — a live ``join_shard`` settles with the migration
  ledger balanced (``moved == received``, zero inflight) and a scrub
  finding zero unrecoverable photos.
"""

from repro.analysis.tables import format_table
from repro.bench.harness import sharding_payload
from repro.obs.benchjson import BenchResult
from repro.placement.bench import run_sharding_bench

SEED = 0


def sharding_run():
    return run_sharding_bench(seed=SEED)


def test_sharded_fleet(benchmark, report, bench_json):
    result = benchmark(sharding_run)
    placement = result["placement"]
    fanout = result["fanout"]
    migration = result["migration"]

    text = format_table(
        ["part", "metric", "value"],
        [
            ["placement", "keys placed", placement["keys"]],
            ["placement", "user population", placement["num_users"]],
            ["placement", "spread (max/mean)",
             f"{placement['spread_max_over_mean']:.3f}"],
            ["placement", "join moved",
             f"{placement['join']['moved']} "
             f"({placement['join']['fraction']:.4f} <= "
             f"{placement['join']['bound']:.4f})"],
            ["fanout", "unicast tuner egress",
             fanout["unicast"]["tuner_egress_bytes"]],
            ["fanout", "fan-out tuner egress",
             fanout["fanout"]["tuner_egress_bytes"]],
            ["fanout", "saving",
             f"{fanout['egress_saving_fraction']:.0%}"],
            ["migration", "objects moved == received",
             f"{migration['ledger']['objects_moved']} == "
             f"{migration['ledger']['objects_received']}"],
            ["migration", "moved fraction",
             f"{migration['join']['moved_fraction']:.4f} <= "
             f"{migration['bound']:.4f}"],
            ["migration", "unrecoverable", migration["unrecoverable"]],
        ],
        title=(f"sharded fleet @ {result['config']['num_shards']} shards, "
               f"{len(result['config']['tenants'])} tenants"),
    )
    report("sharding_fleet", text)

    # the perf harness (repro.bench.harness) builds the exact same
    # payload, so the CLI gate and this bench write identical files
    payload = sharding_payload(result)
    bench_json("BENCH_sharding", [
        BenchResult(e["metric"], e["value"], e["unit"],
                    dict(e.get("labels", {})), e.get("direction"))
        for e in payload["results"]
    ], config=payload["config"])

    # the ring's movement guarantee, counted not claimed
    assert placement["join"]["fraction"] <= placement["join"]["bound"]
    assert placement["leave"]["fraction"] <= placement["leave"]["bound"]
    assert placement["join"]["all_to_new_shard"]
    # quota admission provably rejects (and conserves) at scale
    acme = placement["admission"]["acme"]
    assert acme["rejected"] > 0
    assert acme["offered"] == acme["admitted"] + acme["rejected"]
    # fan-out strictly beats unicast on Tuner egress at equal freshness
    assert (fanout["fanout"]["tuner_egress_bytes"]
            < fanout["unicast"]["tuner_egress_bytes"])
    assert fanout["freshness_equal"]
    assert fanout["fanout"]["relayed"] > 0
    # migration books balance and nothing is lost
    ledger = migration["ledger"]
    assert ledger["objects_moved"] == ledger["objects_received"]
    assert ledger["objects_inflight"] == 0
    assert migration["within_bound"]
    assert migration["unrecoverable"] == 0
