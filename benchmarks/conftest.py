"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one paper table/figure, prints it, and writes
it to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.  Benchmarks that report headline numbers additionally write
``benchmarks/results/<name>.json`` through the ``bench_json`` fixture
(the :mod:`repro.obs.benchjson` schema) so the perf trajectory is
machine-readable and diffs across PRs.  ``REPRO_BENCH_SCALE``
(smoke|fast|paper) sizes the runnable accuracy experiments; the timing
experiments are exact either way.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.accuracy import FAST, PAPER, SMOKE, Scale
from repro.obs.benchjson import BenchResult, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {"smoke": SMOKE, "fast": FAST, "paper": PAPER}


def pytest_configure(config):
    """Force smoke scale when the bench_smoke marker is selected.

    Every benchmark in this directory carries ``bench_smoke`` (see
    ``pytest_collection_modifyitems``), so ``pytest -m bench_smoke
    benchmarks`` runs each one exactly once at the tiniest scale — the
    CI smoke sweep.  Selecting the marker also disables
    pytest-benchmark's repeated calibration rounds, which would defeat
    the point of a smoke pass.
    """
    expr = config.getoption("markexpr", default="") or ""
    if "bench_smoke" in expr:
        os.environ["REPRO_BENCH_SCALE"] = "smoke"
        if hasattr(config.option, "benchmark_disable"):
            config.option.benchmark_disable = True


def pytest_collection_modifyitems(config, items):
    """Every benchmark collected here is part of the smoke sweep."""
    for item in items:
        item.add_marker(pytest.mark.bench_smoke)


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "fast").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def report():
    """Print a figure's regenerated output and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n{text}\n"
        print(banner)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture(scope="session")
def bench_json():
    """Write one benchmark's structured results to results/<name>.json.

    ``_write(name, results, config=None)`` takes ``BenchResult`` objects
    (or ``(metric, value, unit)`` / ``(metric, value, unit, labels)``
    tuples for brevity) and persists them in the shared schema.
    """

    def _write(name: str, results, config=None) -> Path:
        normalised = [
            r if isinstance(r, BenchResult) else BenchResult(*r)
            for r in results
        ]
        return write_bench_json(RESULTS_DIR, name, normalised, config)

    return _write
