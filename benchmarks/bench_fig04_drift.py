"""Fig. 4 — the outdated-model problem (real training on drifting data).

Paper: top-1 decays 73.8% -> 68.9% over two weeks without updates; biweekly
full training holds accuracy; fine-tuning loses only ~2% vs the initial
model; fine-tuning needs a sizeable dataset to help (Fig. 4b).
"""

import numpy as np

from repro.analysis.accuracy import fig04_drift_study
from repro.analysis.tables import format_table


def test_fig04_drift_study(benchmark, report, bench_scale):
    out = benchmark.pedantic(
        lambda: fig04_drift_study(scale=bench_scale),
        iterations=1, rounds=1,
    )

    days = out["days"]
    rows = []
    for i, day in enumerate(days):
        rows.append([
            f"+{day}d" if day else "Base",
            out["trajectories"]["outdated"][i][1] * 100,
            out["trajectories"]["finetune"][i][1] * 100,
            out["trajectories"]["full"][i][1] * 100,
        ])
    table = format_table(
        ["day", "Outdated top-1 %", "Fine-tuning top-1 %", "Full top-1 %"],
        rows, title="Fig. 4a: accuracy under drift (ResNet50-tiny)",
    )
    sweep = format_table(
        ["fine-tune dataset size", "top-1 %"],
        [[size, acc * 100] for size, acc in out["size_sweep"]],
        title="Fig. 4b: fine-tuning accuracy vs dataset size (day 12)",
    )
    report("fig04_drift", table + "\n\n" + sweep)

    outdated = [p[1] for p in out["trajectories"]["outdated"]]
    finetune = [p[1] for p in out["trajectories"]["finetune"]]
    for trajectory in (outdated, finetune):
        assert all(0.0 <= v <= 1.0 for v in trajectory)
    if bench_scale.train >= 400:  # statistically meaningful scales only
        # drift hurts the frozen model (tail average vs base)
        assert np.mean(outdated[-2:]) < outdated[0]
        # fine-tuning recovers a meaningful share of the drop
        assert np.mean(finetune[-2:]) > np.mean(outdated[-2:])
        # Fig. 4b: the largest fine-tuning set is near-best
        sizes, accs = zip(*out["size_sweep"])
        assert accs[-1] >= max(accs) - 0.08
