"""Fig. 16 — training energy efficiency (IPS/kJ) at P1 and BEST.

Paper: NDPipe is 1.44x (P1) and 2.64x (BEST) more energy-efficient than
SRV-C on average.  Our linear component power model reproduces the
direction and ordering with smaller magnitudes (see EXPERIMENTS.md).
"""

import numpy as np

from repro.analysis.perf import fig16_training_energy
from repro.analysis.tables import format_table


def test_fig16_training_energy(benchmark, report):
    rows = benchmark(fig16_training_energy)

    table = format_table(
        ["model", "point", "stores", "SRV-C IPS/kJ", "NDPipe IPS/kJ", "gain"],
        [[r["model"], r["point"], r["stores"], r["srv_c_ips_per_kj"],
          r["ndpipe_ips_per_kj"], r["gain"]] for r in rows],
        title="Fig. 16: training energy efficiency at P1 and BEST",
    )
    best_gains = [r["gain"] for r in rows if r["point"] == "BEST"]
    table += (f"\naverage BEST gain {np.mean(best_gains):.2f}x "
              "(paper: 2.64x; our linear power model is conservative)")
    report("fig16_energy", table)

    assert all(r["gain"] > 0.9 for r in rows)
    assert max(best_gains) > 1.15
