"""Fig. 21a — operational cost of fine-tuning on AWS on-demand pricing.

Paper: NDPipe's cost starts above SRV-C with too few PipeStores (long jobs)
and drops below as stores are added; NDPipe and NDPipe-Inf1 end up ~1.5x
and ~2.5x cheaper than SRV-C respectively.
"""

from repro.analysis.perf import fig21_cost_sweep
from repro.analysis.tables import format_table


def test_fig21_cost_sweep(benchmark, report):
    rows = benchmark(fig21_cost_sweep)

    table = format_table(
        ["#PipeStores", "NDPipe $", "NDPipe-Inf1 $", "SRV-C $"],
        [[r["stores"], r["ndpipe_cost_usd"], r["ndpipe_inf1_cost_usd"],
          r["srv_c_cost_usd"]] for r in rows],
        title="Fig. 21a: fine-tuning cost (ResNet50, 1.2M images)",
    )
    at20 = rows[-1]
    table += (f"\nat 20 stores: NDPipe {at20['srv_c_cost_usd'] / at20['ndpipe_cost_usd']:.2f}x"
              f" cheaper, NDPipe-Inf1 "
              f"{at20['srv_c_cost_usd'] / at20['ndpipe_inf1_cost_usd']:.2f}x"
              " cheaper than SRV-C (paper: 1.5x / 2.5x)")
    report("fig21_cost", table)

    costs = [r["ndpipe_cost_usd"] for r in rows]
    assert costs[0] > costs[9]  # cost falls as stores shorten the job
    assert at20["ndpipe_cost_usd"] < at20["srv_c_cost_usd"]
    assert at20["ndpipe_inf1_cost_usd"] < at20["srv_c_cost_usd"]
