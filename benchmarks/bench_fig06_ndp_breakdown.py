"""Fig. 6 — per-subprocess execution time: naive NDP vs Typical.

Paper: NDP eliminates data transfer; FE&CT is only ~36% slower on the
storage-side accelerators; weight synchronisation explodes (the new
bottleneck); 1-core preprocessing dominates naive NDP inference.
"""

from repro.analysis.perf import fig06_breakdown
from repro.analysis.tables import format_table


def test_fig06_breakdown(benchmark, report):
    out = benchmark(fig06_breakdown)

    parts = []
    for task_kind, title in (("finetune", "Fig. 6a: fine-tuning"),
                             ("inference", "Fig. 6b: offline inference")):
        rows = [
            [r["task"], r["typical_s_per_img"] * 1e3,
             r["ndp_s_per_img"] * 1e3, r["ndp_over_typical"]]
            for r in out[task_kind]
        ]
        parts.append(format_table(
            ["task", "Typical (ms/img)", "naive NDP (ms/img)",
             "NDP / Typical"],
            rows, title=title,
        ))
    report("fig06_ndp_breakdown", "\n\n".join(parts))

    ft = {r["task"]: r for r in out["finetune"]}
    assert ft["Data Trans."]["ndp_s_per_img"] == 0.0
    assert 1.2 < ft["FE&CT"]["ndp_over_typical"] < 1.6   # paper: 1.36x
    assert ft["Weight Sync."]["ndp_over_typical"] > 20   # paper: 60-70x
    inf = {r["task"]: r for r in out["inference"]}
    assert inf["Preproc."]["ndp_over_typical"] > 1.4     # paper: ~2-3x
    assert 1.0 < inf["FE&Cl"]["ndp_over_typical"] < 1.7  # paper: 1.33x
