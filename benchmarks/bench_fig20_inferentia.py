"""Fig. 20 — NDPipe on AWS Inferentia (NeuronCoreV1) PipeStores.

Paper: the weaker NeuronCoreV1 needs 11-16 PipeStores to match SRV-C
offline inference and 8-13 for fine-tuning, yet still delivers ~1.17x
higher power efficiency thanks to the accelerator's tiny draw.
"""

from repro.analysis.perf import fig20_inferentia
from repro.analysis.tables import format_table


def test_fig20_inferentia(benchmark, report):
    out = benchmark(fig20_inferentia)

    table = format_table(
        ["model", "per-store IPS", "stores to match SRV-C (inf.)",
         "stores to match SRV-C (ft.)", "power-efficiency gain"],
        [[m, d["per_store_ips"], d["inference_stores_to_match_srv_c"],
          d["finetune_stores_to_match_srv_c"], d["inference_power_gain"]]
         for m, d in out.items()],
        title="Fig. 20: NDPipe-Inf1 vs SRV-C",
    )
    report("fig20_inferentia", table)

    for model, data in out.items():
        assert 10 <= data["inference_stores_to_match_srv_c"] <= 17, model
        assert 10 <= data["finetune_stores_to_match_srv_c"] <= 17, model
        assert data["inference_power_gain"] > 1.05, model  # paper: 1.17x
