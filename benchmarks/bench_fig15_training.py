"""Fig. 15 — fine-tuning time vs #PipeStores, four models vs SRV-C.

Paper: NDPipe overtakes SRV-C at 3 PipeStores for ResNet50/InceptionV3 and
~6 for ResNeXt101; returns diminish once the Tuner becomes the bottleneck.
"""

from repro.analysis.perf import fig15_training_scaling
from repro.analysis.tables import format_table


def test_fig15_training_scaling(benchmark, report):
    out = benchmark(fig15_training_scaling)

    parts = []
    for model, data in out.items():
        times = data["ndpipe_time_s"]
        rows = [[n, times[n] / 60.0] for n in (1, 2, 3, 4, 6, 8, 12, 16, 20)]
        table = format_table(
            ["#PipeStores", "NDPipe time (min)"], rows,
            title=(f"Fig. 15 [{model}]  SRV-C = "
                   f"{data['srv_c_time_s'] / 60.0:.2f} min"),
        )
        table += (f"\nP1 (first win) at {data['p1_stores']} stores; "
                  f"APO pick {data['apo_pick']}; BEST (IPS/kJ) at "
                  f"{data['best_stores']} stores")
        parts.append(table)
    report("fig15_training", "\n\n".join(parts))

    assert out["ResNet50"]["p1_stores"] <= 4       # paper: 3
    assert out["InceptionV3"]["p1_stores"] <= 4    # paper: 3
    assert out["ResNeXt101"]["p1_stores"] >= 5     # paper: 6
    for model, data in out.items():
        times = data["ndpipe_time_s"]
        assert times[20] <= times[1], model
