"""Fig. 18 — network-bandwidth sensitivity (IPS/W), ResNet50 & ResNeXt101.

Paper: SRV-C is crushed at 1 Gbps (NDPipe 3.7x better), improves with
bandwidth, and flattens past ~20 Gbps where 8 decompression cores saturate;
NDPipe ships labels only, so it is bandwidth-independent (1.3x better even
at 40 Gbps).
"""

from repro.analysis.perf import fig18_bandwidth_sweep
from repro.analysis.tables import format_table


def test_fig18_bandwidth_sweep(benchmark, report):
    rows = benchmark(fig18_bandwidth_sweep)

    table = format_table(
        ["model", "Gbps", "SRV-C IPS/W", "NDPipe IPS/W", "gain",
         "SRV-C bottleneck"],
        [[r["model"], r["gbps"], r["srv_c_ips_per_w"],
          r["ndpipe_ips_per_w"], r["gain"], r["srv_bottleneck"]]
         for r in rows],
        title="Fig. 18: bandwidth sensitivity (8 PipeStores)",
    )
    report("fig18_bandwidth", table)

    r50 = [r for r in rows if r["model"] == "ResNet50"]
    by_bw = {r["gbps"]: r for r in r50}
    assert by_bw[1]["gain"] > 3.7          # paper: 3.7x at 1 Gbps
    assert by_bw[40]["gain"] > 1.0         # paper: 1.3x at 40 Gbps
    assert by_bw[40]["gain"] < by_bw[1]["gain"]
    # SRV-C flattens past 20 Gbps (decompression/disk wall)
    assert by_bw[40]["srv_c_ips_per_w"] < by_bw[20]["srv_c_ips_per_w"] * 1.1
    assert by_bw[40]["srv_bottleneck"] in ("Decomp.", "Read")
