"""Fig. 12 — NPE optimisation ablation (Naive -> +Offload -> +Comp -> +Batch).

Paper: naive inference is dominated by 1-core preprocessing; offloading
removes it; compression shrinks reads; batch 128 balances the stages and
leaves the accelerator as the (intended) bottleneck.
"""

from repro.analysis.perf import fig12_npe_ablation
from repro.analysis.tables import format_table
from repro.core.npe import ABLATION_LEVELS, npe_throughput_ips
from repro.models.catalog import model_graph


def test_fig12_npe_ablation(benchmark, report, bench_json):
    out = benchmark(fig12_npe_ablation)

    parts = []
    for task, title in (("finetune", "Fig. 12a: fine-tuning (ms/image)"),
                        ("inference", "Fig. 12b: offline inference (ms/image)")):
        rows = out[task]
        keys = [k for k in rows[0] if k != "level"]
        parts.append(format_table(
            ["level"] + [k.replace("_ms", "") for k in keys],
            [[r["level"]] + [r[k] for k in keys] for r in rows],
            title=title,
        ))
    graph = model_graph("ResNet50")
    rates = [f"{level}: {npe_throughput_ips(graph, level):.0f} IPS"
             for level in ABLATION_LEVELS]
    text = "\n\n".join(parts) + "\n\npipelined PipeStore throughput: " + ", ".join(rates)
    report("fig12_npe_ablation", text)

    results = [
        ("npe_throughput_ips", npe_throughput_ips(graph, level), "images/s",
         {"level": level})
        for level in ABLATION_LEVELS
    ]
    for task in ("finetune", "inference"):
        for row in out[task]:
            for key, value in row.items():
                if key == "level":
                    continue
                results.append((
                    "npe_subtask_time", value, "ms/image",
                    {"task": task, "level": row["level"],
                     "subtask": key.replace("_ms", "")},
                ))
    bench_json("fig12_npe_ablation", results, config={"model": "ResNet50"})

    inf = {r["level"]: r for r in out["inference"]}
    assert inf["Naive"]["Preproc_ms"] == max(
        v for k, v in inf["Naive"].items() if k.endswith("_ms"))
    assert inf["+Offload"]["Preproc_ms"] == 0.0
    assert inf["+Comp"]["Read_ms"] < inf["+Offload"]["Read_ms"]
    assert inf["+Batch"]["FE&Cl_ms"] < inf["+Comp"]["FE&Cl_ms"] / 3
