"""Tests for training engines and distributed-training baselines."""

import numpy as np
import pytest

from repro.data.loader import normalize_images
from repro.models.catalog import model_graph
from repro.models.registry import tiny_model
from repro.sim.specs import TEN_GBE, TESLA_T4
from repro.train.distributed import (
    data_parallel_finetune,
    model_parallel_finetune,
    scaling_curve,
)
from repro.train.finetune import finetune_classifier
from repro.train.fulltrain import full_train


class TestFullTrain:
    def test_loss_decreases(self, small_world):
        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        x, y = small_world.sample(128, 0)
        history = full_train(model, normalize_images(x), y, epochs=3, seed=0)
        assert history.losses[-1] < history.losses[0]
        assert history.epochs == 3
        assert history.images_seen == 3 * 128

    def test_all_layers_update(self, small_world):
        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        before = model.state_dict()
        x, y = small_world.sample(64, 0)
        full_train(model, normalize_images(x), y, epochs=1, seed=0)
        after = model.state_dict()
        changed = sum(1 for k in before if not np.array_equal(before[k],
                                                              after[k]))
        assert changed > len(before) // 2

    def test_callback_invoked(self, small_world):
        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        x, y = small_world.sample(32, 0)
        calls = []
        full_train(model, normalize_images(x), y, epochs=2,
                   callback=lambda e, loss: calls.append((e, loss)))
        assert [c[0] for c in calls] == [0, 1]

    def test_validation(self, small_world):
        model = tiny_model("ResNet50", num_classes=8)
        x, y = small_world.sample(8, 0)
        with pytest.raises(ValueError):
            full_train(model, x, y, epochs=0)
        with pytest.raises(ValueError):
            full_train(model, x, y, optimizer="rmsprop")

    def test_final_loss_requires_history(self):
        from repro.train.fulltrain import TrainHistory

        with pytest.raises(ValueError):
            TrainHistory().final_loss


class TestFinetuneWrapper:
    def test_wrapper_freezes_features(self, small_world):
        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        x, y = small_world.sample(64, 0)
        report = finetune_classifier(model, normalize_images(x), y, epochs=1)
        assert report.images_extracted == 64
        for i in range(model.num_stages - 1):
            assert all(not p.requires_grad
                       for p in model.stage(i).parameters())


class TestDataParallel:
    @pytest.fixture(scope="class")
    def resnet(self):
        return model_graph("ResNet50")

    def test_sync_traffic_grows_with_workers(self, resnet):
        est4 = data_parallel_finetune(resnet, 4, TESLA_T4, TEN_GBE, 100_000)
        est8 = data_parallel_finetune(resnet, 8, TESLA_T4, TEN_GBE, 100_000)
        assert est8.sync_traffic_bytes > est4.sync_traffic_bytes

    def test_full_sync_much_worse_than_classifier_sync(self, resnet):
        clf = data_parallel_finetune(resnet, 4, TESLA_T4, TEN_GBE, 100_000,
                                     trainable_only=True)
        full = data_parallel_finetune(resnet, 4, TESLA_T4, TEN_GBE, 100_000,
                                      trainable_only=False)
        assert full.sync_time_s > 5 * clf.sync_time_s

    def test_scaling_efficiency_degrades(self, resnet):
        """§4.1: adding NDP devices does not linearly improve fine-tuning."""
        curve = scaling_curve(data_parallel_finetune, resnet, [1, 4, 16],
                              TESLA_T4, TEN_GBE, 500_000)
        effs = [c.scaling_efficiency for c in curve]
        assert effs[0] > effs[-1]
        assert 0.0 < effs[-1] <= 1.0

    def test_validation(self, resnet):
        with pytest.raises(ValueError):
            data_parallel_finetune(resnet, 0, TESLA_T4, TEN_GBE, 100)


class TestModelParallel:
    @pytest.fixture(scope="class")
    def resnet(self):
        return model_graph("ResNet50")

    def test_activation_traffic_positive_for_multiworker(self, resnet):
        est = model_parallel_finetune(resnet, 3, TESLA_T4, TEN_GBE, 100_000)
        assert est.sync_traffic_bytes > 0
        assert est.strategy == "model-parallel"

    def test_single_worker_no_boundary_traffic(self, resnet):
        est = model_parallel_finetune(resnet, 1, TESLA_T4, TEN_GBE, 100_000)
        assert est.sync_traffic_bytes == 0

    def test_mp_slower_than_ideal_split(self, resnet):
        """Stage imbalance + activation shipping keep MP from scaling."""
        est1 = model_parallel_finetune(resnet, 1, TESLA_T4, TEN_GBE, 100_000)
        est4 = model_parallel_finetune(resnet, 4, TESLA_T4, TEN_GBE, 100_000)
        assert est4.time_s > est1.time_s / 4

    def test_validation(self, resnet):
        with pytest.raises(ValueError):
            model_parallel_finetune(resnet, 0, TESLA_T4, TEN_GBE, 100)

    def test_ftdmp_beats_both_classical_strategies(self, resnet):
        """The paper's motivation: FT-DMP avoids both DP sync and MP
        bubbles.  Compare 4-worker times for the same job."""
        from repro.core.partition import evaluate_partition, FinetunePlanConfig
        from repro.sim.specs import TESLA_V100

        images = 500_000
        config = FinetunePlanConfig(dataset_images=images)
        ftdmp = evaluate_partition(resnet, 5, 4, TESLA_T4, TESLA_V100,
                                   TEN_GBE, config).training_time_s
        dp = data_parallel_finetune(resnet, 4, TESLA_T4, TEN_GBE,
                                    images).time_s
        mp = model_parallel_finetune(resnet, 4, TESLA_T4, TEN_GBE,
                                     images).time_s
        assert ftdmp < dp
        assert ftdmp < mp
