"""Tests for the comparison-system models (SRV variants, strawmen)."""

import pytest

from repro.models.catalog import model_graph
from repro.sim.specs import NetworkSpec
from repro.train.baselines import (
    ideal_finetune,
    ideal_offline_inference,
    inference_crossovers,
    naive_ndp_finetune_breakdown,
    naive_ndp_inference_breakdown,
    ndpipe_inference,
    srv_finetune,
    srv_inference,
    typical_finetune,
    typical_finetune_breakdown,
    typical_inference_breakdown,
    typical_offline_inference,
)


@pytest.fixture(scope="module")
def resnet():
    return model_graph("ResNet50")


class TestSrvInference:
    def test_ideal_fastest(self, resnet):
        rates = {v: srv_inference(v, resnet).throughput_ips
                 for v in ("SRV-I", "SRV-P", "SRV-C")}
        assert rates["SRV-I"] > rates["SRV-C"] > rates["SRV-P"]

    def test_srv_p_network_bound(self, resnet):
        point = srv_inference("SRV-P", resnet)
        assert point.bottleneck == "Data Trans."

    def test_srv_i_gpu_bound(self, resnet):
        assert srv_inference("SRV-I", resnet).bottleneck == "FE&Cl"

    def test_unknown_variant(self, resnet):
        with pytest.raises(ValueError):
            srv_inference("SRV-X", resnet)

    def test_compute_bound_models_equal_for_i_and_c(self):
        """ResNeXt/ViT: two V100s bound SRV-I and SRV-C alike (SRV-P stays
        network-bound because its binaries are uncompressed)."""
        graph = model_graph("ResNeXt101")
        srv_i = srv_inference("SRV-I", graph).throughput_ips
        srv_c = srv_inference("SRV-C", graph).throughput_ips
        assert srv_i == pytest.approx(srv_c, rel=0.02)


class TestNdpipeInference:
    def test_scales_linearly(self, resnet):
        one = ndpipe_inference(resnet, 1).throughput_ips
        ten = ndpipe_inference(resnet, 10).throughput_ips
        assert ten == pytest.approx(10 * one)

    def test_per_store_rate_matches_paper(self, resnet):
        """Paper §6.2: each PipeStore delivers 2129 IPS for ResNet50."""
        per_store = ndpipe_inference(resnet, 1).throughput_ips
        assert per_store == pytest.approx(2129, rel=0.02)

    def test_oom_raises(self):
        with pytest.raises(MemoryError):
            ndpipe_inference(model_graph("ViT"), 1, batch_size=512)

    def test_validation(self, resnet):
        with pytest.raises(ValueError):
            ndpipe_inference(resnet, 0)

    def test_crossovers_ordered(self, resnet):
        crossings = inference_crossovers(resnet)
        assert crossings["P1"] <= crossings["P2"] <= crossings["P3"]

    @pytest.mark.parametrize("model", ["ResNet50", "InceptionV3",
                                       "ResNeXt101", "ViT"])
    def test_crossovers_in_paper_band(self, model):
        """Paper: P1 within 1-7, P2 within ~3-7, P3 within 5-7."""
        crossings = inference_crossovers(model_graph(model))
        assert 1 <= crossings["P1"] <= 7
        assert 2 <= crossings["P2"] <= 7
        assert 5 <= crossings["P3"] <= 8

    def test_ndpipe_more_power_efficient_than_srv_c(self, resnet):
        """Fig. 14 headline: NDPipe beats SRV-C on IPS/W."""
        crossings = inference_crossovers(resnet)
        nd = ndpipe_inference(resnet, crossings["P2"])
        srv = srv_inference("SRV-C", resnet)
        assert nd.ips_per_watt > 1.2 * srv.ips_per_watt


class TestSrvFinetune:
    def test_network_bound_for_resnet(self, resnet):
        point = srv_finetune(resnet)
        assert point.bottleneck == "Data Trans."
        assert point.throughput_ips == pytest.approx(5700, rel=0.05)

    def test_compute_bound_for_resnext(self):
        point = srv_finetune(model_graph("ResNeXt101"))
        assert point.bottleneck == "FE&CT"

    def test_paper_crossovers(self):
        """Fig. 15: NDPipe beats SRV-C with 3 stores (ResNet50/Inception),
        ~6 for ResNeXt101."""
        from repro.sim.specs import TESLA_T4

        for model, expected in (("ResNet50", 3), ("InceptionV3", 3),
                                ("ResNeXt101", 6)):
            graph = model_graph(model)
            srv_rate = srv_finetune(graph).throughput_ips
            per_store = TESLA_T4.fe_ips(graph,
                                        graph.num_partition_points() - 2, 512)
            import math

            crossover = math.ceil(srv_rate / per_store)
            assert crossover == expected, model


class TestStrawmen:
    def test_typical_vs_ideal_finetune_ratio(self, resnet):
        """Fig. 5a: Typical ~3.7x slower than Ideal."""
        ratio = (ideal_finetune(resnet).throughput_ips
                 / typical_finetune(resnet).throughput_ips)
        assert 3.0 < ratio < 4.6

    def test_typical_vs_ideal_inference_values(self, resnet):
        """Fig. 5b: ~94 vs ~123 IPS."""
        typical = typical_offline_inference(resnet).throughput_ips
        ideal = ideal_offline_inference(resnet).throughput_ips
        assert typical == pytest.approx(94, rel=0.2)
        assert ideal == pytest.approx(123, rel=0.1)

    def test_sequential_slower_than_pipelined_srv(self, resnet):
        assert (typical_offline_inference(resnet).throughput_ips
                < srv_inference("SRV-P", resnet).throughput_ips)


class TestNaiveNdpBreakdowns:
    def test_fig6a_fecht_modestly_slower(self, resnet):
        """Fig. 6a: naive-NDP FE&CT only ~36% slower than Typical's."""
        typical = typical_finetune_breakdown(resnet)
        ndp = naive_ndp_finetune_breakdown(resnet)
        ratio = ndp["FE&CT"] / typical["FE&CT"]
        assert 1.2 < ratio < 1.6

    def test_fig6a_weight_sync_explodes(self, resnet):
        """Fig. 6a: weight sync becomes the new bottleneck (order-of-
        magnitude blowup vs the Typical host's local sync)."""
        typical = typical_finetune_breakdown(resnet)
        ndp = naive_ndp_finetune_breakdown(resnet)
        assert ndp["Weight Sync."] / typical["Weight Sync."] > 20

    def test_fig6a_data_transfer_eliminated(self, resnet):
        assert naive_ndp_finetune_breakdown(resnet)["Data Trans."] == 0.0

    def test_fig6b_preprocessing_bottleneck(self, resnet):
        """Fig. 6b: 1 core per store makes preprocessing dominate."""
        ndp = naive_ndp_inference_breakdown(resnet)
        assert ndp["Preproc."] == max(ndp.values())
        typical = typical_inference_breakdown(resnet)
        assert ndp["Preproc."] > 1.5 * typical["Preproc."]

    def test_fig6b_fecl_within_1_5x(self, resnet):
        """Fig. 6b: aggregate store GPUs are only ~1.33x slower."""
        ndp = naive_ndp_inference_breakdown(resnet)
        typical = typical_inference_breakdown(resnet)
        assert 1.0 < ndp["FE&Cl"] / typical["FE&Cl"] < 1.7


class TestBandwidthSensitivity:
    def test_srv_c_scales_then_flattens(self, resnet):
        """Fig. 18: SRV-C improves to ~20 Gbps, then decompression binds."""
        rates = {g: srv_inference("SRV-C", resnet,
                                  NetworkSpec(gbps=g)).throughput_ips
                 for g in (1, 10, 20, 40)}
        assert rates[10] > 5 * rates[1]
        assert rates[40] == pytest.approx(rates[20], rel=0.12)
        point40 = srv_inference("SRV-C", resnet, NetworkSpec(gbps=40))
        assert point40.bottleneck in ("Decomp.", "Read")

    def test_ndpipe_independent_of_bandwidth(self, resnet):
        """NDPipe ships labels; its throughput ignores the fabric."""
        assert (ndpipe_inference(resnet, 8).throughput_ips
                == ndpipe_inference(resnet, 8).throughput_ips)
