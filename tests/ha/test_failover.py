"""Tuner HA: bit-exact failover, epoch fencing, checkpoint shipping.

The acceptance scenario: a seeded schedule crashes the primary Tuner
mid-fine-tune; the controller suspects it, promotes the warm standby
under a fresh epoch, and the interrupted FT-DMP lifecycle completes
automatically — with **zero** acknowledged-upload loss and final model
weights identical, bit for bit, to a run that never saw the fault.
"""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.config import ClusterConfig
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.faults import (
    FaultInjector,
    StaleEpochError,
    TunerCrash,
    TunerCrashError,
    TunerRecover,
)
from repro.ha import PRIMARY_MEMBER, HAConfig
from repro.models.registry import tiny_model

NUM_PHOTOS = 18


def build_cluster(seed=0):
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3,
        seed=seed))
    cluster = NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=3, nominal_raw_bytes=8192, seed=seed))
    x, y = world.sample(NUM_PHOTOS, 0, rng=np.random.default_rng(seed + 1))
    ids = cluster.ingest(x, train_labels=y)
    return cluster, ids


def crash_mid_finetune(seed=0):
    """Run the acceptance schedule: crash the primary inside run 1.

    Ingest happens before the injector attaches, so the clock counts
    only HA + training traffic: the initial standby seed is tick 1 and
    run boundaries ship at ticks 5/9/13 — tick 7 lands mid-run-1.
    """
    cluster, ids = build_cluster(seed)
    injector = FaultInjector(
        [TunerCrash(at=7, tuner_id="tuner")]).attach(cluster)
    ha = cluster.enable_ha(injector=injector)
    with pytest.raises(TunerCrashError):
        cluster.finetune(epochs=1, num_runs=3)
    events = ha.poll_until_quiet()
    assert ("suspect", PRIMARY_MEMBER) in events
    report = ha.resume_pending()
    return cluster, ha, ids, report


class TestFailover:
    def test_failover_completes_bit_exact(self):
        baseline, _ = build_cluster()
        baseline.finetune(epochs=1, num_runs=3)
        expected = baseline.tuner.model.state_dict()

        cluster, ha, ids, report = crash_mid_finetune()
        assert report is not None  # the interrupted lifecycle finished
        assert cluster.tuner.name == "tuner-standby"
        assert cluster.tuner.epoch == 1
        assert cluster.tuner.version == baseline.tuner.version
        assert ha.metrics.failovers.value() == 1
        got = cluster.tuner.model.state_dict()
        assert set(got) == set(expected)
        for key in expected:
            assert np.array_equal(expected[key], got[key]), key

    def test_two_same_seed_runs_identical(self):
        c1 = crash_mid_finetune()[0]
        c2 = crash_mid_finetune()[0]
        w1, w2 = c1.tuner.model.state_dict(), c2.tuner.model.state_dict()
        for key in w1:
            assert np.array_equal(w1[key], w2[key]), key

    def test_zero_acknowledged_upload_loss(self):
        cluster, _, ids, _ = crash_mid_finetune()
        assert len(ids) == NUM_PHOTOS
        for pid in ids:
            assert pid in cluster.database
            store = cluster._resolve_store(
                cluster.database.lookup(pid).location)
            assert store.objects.exists(store.objects.raw_key(pid))

    def test_resume_is_pending_from_the_last_shipped_boundary(self):
        _, ha, _, _ = crash_mid_finetune()
        assert ha.pending_resume is None  # consumed by resume_pending

    def test_promotion_requires_a_shipped_frame(self):
        cluster, _ = build_cluster()
        ha = cluster.enable_ha()
        ha.failover.last_frame = None
        with pytest.raises(RuntimeError, match="no checkpoint"):
            ha.failover.promote()
        assert not ha.failover.can_promote()


class TestFencing:
    def finished_failover(self):
        cluster, ha, _, _ = crash_mid_finetune()
        # recover the deposed primary's node so its traffic flows again
        ha.injector.advance(60)  # past nothing: schedule is spent
        ha.injector._fire(TunerRecover(at=0, tuner_id="tuner"))
        old_primary = ha.failover.standby  # demoted at promotion
        assert old_primary.name == "tuner"
        return cluster, ha, old_primary

    def test_stale_epoch_updates_are_fenced(self):
        cluster, ha, old_primary = self.finished_failover()
        assert old_primary.epoch == 0 < cluster.tuner.epoch
        before = {s.store_id: s.model_version for s in cluster.stores}
        stats = old_primary.distribute_update()
        assert sorted(stats.stores_fenced) == sorted(before)
        assert stats.degraded
        # split-brain did not corrupt any store replica
        for store in cluster.stores:
            assert store.model_version == before[store.store_id]
            assert store.accepted_epoch == cluster.tuner.epoch
        assert ha.metrics.fenced_updates.value(node="tuner") == len(before)

    def test_store_fence_rejects_regressing_epochs(self):
        cluster, _ = build_cluster()
        store = cluster.stores[0]
        store.apply_full_state(cluster.tuner.model.state_dict(),
                               version=store.model_version, epoch=3)
        with pytest.raises(StaleEpochError):
            store.apply_full_state(cluster.tuner.model.state_dict(),
                                   version=store.model_version, epoch=2)
        assert store.accepted_epoch == 3


class TestCheckpointShipping:
    def test_every_run_boundary_ships_a_frame(self):
        cluster, _ = build_cluster()
        ha = cluster.enable_ha()
        shipped = ha.metrics.checkpoints_shipped.value()
        cluster.finetune(epochs=1, num_runs=3)
        # 3 boundaries + 1 post-distribution frame
        assert ha.metrics.checkpoints_shipped.value() == shipped + 4
        assert ha.metrics.checkpoint_bytes.value() > 0

    def test_shipping_skips_a_dead_standby(self):
        cluster, _ = build_cluster()
        ha = cluster.enable_ha()
        frame = ha.failover.last_frame
        ha.failover.standby.fail()
        assert ha.failover.ship_checkpoint(None) == 0
        assert ha.failover.last_frame is frame  # kept the last good frame
        assert not ha.failover.can_promote()

    def test_standby_disabled_by_config(self):
        cluster, _ = build_cluster()
        ha = cluster.enable_ha(HAConfig(standby=False))
        assert ha.failover is None
        assert ha.tuners() == [cluster.tuner]
        cluster.finetune(epochs=1, num_runs=1)  # ship hook is a no-op
