"""Serving across store recover()/reconcile(): no drop, no double-count.

Satellite coverage for the robustness PR: the batched upload path
(:meth:`NDPipeCluster.serve_uploads`, i.e. ServingFrontend) and the
streaming front end both keep their conservation guarantees while a
store crashes, is evicted, recovers, and reconciles mid-trace.
"""

import numpy as np

from repro.core.cluster import InferenceServer, NDPipeCluster
from repro.core.config import ClusterConfig
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.models.registry import tiny_model
from repro.serving import ServeRequest, ServingConfig, StreamConfig
from repro.serving.stream import StreamingFrontend


def build_cluster(replication=2):
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0))
    cluster = NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=3, nominal_raw_bytes=8192,
                      replication=replication, seed=0))
    return cluster, world


def make_requests(world, tag, n, day=0, seed=0):
    x, y = world.sample(n, day, rng=np.random.default_rng(seed))
    return [
        ServeRequest(request_id=f"{tag}-{i}", arrival_s=i * 0.005,
                     pixels=x[i], train_label=int(y[i]))
        for i in range(n)
    ]


def assert_conserved(report, ids):
    assert report.offered == report.completed + report.shed_total
    assert len(ids) == report.completed


class TestServeUploadsAcrossRecovery:
    def test_no_drop_no_double_count_across_recover(self):
        cluster, world = build_cluster()
        victim = cluster.stores[0]

        r1, ids1 = cluster.serve_uploads(make_requests(world, "a", 6, seed=1))
        assert_conserved(r1, ids1)

        victim.fail()
        cluster.reingest_orphans(victim.store_id)
        r2, ids2 = cluster.serve_uploads(make_requests(world, "b", 6, seed=2))
        assert_conserved(r2, ids2)

        cluster.recover(victim.store_id)  # repair + catch_up + reconcile
        r3, ids3 = cluster.serve_uploads(make_requests(world, "c", 6, seed=3))
        assert_conserved(r3, ids3)

        landed = ids1 + ids2 + ids3
        # every completed upload got a unique durable id (no double-count)
        assert len(landed) == len(set(landed))
        for pid in landed:  # ...and none were dropped by the recovery
            record = cluster.database.lookup(pid)
            store = cluster._resolve_store(record.location)
            assert store.is_available
            assert store.objects.exists(store.objects.raw_key(pid))
            primary = cluster.replicas.primary(pid)
            assert primary == record.location

    def test_mid_outage_uploads_avoid_the_downed_store(self):
        cluster, world = build_cluster()
        victim = cluster.stores[0]
        victim.fail()
        report, ids = cluster.serve_uploads(make_requests(world, "x", 8))
        assert_conserved(report, ids)
        for pid in ids:
            assert cluster.database.lookup(pid).location != victim.store_id
            assert not cluster.replicas.is_holder(pid, victim.store_id)

    def test_reconcile_after_eviction_keeps_serving_consistent(self):
        cluster, world = build_cluster(replication=1)
        _, ids1 = cluster.serve_uploads(make_requests(world, "a", 6, seed=1))
        victim = cluster.stores[0]
        victim.fail()
        moved = cluster.reingest_orphans(victim.store_id)
        assert moved  # journalled uploads re-placed onto survivors
        victim.repair()
        evicted = cluster.reconcile(victim.store_id)
        assert sorted(evicted) == sorted(moved)
        r2, ids2 = cluster.serve_uploads(make_requests(world, "b", 6, seed=2))
        assert_conserved(r2, ids2)
        assert not set(ids1) & set(ids2)


class TestStreamingAcrossDrain:
    def make_frontend(self):
        config = ServingConfig(replicas=2).validated()

        def factory(index):
            return InferenceServer(
                tiny_model("ResNet50", num_classes=8, width=8, seed=index),
                name=f"stream-replica-{index}")

        stream = StreamConfig(min_replicas=2, max_replicas=2,
                              autoscale=False)
        return StreamingFrontend(factory, config, stream)

    def trace(self, tag, start_s, n=16):
        """One arrival burst; bursts advance in time because the replica
        timeline persists across serve() calls on a reused front end."""
        rng = np.random.default_rng(3)
        pixels = rng.random((n, 3, 16, 16)).astype(np.float32)
        return [
            ServeRequest(request_id=f"{tag}-{i}",
                         arrival_s=start_s + i * 0.002, pixels=pixels[i])
            for i in range(n)
        ]

    def test_conserved_while_replica_drained_and_rejoined(self):
        frontend = self.make_frontend()
        report = frontend.serve(self.trace("warm", 0.0))
        assert report.conserved

        assert frontend.dispatcher.drain("stream-replica-0")
        free_before = frontend.dispatcher._free_at[0]
        report = frontend.serve(self.trace("drained", 1.0))
        assert report.conserved
        # the drained replica did no work during the outage window
        assert frontend.dispatcher._free_at[0] == free_before

        assert frontend.dispatcher.undrain("stream-replica-0")
        report = frontend.serve(self.trace("rejoined", 2.0))
        assert report.conserved
        assert frontend.dispatcher._free_at[0] > free_before
