"""HAController: store eviction/rejoin automation, replica drains."""

import numpy as np

from repro.core.cluster import InferenceServer, NDPipeCluster
from repro.core.config import ClusterConfig
from repro.core.fabric import NetworkFabric
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.faults.retry import RetryPolicy
from repro.ha import HAConfig
from repro.models.registry import tiny_model
from repro.serving import ReplicaDispatcher, ServingConfig


def build_cluster(num_photos=12, replication=1):
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0))
    cluster = NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=3, nominal_raw_bytes=8192,
                      replication=replication, seed=0))
    x, y = world.sample(num_photos, 0, rng=np.random.default_rng(1))
    cluster.ingest(x, train_labels=y)
    return cluster


class TestStoreMembership:
    def test_suspected_store_is_evicted_automatically(self):
        cluster = build_cluster()
        ha = cluster.enable_ha(HAConfig(standby=False))
        victim = cluster.stores[0]
        stranded = cluster.database.ids_at(victim.store_id)
        assert stranded
        victim.fail()
        events = ha.poll_until_quiet()
        assert ("suspect", victim.store_id) in events
        assert ha.metrics.store_evictions.value(store=victim.store_id) == 1
        # what test code used to drive by hand happened by itself:
        # every journalled photo moved to a survivor
        for pid in stranded:
            assert cluster.database.lookup(pid).location != victim.store_id
        assert (ha.metrics.orphans_reingested.value(store=victim.store_id)
                == len(stranded))

    def test_heard_again_store_rejoins_through_recover(self):
        cluster = build_cluster()
        ha = cluster.enable_ha(HAConfig(standby=False))
        victim = cluster.stores[0]
        victim.fail()
        ha.poll_until_quiet()
        victim.repair()
        events = ha.poll_until_quiet()
        assert ("rejoin", victim.store_id) in events
        assert ha.metrics.store_rejoins.value(store=victim.store_id) == 1
        # recover() reconciled: no photo the cluster moved away is still
        # claimed by the rejoined store
        for pid in victim.photo_ids():
            record = cluster.database.lookup(pid)
            assert (record.location == victim.store_id
                    or cluster.replicas.is_holder(pid, victim.store_id))

    def test_auto_evict_can_be_disabled(self):
        cluster = build_cluster()
        ha = cluster.enable_ha(HAConfig(standby=False, auto_evict=False))
        victim = cluster.stores[0]
        stranded = cluster.database.ids_at(victim.store_id)
        victim.fail()
        events = ha.poll_until_quiet()
        assert ("suspect", victim.store_id) in events
        for pid in stranded:  # detector observed, but did not react
            assert cluster.database.lookup(pid).location == victim.store_id

    def test_enable_ha_is_idempotent(self):
        cluster = build_cluster(num_photos=2)
        ha = cluster.enable_ha(HAConfig(standby=False))
        assert cluster.enable_ha() is ha


def make_dispatcher(num=2):
    replicas = [
        InferenceServer(tiny_model("ResNet50", num_classes=8, width=8,
                                   seed=i), name=f"replica-{i}")
        for i in range(num)
    ]
    return ReplicaDispatcher(replicas, ServingConfig(replicas=num).validated(),
                             NetworkFabric(), RetryPolicy())


class TestDispatcherDrain:
    def test_drain_is_a_state_change_once(self):
        disp = make_dispatcher()
        assert disp.drain("replica-0") is True
        assert disp.drain("replica-0") is False
        assert disp.drain("no-such-replica") is False
        assert disp.drained() == ["replica-0"]
        assert disp.undrain("replica-0") is True
        assert disp.undrain("replica-0") is False

    def test_drained_replica_gets_no_batches(self):
        disp = make_dispatcher()
        disp._free_at = [0.0, 5.0]  # replica-0 would win on free time
        disp.drain("replica-0")
        assert disp._pick_replica() == 1

    def test_all_drained_degrades_to_full_fleet(self):
        disp = make_dispatcher()
        disp._free_at = [3.0, 5.0]
        disp.drain("replica-0")
        disp.drain("replica-1")
        assert disp._pick_replica() == 0  # serve anyway, earliest free

    def test_retired_replica_leaves_the_drained_set(self):
        disp = make_dispatcher()
        disp.drain("replica-1")
        assert disp.remove_idle_replica(now_s=10.0) == "replica-1"
        assert disp.drained() == []


class TestReplicaMembership:
    def test_controller_drains_and_undrains_replicas(self):
        cluster = build_cluster(num_photos=2)
        ha = cluster.enable_ha(HAConfig(standby=False))
        disp = make_dispatcher()
        ha.attach_dispatcher(disp)
        alive = {"up": True}
        ha.register_member("replica-0", lambda: alive["up"], kind="replica")
        alive["up"] = False
        ha.poll_until_quiet()
        assert disp.drained() == ["replica-0"]
        assert ha.metrics.replica_drains.value(
            replica="replica-0", action="drain") == 1
        alive["up"] = True
        ha.poll_until_quiet()
        assert disp.drained() == []
        assert ha.metrics.replica_drains.value(
            replica="replica-0", action="undrain") == 1
