"""Failure detector: deadlines, phi scores, one-shot transitions."""

import pytest

from repro.ha import ALIVE, SUSPECT, UNKNOWN, FailureDetector, HAConfig


def make(**overrides):
    return FailureDetector(HAConfig(**overrides))


class TestDeadline:
    def test_silence_past_deadline_suspects(self):
        det = make(suspect_after_ticks=3)
        det.heartbeat("m", 1)
        assert not det.check("m", 2)
        assert not det.check("m", 3)
        assert det.check("m", 4)  # elapsed 3 >= 3
        assert det.is_suspect("m")

    def test_transition_fires_exactly_once(self):
        det = make(suspect_after_ticks=2)
        det.heartbeat("m", 1)
        assert det.check("m", 5)
        assert not det.check("m", 6)  # already suspected
        assert det.suspects() == ["m"]

    def test_unknown_member_never_suspected(self):
        det = make()
        assert not det.check("ghost", 100)
        assert det.state("ghost") == UNKNOWN

    def test_rejoin_returns_true_and_clears_suspicion(self):
        det = make(suspect_after_ticks=2)
        det.heartbeat("m", 1)
        assert det.check("m", 4)
        assert det.state("m") == SUSPECT
        assert det.heartbeat("m", 5) is True
        assert det.state("m") == ALIVE
        assert det.heartbeat("m", 6) is False  # plain beat, not a rejoin


class TestPhi:
    def test_phi_grows_with_silence(self):
        det = make()
        for t in (1, 2, 3, 4):
            det.heartbeat("m", t)
        assert det.phi("m", 4) == 0.0
        assert det.phi("m", 6) == pytest.approx(2.0)  # mean interval 1

    def test_phi_adapts_to_slow_cadence(self):
        """A member beating every 5 ticks is not suspected at elapsed 5."""
        det = make(suspect_after_ticks=100, phi_threshold=3.0)
        for t in (5, 10, 15, 20):
            det.heartbeat("m", t)
        assert not det.check("m", 25)  # phi = 5/5 = 1
        assert not det.check("m", 34)  # phi = 14/5 = 2.8
        assert det.check("m", 35)      # phi = 15/5 = 3.0

    def test_phi_crossing_suspects_before_deadline(self):
        det = make(suspect_after_ticks=50, phi_threshold=4.0)
        for t in (1, 2, 3, 4):
            det.heartbeat("m", t)
        assert det.check("m", 8)  # elapsed 4 over mean 1 -> phi 4

    def test_last_heard(self):
        det = make()
        assert det.last_heard("m") is None
        det.heartbeat("m", 9)
        assert det.last_heard("m") == 9


class TestConfig:
    def test_validation_rejects_bad_knobs(self):
        for bad in (dict(heartbeat_interval_ticks=0),
                    dict(suspect_after_ticks=0),
                    dict(phi_threshold=0.0),
                    dict(window=0),
                    dict(heartbeat_bytes=-1)):
            with pytest.raises(ValueError):
                HAConfig(**bad).validated()

    def test_round_trip(self):
        config = HAConfig(suspect_after_ticks=7, standby=False)
        assert HAConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="unknown"):
            HAConfig.from_dict({"nope": 1})
