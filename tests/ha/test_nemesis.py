"""Nemesis chaos runs: invariants hold, logs replay deterministically."""

import pytest

from repro.ha import InvariantViolation, NemesisHarness


def run(seed, steps=6):
    return NemesisHarness(seed=seed, steps=steps, num_stores=3,
                          photos_per_step=3)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_invariants_hold_across_seeds(seed):
    harness = run(seed)
    report = harness.run()
    assert len(report.events) == 6
    assert report.invariant_checks >= 3 * 6
    assert report.photos_acknowledged == len(set(harness.acknowledged))
    # every step's bookkeeping made it into the log
    for entry in report.events:
        assert entry["outcome"] in ("ok", "failed")
        assert entry["epoch"] >= 0

    # the log is JSON-serialisable (it is the CI artifact)
    assert report.to_json()


def test_event_log_is_deterministic():
    a = run(1).run().to_dict()
    b = run(1).run().to_dict()
    assert a == b


def test_tuner_crash_drives_a_failover():
    """Seed 1's schedule includes a tuner crash mid-fine-tune."""
    report = run(1, steps=8).run()
    assert report.failovers >= 1
    assert report.final_epoch >= 1
    # the run kept going after the election: model training completed
    assert report.final_version >= 1


def test_acknowledged_loss_is_loud():
    harness = run(0, steps=2)
    harness.run()
    pid = harness.acknowledged[0]
    # vaporise every copy: blobs on all stores plus the journal entry
    for store in harness.cluster.stores:
        if store.objects.exists(store.objects.raw_key(pid)):
            store.evict_photo(pid)
    if harness.cluster._journal is not None:
        harness.cluster._journal.pop(pid, None)
    with pytest.raises(InvariantViolation, match="lost"):
        harness.check_invariants(99)


def test_lineage_regression_is_loud():
    harness = run(0, steps=1)
    harness.run()
    harness.cluster.tuner.epoch = -1
    with pytest.raises(InvariantViolation, match="lineage"):
        harness.check_invariants(99)


def test_harness_validates_inputs():
    with pytest.raises(ValueError):
        NemesisHarness(steps=0)
    with pytest.raises(ValueError):
        NemesisHarness(num_stores=1)
