"""Tests for the tiny runnable model zoo and the split-execution invariant."""

import numpy as np
import pytest

from repro.models.blocks import channel_shuffle
from repro.models.registry import TINY_FACTORIES, tiny_model
from repro.models.split import SplitModel, assert_split_consistent
from repro.nn.tensor import Tensor

MODELS = sorted(TINY_FACTORIES)


@pytest.fixture(scope="module")
def batch():
    return Tensor(np.random.default_rng(0).normal(size=(3, 3, 16, 16)))


class TestZoo:
    @pytest.mark.parametrize("name", MODELS)
    def test_forward_shape(self, name, batch):
        model = tiny_model(name, num_classes=7).eval()
        assert model(batch).shape == (3, 7)

    @pytest.mark.parametrize("name", MODELS)
    def test_split_consistency_every_cut(self, name, batch):
        model = tiny_model(name, num_classes=5).eval()
        for split in range(model.num_stages + 1):
            assert_split_consistent(model, batch, split)

    @pytest.mark.parametrize("name", MODELS)
    def test_stage_names_match_full_scale_graph(self, name):
        from repro.models.catalog import model_graph

        tiny = tiny_model(name, num_classes=5)
        full = model_graph(name)
        assert tiny.stage_names == full.stage_names()

    @pytest.mark.parametrize("name", MODELS)
    def test_deterministic_construction(self, name, batch):
        a = tiny_model(name, num_classes=4, seed=3).eval()
        b = tiny_model(name, num_classes=4, seed=3).eval()
        assert np.array_equal(a(batch).data, b(batch).data)

    @pytest.mark.parametrize("name", MODELS)
    def test_different_seeds_differ(self, name, batch):
        a = tiny_model(name, num_classes=4, seed=1).eval()
        b = tiny_model(name, num_classes=4, seed=2).eval()
        assert not np.array_equal(a(batch).data, b(batch).data)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            tiny_model("VGG")

    @pytest.mark.parametrize("name", MODELS)
    def test_gradients_reach_first_stage(self, name, batch):
        from repro.nn.losses import cross_entropy

        model = tiny_model(name, num_classes=4)
        loss = cross_entropy(model(batch), np.array([0, 1, 2]))
        model.zero_grad()
        loss.backward()
        first = model.stage(0)
        assert any(p.grad is not None and np.abs(p.grad).sum() > 0
                   for p in first.parameters())


class TestSplitModel:
    def test_freeze_features_leaves_classifier_trainable(self):
        model = tiny_model("ResNet50", num_classes=4)
        model.freeze_features()
        assert all(p.requires_grad for p in model.classifier.parameters())
        for i in range(model.num_stages - 1):
            assert all(not p.requires_grad
                       for p in model.stage(i).parameters())

    def test_feature_dim_after(self):
        model = tiny_model("ResNet50", num_classes=4, width=8)
        dims = model.feature_dim_after(model.num_stages - 1)
        assert dims == (16 * 8,)

    def test_split_bounds_checked(self, batch):
        model = tiny_model("ResNet50", num_classes=4)
        with pytest.raises(ValueError):
            model.forward_until(batch, 99)
        with pytest.raises(ValueError):
            model.forward_from(batch, -1)

    def test_stage_index_lookup(self):
        model = tiny_model("ResNet50", num_classes=4)
        assert model.stage_index("FC") == model.num_stages - 1

    def test_empty_split_model_rejected(self):
        with pytest.raises(ValueError):
            SplitModel("empty", [], (3, 16, 16))

    def test_to_graph_probes_activations(self):
        model = tiny_model("ResNet50", num_classes=6, width=8)
        graph = model.to_graph()
        assert graph.stages[-1].trainable
        assert graph.stages[-1].out_elems == 6
        assert graph.total_params == model.num_parameters()

    def test_assert_split_consistent_detects_breakage(self, batch):
        model = tiny_model("ResNet50", num_classes=4).eval()
        whole = model(batch)

        class Broken(SplitModel):
            def forward_until(self, x, split):
                out = super().forward_until(x, split)
                return out * 1.5

        broken = Broken("broken", list(zip(
            model.stage_names, [model.stage(i) for i in range(model.num_stages)]
        )), model.input_shape)
        with pytest.raises(AssertionError):
            assert_split_consistent(broken, batch, 2)


class TestChannelShuffle:
    def test_shuffle_is_permutation(self):
        x = Tensor(np.arange(2 * 8 * 2 * 2, dtype=float).reshape(2, 8, 2, 2))
        out = channel_shuffle(x, 2)
        assert sorted(out.data.reshape(-1)) == sorted(x.data.reshape(-1))

    def test_shuffle_interleaves_groups(self):
        x = Tensor(np.arange(4, dtype=float).reshape(1, 4, 1, 1))
        out = channel_shuffle(x, 2).data.reshape(-1)
        assert np.allclose(out, [0, 2, 1, 3])

    def test_shuffle_requires_divisibility(self):
        x = Tensor(np.zeros((1, 5, 2, 2)))
        with pytest.raises(ValueError):
            channel_shuffle(x, 2)

    def test_double_shuffle_with_two_groups_is_identity(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 2, 2)))
        twice = channel_shuffle(channel_shuffle(x, 2), 2)
        assert np.allclose(twice.data, x.data)
