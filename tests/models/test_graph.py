"""Unit & property tests for model stage graphs and partition points."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.catalog import ALL_MODELS, all_graphs, model_graph
from repro.models.graph import (
    FEATURE_DTYPE_BYTES,
    INPUT_DTYPE_BYTES,
    ModelGraph,
    StageSpec,
)


def simple_graph():
    stages = [
        StageSpec("A", 1e9, 100, 1000),
        StageSpec("B", 2e9, 200, 500),
        StageSpec("FC", 1e7, 50, 10, trainable=True),
    ]
    return ModelGraph("toy", stages, input_elems=3000, raw_image_bytes=8192)


class TestModelGraph:
    def test_requires_trainable_last(self):
        with pytest.raises(ValueError, match="trainable"):
            ModelGraph("bad", [StageSpec("A", 1.0, 1, 1)], 10, 10)

    def test_trainable_must_be_last(self):
        stages = [StageSpec("FC", 1.0, 1, 1, trainable=True),
                  StageSpec("B", 1.0, 1, 1)]
        with pytest.raises(ValueError, match="last"):
            ModelGraph("bad", stages, 10, 10)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            ModelGraph("bad", [], 10, 10)

    def test_totals(self):
        g = simple_graph()
        assert g.total_flops == pytest.approx(3.01e9)
        assert g.total_params == 350
        assert g.input_bytes == 3000 * INPUT_DTYPE_BYTES
        assert g.classifier_params == 50

    def test_partition_point_labels(self):
        g = simple_graph()
        labels = [g.partition_point(i).label for i in range(4)]
        assert labels == ["None", "+A", "+B", "+FC"]

    def test_partition_point_zero_ships_inputs(self):
        point = simple_graph().partition_point(0)
        assert point.feature_bytes == 3000 * INPUT_DTYPE_BYTES
        assert point.front_flops == 0
        assert point.sync_bytes == 0

    def test_partition_point_full_offload_has_sync(self):
        g = simple_graph()
        point = g.partition_point(3)
        assert point.sync_bytes == 50 * 4
        assert point.offloads_trainable
        assert point.feature_bytes < 100  # labels only

    def test_partition_flops_conservation(self):
        g = simple_graph()
        for i in range(g.num_partition_points()):
            point = g.partition_point(i)
            fwd_back = sum(
                s.flops_fwd for s in g.stages[i:] if not s.trainable
            ) + sum(3 * s.flops_fwd for s in g.stages[i:] if s.trainable)
            assert point.front_flops + sum(
                s.flops_fwd for s in g.stages[i:]
            ) == pytest.approx(g.total_flops)
            assert point.back_flops_train == pytest.approx(fwd_back)

    def test_partition_out_of_range(self):
        with pytest.raises(ValueError):
            simple_graph().partition_point(9)

    def test_feature_bytes_match_activation_elems(self):
        g = simple_graph()
        assert g.partition_point(1).feature_bytes == 1000 * FEATURE_DTYPE_BYTES

    def test_stage_flops_train_triples_trainable(self):
        s = StageSpec("FC", 10.0, 1, 1, trainable=True)
        assert s.flops_train == 30.0
        assert StageSpec("A", 10.0, 1, 1).flops_train == 10.0


class TestCatalog:
    def test_all_five_models_present(self):
        graphs = all_graphs()
        assert set(graphs) == set(ALL_MODELS)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            model_graph("AlexNet")

    @pytest.mark.parametrize("name,gflops,params_m", [
        ("ResNet50", 4.2, 25.6),
        ("InceptionV3", 5.7, 23.9),
        ("ShuffleNetV2", 0.3, 2.2),
        ("ResNeXt101", 16.4, 88.7),
        ("ViT", 17.6, 86.7),
    ])
    def test_published_scales(self, name, gflops, params_m):
        g = model_graph(name)
        assert g.total_flops / 1e9 == pytest.approx(gflops, rel=0.05)
        assert g.total_params / 1e6 == pytest.approx(params_m, rel=0.05)

    def test_every_graph_ends_with_trainable_classifier(self):
        for g in all_graphs().values():
            assert g.stages[-1].trainable
            assert not any(s.trainable for s in g.stages[:-1])

    def test_resnet50_conv5_feature_bytes(self):
        """The Fig. 9 calibration: +Conv5 ships 2048 fp32 floats per image."""
        g = model_graph("ResNet50")
        point = g.partition_point(5)
        assert point.label == "+Conv5"
        assert point.feature_bytes == 2048 * FEATURE_DTYPE_BYTES

    def test_raw_image_size_is_paper_average(self):
        assert model_graph("ResNet50").raw_image_bytes == 2_700_000

    def test_preprocessed_binary_is_0_59_mb(self):
        g = model_graph("ResNet50")
        assert g.input_bytes == pytest.approx(590_000, rel=0.03)

    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(ALL_MODELS), idx=st.integers(0, 6))
    def test_partition_points_always_valid(self, name, idx):
        g = model_graph(name)
        idx = idx % g.num_partition_points()
        point = g.partition_point(idx)
        assert point.front_flops >= 0
        assert point.feature_bytes > 0
        assert point.back_flops_train >= 0
