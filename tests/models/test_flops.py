"""Tests for the traced FLOP counter."""

import numpy as np
import pytest

from repro.models.flops import (
    FlopCounter,
    count_forward_flops,
    count_model_flops,
    count_stage_flops,
)
from repro.models.registry import tiny_model
from repro.nn.layers import Conv2d, Linear
from repro.nn.tensor import Tensor


class TestPrimitiveCounts:
    def test_matmul_flops_exact(self):
        a = Tensor(np.zeros((4, 5)))
        b = Tensor(np.zeros((5, 7)))
        flops, _ = count_forward_flops(lambda: a @ b)
        assert flops == 2 * 4 * 5 * 7

    def test_batched_matmul_flops(self):
        a = Tensor(np.zeros((3, 2, 4, 5)))
        b = Tensor(np.zeros((3, 2, 5, 6)))
        flops, _ = count_forward_flops(lambda: a @ b)
        assert flops == 2 * 3 * 2 * 4 * 5 * 6

    def test_conv_flops_exact(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0))
        x = Tensor(np.zeros((2, 3, 10, 10)))
        flops, _ = count_forward_flops(lambda: conv(x))
        assert flops == 2 * 2 * 8 * 10 * 10 * 3 * 3 * 3

    def test_grouped_conv_counts_per_group_channels(self):
        conv = Conv2d(4, 8, 3, padding=1, groups=2,
                      rng=np.random.default_rng(0))
        x = Tensor(np.zeros((1, 4, 6, 6)))
        flops, _ = count_forward_flops(lambda: conv(x))
        assert flops == 2 * 1 * 8 * 6 * 6 * 2 * 3 * 3

    def test_depthwise_conv_counted(self):
        conv = Conv2d(6, 6, 3, padding=1, groups=6,
                      rng=np.random.default_rng(0))
        x = Tensor(np.zeros((1, 6, 8, 8)))
        flops, _ = count_forward_flops(lambda: conv(x))
        assert flops == 2 * 1 * 6 * 8 * 8 * 1 * 3 * 3

    def test_linear_counts_bias_free_matmul(self):
        layer = Linear(10, 3, rng=np.random.default_rng(0))
        x = Tensor(np.zeros((5, 10)))
        flops, _ = count_forward_flops(lambda: layer(x))
        assert flops == 2 * 5 * 10 * 3

    def test_counter_inactive_outside_context(self):
        a = Tensor(np.ones((2, 2)))
        with FlopCounter() as counter:
            _ = a @ a
        before = counter.total_flops
        _ = a @ a  # outside: must not count
        assert counter.total_flops == before

    def test_nested_counters_both_count(self):
        a = Tensor(np.ones((2, 2)))
        with FlopCounter() as outer:
            with FlopCounter() as inner:
                _ = a @ a
        assert inner.total_flops == outer.total_flops == 16


class TestModelCounts:
    def test_stage_flops_sum_to_model_total(self):
        model = tiny_model("ResNet50", num_classes=8, width=8)
        stages = count_stage_flops(model)
        assert sum(stages.values()) == pytest.approx(count_model_flops(model))

    def test_flops_scale_with_width(self):
        small = count_model_flops(tiny_model("ResNet50", num_classes=8,
                                             width=8))
        big = count_model_flops(tiny_model("ResNet50", num_classes=8,
                                           width=16))
        assert 2.5 < big / small < 4.5  # conv flops ~ width^2

    @pytest.mark.parametrize("name", ["ResNet50", "InceptionV3",
                                      "ShuffleNetV2", "ResNeXt101", "ViT"])
    def test_all_models_countable(self, name):
        model = tiny_model(name, num_classes=6)
        stages = count_stage_flops(model)
        assert all(v >= 0 for v in stages.values())
        assert sum(stages.values()) > 0

    def test_to_graph_uses_measured_flops(self):
        model = tiny_model("ResNet50", num_classes=8, width=8)
        graph = model.to_graph()
        measured = count_stage_flops(model)
        for spec in graph.stages:
            assert spec.flops_fwd == pytest.approx(
                max(measured[spec.name], 1.0))

    def test_batch_invariance(self):
        model = tiny_model("ResNet50", num_classes=8, width=8)
        one = count_model_flops(model, batch=1)
        four = count_model_flops(model, batch=4)
        assert one == pytest.approx(four, rel=0.01)

    def test_batch_validation(self):
        model = tiny_model("ResNet50", num_classes=8, width=8)
        with pytest.raises(ValueError):
            count_stage_flops(model, batch=0)
