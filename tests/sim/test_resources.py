"""Tests for typed DES resources (disk, link, CPU pool, accelerator)."""

import pytest

from repro.models.catalog import model_graph
from repro.sim.engine import Simulation
from repro.sim.resources import (
    AcceleratorResource,
    CpuPool,
    DiskResource,
    LinkResource,
    TimedResource,
)
from repro.sim.specs import ST1_RAID, STORAGE_CPU, TEN_GBE, TESLA_T4


def run_process(sim, gen):
    return sim.run_until_complete(sim.process(gen))


class TestTimedResource:
    def test_use_holds_for_duration(self):
        sim = Simulation()
        res = TimedResource(sim, 1, "r")

        def proc():
            yield from res.use(2.5)

        run_process(sim, proc())
        assert sim.now == pytest.approx(2.5)

    def test_negative_duration_rejected(self):
        sim = Simulation()
        res = TimedResource(sim, 1, "r")

        def proc():
            yield from res.use(-1.0)

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_contention_serialises(self):
        sim = Simulation()
        res = TimedResource(sim, 1, "r")

        def proc():
            yield from res.use(1.0)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert res.utilization() == pytest.approx(1.0)


class TestDisk:
    def test_read_time_matches_bandwidth(self):
        sim = Simulation()
        disk = DiskResource(sim, ST1_RAID)

        def proc():
            yield from disk.read(int(ST1_RAID.read_mbps * 1e6))  # 1 second

        run_process(sim, proc())
        assert sim.now == pytest.approx(1.0)

    def test_write_slower_than_read(self):
        sim = Simulation()
        disk = DiskResource(sim, ST1_RAID)

        def proc():
            yield from disk.write(int(ST1_RAID.write_mbps * 1e6))

        run_process(sim, proc())
        assert sim.now == pytest.approx(1.0)


class TestLink:
    def test_transfer_records_bytes(self):
        sim = Simulation()
        link = LinkResource(sim, TEN_GBE)

        def proc():
            yield from link.transfer(1_000_000)

        run_process(sim, proc())
        assert link.bytes_sent == 1_000_000
        assert sim.now == pytest.approx(1_000_000 / TEN_GBE.bytes_per_s)


class TestCpuPool:
    def test_pool_parallelism(self):
        sim = Simulation()
        pool = CpuPool(sim, STORAGE_CPU, cores=2)

        def proc():
            yield from pool.preprocess(1)

        for _ in range(4):
            sim.process(proc())
        sim.run()
        # 4 jobs over 2 cores: two waves
        expected = 2 * (1.0 / STORAGE_CPU.preprocess_ips_per_core)
        assert sim.now == pytest.approx(expected)

    def test_decompress_duration(self):
        sim = Simulation()
        pool = CpuPool(sim, STORAGE_CPU, cores=1)

        def proc():
            yield from pool.decompress(
                int(STORAGE_CPU.decompress_mbps_per_core * 1e6))

        run_process(sim, proc())
        assert sim.now == pytest.approx(1.0)


class TestAccelerator:
    def test_infer_batch_duration(self):
        sim = Simulation()
        graph = model_graph("ResNet50")
        acc = AcceleratorResource(sim, TESLA_T4)

        def proc():
            yield from acc.infer_batch(graph, 128)

        run_process(sim, proc())
        expected = 128 / TESLA_T4.inference_ips(graph, 128)
        assert sim.now == pytest.approx(expected)

    def test_full_npe_pipeline_bottleneck(self):
        """A 3-stage DES PipeStore pipeline lands on the analytic rate."""
        from repro.sim.specs import COMPRESSED_PREPROCESSED_BYTES

        sim = Simulation()
        graph = model_graph("ResNet50")
        disk = DiskResource(sim, ST1_RAID)
        pool = CpuPool(sim, STORAGE_CPU, cores=2)
        acc = AcceleratorResource(sim, TESLA_T4)
        from repro.sim.engine import Store

        q1, q2 = Store(sim, 4), Store(sim, 4)
        done = Store(sim)
        batches = 40
        batch = 128

        def reader():
            for i in range(batches):
                yield from disk.read(COMPRESSED_PREPROCESSED_BYTES * batch)
                yield q1.put(i)

        def decompressor():
            while True:
                item = yield q1.get()
                yield from pool.decompress(COMPRESSED_PREPROCESSED_BYTES * batch)
                yield q2.put(item)

        def gpu():
            while True:
                item = yield q2.get()
                yield from acc.infer_batch(graph, batch)
                yield done.put(item)

        def sink():
            for _ in range(batches):
                yield done.get()

        sim.process(reader())
        sim.process(decompressor())
        sim.process(gpu())
        finish = sim.process(sink())
        sim.run_until_complete(finish)
        achieved = batches * batch / sim.now
        # decompression at 2 cores... note the decompress stage here is
        # capacity-2 but fed serially, so the bound is one core's rate when
        # jobs arrive one-at-a-time; accept the analytic window
        assert 900 < achieved < 2200
