"""DES cluster simulation vs the analytic figure models."""

import pytest

from repro.core.partition import FinetunePlanConfig, evaluate_partition
from repro.models.catalog import model_graph
from repro.sim.cluster_sim import (
    simulate_ftdmp_finetune,
    simulate_offline_inference,
)
from repro.sim.specs import TEN_GBE, TESLA_T4, TESLA_V100, NetworkSpec
from repro.train.baselines import ndpipe_inference


@pytest.fixture(scope="module")
def resnet():
    return model_graph("ResNet50")


class TestOfflineInferenceSim:
    def test_matches_analytic_within_fill_drain(self, resnet):
        des = simulate_offline_inference(resnet, 4, 100_000)
        analytic = ndpipe_inference(resnet, 4).throughput_ips
        assert des.throughput_ips == pytest.approx(analytic, rel=0.05)
        assert des.throughput_ips <= analytic * 1.001

    def test_scales_with_stores(self, resnet):
        one = simulate_offline_inference(resnet, 1, 40_000)
        four = simulate_offline_inference(resnet, 4, 40_000)
        assert four.throughput_ips == pytest.approx(
            4 * one.throughput_ips, rel=0.1)

    def test_small_batches_hurt(self, resnet):
        big = simulate_offline_inference(resnet, 2, 20_000, batch_size=128)
        small = simulate_offline_inference(resnet, 2, 20_000, batch_size=8)
        assert small.throughput_ips < big.throughput_ips

    def test_more_stores_than_images(self, resnet):
        res = simulate_offline_inference(resnet, 8, 3, batch_size=1)
        assert res.images == 3 and res.makespan_s > 0

    def test_validation(self, resnet):
        with pytest.raises(ValueError):
            simulate_offline_inference(resnet, 0, 100)
        with pytest.raises(ValueError):
            simulate_offline_inference(resnet, 1, 0)
        with pytest.raises(ValueError):
            simulate_offline_inference(resnet, 1, 10, batch_size=0)


class TestFtdmpSim:
    def test_matches_analytic(self, resnet):
        des = simulate_ftdmp_finetune(resnet, 4, 200_000, num_runs=3)
        ev = evaluate_partition(
            resnet, 5, 4, TESLA_T4, TESLA_V100, TEN_GBE,
            FinetunePlanConfig(dataset_images=200_000, num_runs=3))
        assert des.makespan_s == pytest.approx(ev.training_time_s, rel=0.08)

    def test_pipelining_shortens_makespan(self, resnet):
        serial = simulate_ftdmp_finetune(resnet, 4, 120_000, num_runs=1)
        pipelined = simulate_ftdmp_finetune(resnet, 4, 120_000, num_runs=3)
        assert pipelined.makespan_s < serial.makespan_s

    def test_feature_traffic_accounted(self, resnet):
        res = simulate_ftdmp_finetune(resnet, 2, 10_000)
        assert res.feature_bytes == 10_000 * resnet.partition_point(5).feature_bytes

    def test_more_stores_faster_until_tuner_bound(self, resnet):
        two = simulate_ftdmp_finetune(resnet, 2, 120_000)
        eight = simulate_ftdmp_finetune(resnet, 8, 120_000)
        assert eight.makespan_s < two.makespan_s

    def test_slow_network_binds_supply(self, resnet):
        fast = simulate_ftdmp_finetune(resnet, 8, 60_000)
        slow = simulate_ftdmp_finetune(resnet, 8, 60_000,
                                       network=NetworkSpec(gbps=0.05))
        assert slow.makespan_s > 2 * fast.makespan_s

    def test_validation(self, resnet):
        with pytest.raises(ValueError):
            simulate_ftdmp_finetune(resnet, 0, 100)
        with pytest.raises(ValueError):
            simulate_ftdmp_finetune(resnet, 1, 100, num_runs=0)


class TestUtilization:
    """The §5.3 balance story, observed directly on the DES."""

    def test_apo_pick_balances_tuner_and_stores(self, resnet):
        """At APO's 8-store pick, Tuner GPU and store accelerators are
        near-equally utilised — the T_diff ~ 0 condition made visible."""
        res = simulate_ftdmp_finetune(resnet, 8, 400_000, num_runs=3)
        tuner = res.utilization["tuner-gpu"]
        stores = res.utilization_of("store0-accel")
        assert abs(tuner - stores) < 0.1

    def test_underprovisioned_fleet_starves_tuner(self, resnet):
        res = simulate_ftdmp_finetune(resnet, 4, 400_000, num_runs=3)
        assert res.utilization_of("store0-accel") > res.utilization["tuner-gpu"] + 0.2

    def test_overprovisioned_fleet_idles_stores(self, resnet):
        res = simulate_ftdmp_finetune(resnet, 16, 400_000, num_runs=3)
        assert res.utilization["tuner-gpu"] > res.utilization_of("store0-accel") + 0.2

    def test_link_never_saturated_by_features(self, resnet):
        """FT-DMP's point: feature traffic barely touches the 10 GbE link."""
        res = simulate_ftdmp_finetune(resnet, 8, 400_000, num_runs=3)
        assert res.utilization["tuner-link"] < 0.2

    def test_inference_accelerator_is_the_busy_resource(self, resnet):
        res = simulate_offline_inference(resnet, 2, 60_000)
        assert res.utilization_of("store0-accel") > 0.9
        assert res.utilization_of("store0-disk") < res.utilization_of("store0-accel")

    def test_utilization_bounds(self, resnet):
        res = simulate_offline_inference(resnet, 2, 30_000)
        assert all(0.0 <= v <= 1.0 for v in res.utilization.values())

    def test_unknown_prefix_raises(self, resnet):
        res = simulate_offline_inference(resnet, 1, 10_000)
        with pytest.raises(KeyError):
            res.utilization_of("nonexistent")


class TestMixedWorkload:
    """Inference and fine-tuning contending for the same PipeStores."""

    def test_both_jobs_slow_down_under_contention(self, resnet):
        from repro.sim.cluster_sim import simulate_mixed_workload

        res = simulate_mixed_workload(resnet, 4, 100_000, 100_000)
        assert res.inference_slowdown > 1.3
        assert res.finetune_slowdown > 1.0

    def test_total_work_is_conserved(self, resnet):
        """The accelerator cannot do better than serialising both jobs."""
        from repro.sim.cluster_sim import simulate_mixed_workload

        res = simulate_mixed_workload(resnet, 4, 80_000, 80_000)
        combined = max(res.inference.makespan_s, res.finetune.makespan_s)
        assert combined >= 0.85 * (res.inference_solo_s
                                   + res.finetune_solo_s
                                   - 25.0)  # tuner tail overlaps

    def test_tiny_side_job_barely_hurts_the_big_one(self, resnet):
        from repro.sim.cluster_sim import simulate_mixed_workload

        res = simulate_mixed_workload(resnet, 4, 2_000, 200_000)
        assert res.finetune_slowdown < 1.1

    def test_validation(self, resnet):
        from repro.sim.cluster_sim import simulate_mixed_workload

        with pytest.raises(ValueError):
            simulate_mixed_workload(resnet, 0, 10, 10)
        with pytest.raises(ValueError):
            simulate_mixed_workload(resnet, 1, 0, 10)
