"""Hardware-catalog tests, including the paper-calibration anchors."""

import pytest

from repro.models.catalog import model_graph
from repro.sim import specs
from repro.sim.specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    HOST_CPU,
    NEURONCORE_V1,
    PREPROCESSED_BYTES,
    RAW_IMAGE_BYTES,
    ST1_RAID,
    STORAGE_CPU,
    TEN_GBE,
    TESLA_T4,
    TESLA_V100,
    NetworkSpec,
)


class TestCalibrationAnchors:
    """The measured numbers from §6 the catalog is tuned to reproduce."""

    @pytest.mark.parametrize("model,target", [
        ("ResNet50", 2129), ("InceptionV3", 2439),
        ("ResNeXt101", 449), ("ViT", 277),
    ])
    def test_t4_inference_ips_at_batch_128(self, model, target):
        graph = model_graph(model)
        assert TESLA_T4.inference_ips(graph, 128) == pytest.approx(target, rel=0.02)

    def test_t4_fe_throughput_matches_artifact(self):
        """Artifact A.6: ~1913 images/s feature extraction for ResNet50."""
        graph = model_graph("ResNet50")
        fe = TESLA_T4.fe_ips(graph, 5, batch_size=512)
        assert fe == pytest.approx(1913, rel=0.03)

    def test_v100_is_about_3x_t4(self):
        graph = model_graph("ResNet50")
        ratio = (TESLA_V100.inference_ips(graph, 128)
                 / TESLA_T4.inference_ips(graph, 128))
        assert 2.5 < ratio < 3.5

    def test_tuner_rate_balances_eight_pipestores(self):
        """Fig. 11: APO picks 8 PipeStores for ResNet50."""
        graph = model_graph("ResNet50")
        tuner = TESLA_V100.tail_train_ips(graph, 5)
        store = TESLA_T4.fe_ips(graph, 5, 512)
        assert tuner / store == pytest.approx(8.0, abs=0.5)

    def test_neuroncore_weaker_than_t4(self):
        graph = model_graph("ResNet50")
        assert (NEURONCORE_V1.inference_ips(graph, 128)
                < 0.5 * TESLA_T4.inference_ips(graph, 128))

    def test_finetune_over_300x_faster_than_full_training(self):
        """§1/§6: NDPipe fine-tuning is >300x faster than full training."""
        graph = model_graph("ResNet50")
        full_rate = 2 * TESLA_V100.full_train_ips(graph)
        full_time = 90 * 1_200_000 / full_rate
        tuner_rate = TESLA_V100.tail_train_ips(graph, 5)
        finetune_time = 1_200_000 / tuner_rate
        assert full_time / finetune_time > 300


class TestAcceleratorModel:
    def test_batch_saturation_curve_monotone(self):
        graph = model_graph("ResNet50")
        rates = [TESLA_T4.inference_ips(graph, b) for b in (1, 8, 32, 128, 512)]
        assert rates == sorted(rates)
        assert rates[0] < 0.2 * rates[-1]

    def test_flops_ips_scales_inversely(self):
        assert TESLA_T4.flops_ips("ResNet50", 1e9) == pytest.approx(
            2 * TESLA_T4.flops_ips("ResNet50", 2e9))

    def test_zero_flops_is_free(self):
        assert TESLA_T4.flops_ips("ResNet50", 0) == float("inf")

    def test_fe_ips_training_slower_than_inference_mode(self):
        graph = model_graph("ResNet50")
        assert (TESLA_T4.fe_ips(graph, 5, 512, training=True)
                < TESLA_T4.fe_ips(graph, 5, 512, training=False))

    def test_full_finetune_naive_slower(self):
        graph = model_graph("ResNet50")
        assert (TESLA_V100.full_finetune_ips(graph, naive=True)
                < TESLA_V100.full_finetune_ips(graph))

    def test_vit_ooms_at_512_but_not_128(self):
        graph = model_graph("ViT")
        assert TESLA_T4.fits_batch(graph, 128)
        assert not TESLA_T4.fits_batch(graph, 512)

    def test_resnet_fits_512(self):
        assert TESLA_T4.fits_batch(model_graph("ResNet50"), 512)

    def test_tail_train_rate_infinite_when_nothing_left(self):
        graph = model_graph("ResNet50")
        assert TESLA_V100.tail_train_ips(graph, graph.num_partition_points() - 1) \
            == float("inf") or TESLA_V100.tail_train_ips(
                graph, graph.num_partition_points() - 1) > 0


class TestCpuDiskNet:
    def test_preprocess_rate_linear_in_cores(self):
        assert HOST_CPU.preprocess_ips(8) == pytest.approx(
            8 * HOST_CPU.preprocess_ips(1))

    def test_cores_clamped_to_available(self):
        assert STORAGE_CPU.preprocess_ips(999) == STORAGE_CPU.preprocess_ips(16)

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            HOST_CPU.preprocess_ips(-1)

    def test_decompress_ips(self):
        rate = STORAGE_CPU.decompress_ips(2, COMPRESSED_PREPROCESSED_BYTES)
        assert 2440 < rate < 2700  # above every model's batch-128 GPU rate

    def test_disk_read_ips(self):
        assert ST1_RAID.read_ips(RAW_IMAGE_BYTES) == pytest.approx(
            560e6 / RAW_IMAGE_BYTES)

    def test_network_transfer(self):
        assert TEN_GBE.transfer_ips(PREPROCESSED_BYTES) == pytest.approx(
            TEN_GBE.bytes_per_s / PREPROCESSED_BYTES)
        assert TEN_GBE.transfer_time(TEN_GBE.bytes_per_s) == pytest.approx(1.0)

    def test_network_zero_bytes_free(self):
        assert NetworkSpec(10).transfer_ips(0) == float("inf")

    def test_typical_ideal_anchor(self):
        """Fig. 5b: Typical ~94 IPS, Ideal ~123 IPS (sequential stages)."""
        from repro.train.baselines import (
            ideal_offline_inference,
            typical_offline_inference,
        )

        graph = model_graph("ResNet50")
        typical = typical_offline_inference(graph).throughput_ips
        ideal = ideal_offline_inference(graph).throughput_ips
        assert 75 < typical < 115
        assert 110 < ideal < 135
        assert ideal / typical == pytest.approx(123 / 94, rel=0.15)


class TestServers:
    def test_catalog_contains_paper_instances(self):
        for name in ("p3.8xlarge", "p3.2xlarge", "g4dn.4xlarge",
                     "inf1.2xlarge"):
            assert name in specs.SERVERS

    def test_nogpu_variant_has_no_accelerator(self):
        assert not specs.G4DN_4XLARGE_NOGPU.has_accelerator
        assert specs.G4DN_4XLARGE.has_accelerator

    def test_deflate_ratio_consistency(self):
        assert COMPRESSED_PREPROCESSED_BYTES == pytest.approx(
            PREPROCESSED_BYTES / specs.PREPROCESSED_DEFLATE_RATIO, rel=0.01)

    def test_preprocessed_storage_overhead_is_17_5_pct(self):
        """§5.4: preprocessed binaries are 17.5% of storage when raw."""
        frac = PREPROCESSED_BYTES / (PREPROCESSED_BYTES + RAW_IMAGE_BYTES)
        assert frac == pytest.approx(0.179, abs=0.01)
