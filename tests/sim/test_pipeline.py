"""Analytic pipeline model vs DES cross-validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.pipeline import (
    Stage,
    makespan,
    pipelined_throughput,
    sequential_throughput,
    simulate_pipeline,
    stage_breakdown,
)


class TestAnalytic:
    def test_pipelined_is_bottleneck(self):
        stages = [Stage("a", 100.0), Stage("b", 20.0), Stage("c", 50.0)]
        rate, name = pipelined_throughput(stages)
        assert rate == 20.0
        assert name == "b"

    def test_sequential_is_harmonic(self):
        stages = [Stage("a", 10.0), Stage("b", 10.0)]
        assert sequential_throughput(stages) == pytest.approx(5.0)

    def test_sequential_leq_pipelined(self):
        stages = [Stage("a", 7.0), Stage("b", 13.0), Stage("c", 29.0)]
        assert sequential_throughput(stages) <= pipelined_throughput(stages)[0]

    def test_infinite_rate_stage_free(self):
        stages = [Stage("a", float("inf")), Stage("b", 10.0)]
        assert sequential_throughput(stages) == pytest.approx(10.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            Stage("bad", 0.0).time_per_item

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ValueError):
            pipelined_throughput([])
        with pytest.raises(ValueError):
            sequential_throughput([])

    def test_makespan(self):
        assert makespan(100, 10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            makespan(-1, 10.0)
        with pytest.raises(ValueError):
            makespan(1, 0.0)

    def test_stage_breakdown_totals(self):
        stages = [Stage("a", 10.0), Stage("b", 5.0)]
        out = stage_breakdown(stages, 100)
        assert out == {"a": pytest.approx(10.0), "b": pytest.approx(20.0)}


class TestDesCrossCheck:
    def test_des_converges_to_bottleneck_rate(self):
        stages = [Stage("read", 100.0), Stage("cpu", 40.0), Stage("gpu", 250.0)]
        items = 800
        time = simulate_pipeline(stages, items)
        assert items / time == pytest.approx(40.0, rel=0.03)

    def test_des_single_stage_exact(self):
        time = simulate_pipeline([Stage("only", 10.0)], 50)
        assert time == pytest.approx(5.0)

    def test_des_batching_preserves_rate(self):
        stages = [Stage("a", 100.0), Stage("b", 50.0)]
        t1 = simulate_pipeline(stages, 400, batch=1)
        t8 = simulate_pipeline(stages, 400, batch=8)
        assert 400 / t1 == pytest.approx(400 / t8, rel=0.1)

    def test_des_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_pipeline([Stage("a", 1.0)], 0)
        with pytest.raises(ValueError):
            simulate_pipeline([Stage("a", 1.0)], 10, batch=0)

    @settings(max_examples=12, deadline=None)
    @given(rates=st.lists(st.floats(5.0, 200.0), min_size=1, max_size=4),
           buffer_depth=st.integers(1, 8))
    def test_property_des_matches_analytic_steady_state(self, rates, buffer_depth):
        stages = [Stage(f"s{i}", r) for i, r in enumerate(rates)]
        items = 600
        time = simulate_pipeline(stages, items, buffer_depth=buffer_depth)
        analytic, _ = pipelined_throughput(stages)
        # DES includes fill/drain, so it is never faster, and converges
        assert items / time <= analytic * 1.001
        assert items / time >= analytic * 0.85

    @settings(max_examples=10, deadline=None)
    @given(rates=st.lists(st.floats(5.0, 100.0), min_size=2, max_size=4))
    def test_property_pipeline_never_beats_best_stage(self, rates):
        stages = [Stage(f"s{i}", r) for i, r in enumerate(rates)]
        assert pipelined_throughput(stages)[0] <= max(rates)
        assert sequential_throughput(stages) <= min(rates)
