"""Tests for the discrete-event kernel: clock, processes, resources, stores."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Event, Resource, Simulation, Store, all_of


class TestClock:
    def test_timeouts_fire_in_order(self):
        sim = Simulation()
        log = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            log.append((sim.now, tag))

        sim.process(proc(3.0, "c"))
        sim.process(proc(1.0, "a"))
        sim.process(proc(2.0, "b"))
        sim.run()
        assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_clock_monotone(self):
        sim = Simulation()
        stamps = []

        def proc():
            for delay in (0.5, 0.0, 1.5, 0.25):
                yield sim.timeout(delay)
                stamps.append(sim.now)

        sim.process(proc())
        sim.run()
        assert stamps == sorted(stamps)

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until_caps_clock(self):
        sim = Simulation()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        assert sim.run(until=10.0) == 10.0

    def test_ties_break_in_schedule_order(self):
        sim = Simulation()
        log = []

        def proc(tag):
            yield sim.timeout(1.0)
            log.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert log == ["a", "b", "c"]

    @settings(max_examples=20, deadline=None)
    @given(delays=st.lists(st.floats(0, 100), min_size=1, max_size=20))
    def test_property_final_clock_is_max_delay(self, delays):
        sim = Simulation()

        def proc(d):
            yield sim.timeout(d)

        for d in delays:
            sim.process(proc(d))
        assert sim.run() == pytest.approx(max(delays))


class TestProcesses:
    def test_process_return_value(self):
        sim = Simulation()

        def proc():
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc())
        assert sim.run_until_complete(p) == 42

    def test_process_waits_on_process(self):
        sim = Simulation()

        def child():
            yield sim.timeout(2.0)
            return "done"

        def parent():
            value = yield sim.process(child())
            return (sim.now, value)

        p = sim.process(parent())
        assert sim.run_until_complete(p) == (2.0, "done")

    def test_yield_non_event_raises(self):
        sim = Simulation()

        def bad():
            yield 5

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_starved_process_detected(self):
        sim = Simulation()

        def stuck():
            yield Event(sim)  # never triggered

        p = sim.process(stuck())
        with pytest.raises(RuntimeError, match="starved"):
            sim.run_until_complete(p)

    def test_event_double_trigger_rejected(self):
        sim = Simulation()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()

    def test_all_of_gathers_values(self):
        sim = Simulation()
        events = [sim.timeout(i, value=i) for i in (3, 1, 2)]
        gate = all_of(sim, events)
        sim.run()
        assert gate.triggered
        assert gate.value == [3, 1, 2]

    def test_all_of_empty(self):
        sim = Simulation()
        gate = all_of(sim, [])
        assert gate.triggered


class TestResource:
    def test_capacity_serialises(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        finish = []

        def proc(tag):
            yield res.acquire()
            yield sim.timeout(1.0)
            res.release()
            finish.append((sim.now, tag))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert finish == [(1.0, "a"), (2.0, "b")]

    def test_capacity_two_overlaps(self):
        sim = Simulation()
        res = Resource(sim, capacity=2)
        finish = []

        def proc():
            yield res.acquire()
            yield sim.timeout(1.0)
            res.release()
            finish.append(sim.now)

        for _ in range(2):
            sim.process(proc())
        sim.run()
        assert finish == [1.0, 1.0]

    def test_release_without_acquire(self):
        sim = Simulation()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulation(), capacity=0)

    def test_busy_time_accounting(self):
        sim = Simulation()
        res = Resource(sim)

        def proc():
            yield res.acquire()
            yield sim.timeout(3.0)
            res.release()
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert res.busy_time == pytest.approx(3.0)
        assert 0.0 <= res.utilization(sim.now) <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(capacity=st.integers(1, 4), jobs=st.integers(1, 12),
           service=st.floats(0.1, 5.0))
    def test_property_makespan_work_conservation(self, capacity, jobs, service):
        """makespan == ceil(jobs / capacity) * service for identical jobs."""
        sim = Simulation()
        res = Resource(sim, capacity=capacity)

        def proc():
            yield res.acquire()
            yield sim.timeout(service)
            res.release()

        for _ in range(jobs):
            sim.process(proc())
        sim.run()
        waves = -(-jobs // capacity)
        assert sim.now == pytest.approx(waves * service)


class TestStore:
    def test_fifo_order(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        sim = Simulation()
        store = Store(sim)
        result = []

        def consumer():
            item = yield store.get()
            result.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert result == [(5.0, "x")]

    def test_bounded_store_backpressure(self):
        sim = Simulation()
        store = Store(sim, capacity=1)
        times = []

        def producer():
            for i in range(3):
                yield store.put(i)
                times.append(sim.now)

        def consumer():
            for _ in range(3):
                yield sim.timeout(2.0)
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # third put had to wait for a get
        assert times[-1] > 0.0

    def test_len(self):
        sim = Simulation()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
