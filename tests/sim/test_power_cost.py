"""Power-model and cost-model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cost import fleet_price_per_hour, run_cost
from repro.sim.power import (
    PowerDraw,
    ZERO_POWER,
    energy_joules,
    ips_per_kilojoule,
    ips_per_watt,
    server_power,
    total_power,
)
from repro.sim.specs import (
    G4DN_4XLARGE,
    G4DN_4XLARGE_NOGPU,
    INF1_2XLARGE,
    P3_2XLARGE,
    P3_8XLARGE,
)


class TestPowerDraw:
    def test_total_is_sum_of_components(self):
        draw = PowerDraw(10.0, 20.0, 30.0)
        assert draw.total_watts == 60.0

    def test_add_and_scale(self):
        a = PowerDraw(1.0, 2.0, 3.0)
        b = (a + a).scaled(0.5)
        assert b.total_watts == pytest.approx(a.total_watts)

    def test_total_power_helper(self):
        draws = [PowerDraw(1, 1, 1)] * 3
        assert total_power(draws).total_watts == 9.0
        assert total_power([]).total_watts == 0.0
        assert ZERO_POWER.total_watts == 0.0


class TestServerPower:
    def test_idle_vs_active_gpu(self):
        idle = server_power(P3_8XLARGE, gpu_util=0.0)
        busy = server_power(P3_8XLARGE, gpu_util=1.0)
        assert busy.gpu_watts > idle.gpu_watts
        assert busy.gpu_watts == pytest.approx(2 * 300.0)

    def test_gpu_util_bounds(self):
        with pytest.raises(ValueError):
            server_power(P3_8XLARGE, gpu_util=1.5)
        with pytest.raises(ValueError):
            server_power(P3_8XLARGE, gpu_util=-0.1)

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            server_power(P3_8XLARGE, active_cores=-1)

    def test_no_accelerator_means_no_gpu_power(self):
        draw = server_power(G4DN_4XLARGE_NOGPU, gpu_util=0.0)
        assert draw.gpu_watts == 0.0

    def test_cores_clamped(self):
        a = server_power(P3_8XLARGE, active_cores=32)
        b = server_power(P3_8XLARGE, active_cores=500)
        assert a.cpu_watts == b.cpu_watts

    def test_disk_adds_power(self):
        without = server_power(G4DN_4XLARGE)
        with_disk = server_power(G4DN_4XLARGE, disk_active=True)
        assert with_disk.other_watts > without.other_watts

    def test_pipestore_cheaper_than_host(self):
        store = server_power(G4DN_4XLARGE, gpu_util=1.0, active_cores=2,
                             disk_active=True)
        host = server_power(P3_8XLARGE, gpu_util=1.0, active_cores=8)
        assert store.total_watts < 0.5 * host.total_watts

    def test_inf1_cheaper_than_t4_store(self):
        t4 = server_power(G4DN_4XLARGE, gpu_util=1.0, disk_active=True)
        inf1 = server_power(INF1_2XLARGE, gpu_util=1.0, disk_active=True)
        assert inf1.total_watts < t4.total_watts

    @settings(max_examples=20, deadline=None)
    @given(util=st.floats(0.0, 1.0), cores=st.integers(0, 32))
    def test_property_power_monotone_in_util(self, util, cores):
        low = server_power(P3_8XLARGE, gpu_util=util * 0.5, active_cores=cores)
        high = server_power(P3_8XLARGE, gpu_util=util, active_cores=cores)
        assert high.total_watts >= low.total_watts - 1e-9


class TestEnergyMetrics:
    def test_energy_joules(self):
        assert energy_joules(PowerDraw(50, 25, 25), 10.0) == 1000.0
        with pytest.raises(ValueError):
            energy_joules(PowerDraw(1, 1, 1), -1.0)

    def test_ips_per_watt(self):
        assert ips_per_watt(100.0, PowerDraw(50, 25, 25)) == 1.0
        with pytest.raises(ValueError):
            ips_per_watt(1.0, ZERO_POWER)

    def test_ips_per_kilojoule(self):
        # 1000 images in 10 s at 100 W -> 1 kJ -> 1000 images/kJ
        assert ips_per_kilojoule(1000, 10.0, PowerDraw(100, 0, 0)) == \
            pytest.approx(1000.0)


class TestCost:
    def test_fleet_price(self):
        fleet = [P3_2XLARGE, G4DN_4XLARGE, G4DN_4XLARGE]
        assert fleet_price_per_hour(fleet) == pytest.approx(
            3.06 + 2 * 1.204)

    def test_run_cost_scales_with_time(self):
        assert run_cost([P3_2XLARGE], 3600) == pytest.approx(3.06)
        assert run_cost([P3_2XLARGE], 1800) == pytest.approx(1.53)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            run_cost([P3_2XLARGE], -1)

    def test_paper_prices(self):
        assert P3_8XLARGE.price_per_hour == pytest.approx(12.24)
        assert INF1_2XLARGE.price_per_hour == pytest.approx(0.362)
