"""End-to-end observability: one cluster lifecycle, one metrics registry.

Runs ingest -> finetune -> offline relabel on a real NDPipeCluster (with
injected message drops so the retry path is exercised) plus a
metrics-bound NPE pipeline, then asserts that the shared registry and
tracer report the whole story: fabric bytes by kind, retry/backoff
totals, per-run FT-DMP stage times, per-stage NPE busy time, and a
loadable Chrome trace.
"""

import json

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.npe import ThreadedPipeline
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.faults.events import DropMessages
from repro.faults.injector import FaultInjector
from repro.models.registry import tiny_model


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


@pytest.fixture(scope="module")
def lifecycle():
    """One full flow with injected ingest drops; shared by every assert."""
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))
    cluster = NDPipeCluster(factory, num_stores=2, nominal_raw_bytes=4096)
    injector = FaultInjector([
        DropMessages(at=1, count=2, kind="ingest"),
    ]).attach(cluster)

    x, y = world.sample(12, 0, rng=np.random.default_rng(3))
    cluster.ingest(x, train_labels=y)
    cluster.finetune(epochs=1, num_runs=2)
    cluster.offline_relabel()

    # the NPE pipeline reports into the same registry as the cluster
    pipeline = ThreadedPipeline(
        [("read", lambda i: i), ("cpu", lambda i: i * 2),
         ("accelerator", lambda i: i + 1)],
        name="npe", metrics=cluster.metrics,
    )
    pipeline.run(range(16))
    return cluster, injector, pipeline


class TestMetricsAfterLifecycle:
    def test_fabric_bytes_reported_by_kind(self, lifecycle):
        cluster, _, _ = lifecycle
        bytes_total = cluster.metrics.get("fabric_bytes_total")
        # every byte the fabric accounted is in the registry
        assert bytes_total.total() == cluster.network.total_bytes
        transfers = cluster.metrics.get("fabric_transfers_total")
        for kind in ("ingest", "features", "labels"):
            assert cluster.network.bytes_of_kind(kind) > 0
            assert transfers.value(kind=kind) > 0

    def test_injected_drops_counted(self, lifecycle):
        cluster, injector, _ = lifecycle
        assert len(injector.dropped) == 2
        dropped = cluster.metrics.get("fabric_dropped_total")
        assert dropped.value(kind="ingest") == 2

    def test_retry_and_backoff_totals(self, lifecycle):
        cluster, _, _ = lifecycle
        reg = cluster.metrics
        # two drops -> two retried attempts with accounted backoff
        assert reg.get("retry_retries_total").value() == 2
        assert reg.get("retry_backoff_seconds_total").value() == pytest.approx(
            cluster.retry.backoff_s)
        assert cluster.retry.backoff_s > 0
        assert reg.get("retry_attempts_total").value() == cluster.retry.attempts
        assert reg.get("retry_giveups_total").value() == 0

    def test_ftdmp_per_run_stage_times(self, lifecycle):
        cluster, _, _ = lifecycle
        reg = cluster.metrics
        # num_runs=2 -> one Store-stage and one Tuner-stage sample per run
        assert reg.get("ftdmp_store_stage_seconds").count() == 2
        assert reg.get("ftdmp_tuner_stage_seconds").count() == 2
        assert reg.get("ftdmp_store_stage_seconds").sum() > 0
        assert reg.get("ftdmp_runs_total").value() == 2

    def test_npe_per_stage_busy_time(self, lifecycle):
        cluster, _, pipeline = lifecycle
        items = cluster.metrics.get("npe_stage_items_total")
        busy = cluster.metrics.get("npe_stage_busy_seconds_total")
        for stage in ("read", "cpu", "accelerator"):
            assert items.value(pipeline="npe", stage=stage) == 16
            assert busy.value(pipeline="npe", stage=stage) > 0

    def test_pipestore_and_cluster_counters(self, lifecycle):
        cluster, _, _ = lifecycle
        reg = cluster.metrics
        assert reg.get("cluster_photos_ingested_total").value() == 12
        assert reg.get("pipestore_photos_stored_total").total() == 12
        assert reg.get("pipestore_features_extracted_total").total() > 0
        assert reg.get("cluster_journal_entries").value() == cluster.journal_size
        # one distribution round per finetune call, one send per store
        mechanisms = reg.get("checknrun_distributions_total")
        assert mechanisms.value(mechanism="delta") == len(cluster.stores)

    def test_prometheus_export_carries_the_acceptance_families(self, lifecycle):
        cluster, _, _ = lifecycle
        text = cluster.metrics.export_prometheus()
        assert 'fabric_bytes_total{kind="ingest"' in text
        assert 'npe_stage_busy_seconds_total{pipeline="npe",stage="cpu"}' in text
        assert "retry_backoff_seconds_total" in text
        assert 'ftdmp_store_stage_seconds_bucket{le="+Inf"}' in text
        assert "# TYPE ftdmp_store_stage_seconds histogram" in text

    def test_json_export_parses(self, lifecycle):
        cluster, _, _ = lifecycle
        payload = json.loads(cluster.metrics.export_json())
        assert payload["fabric_bytes_total"]["type"] == "counter"
        assert payload["ftdmp_store_stage_seconds"]["type"] == "histogram"


class TestTraceAfterLifecycle:
    def test_flow_spans_recorded(self, lifecycle):
        cluster, _, _ = lifecycle
        names = {s.name for s in cluster.tracer.spans}
        assert {"cluster.ingest", "cluster.finetune",
                "cluster.offline_relabel", "ftdmp.store_stage",
                "ftdmp.tuner_stage", "ftdmp.distribute"} <= names
        # one Store-stage and one Tuner-stage span per FT-DMP run
        assert len(cluster.tracer.find("ftdmp.store_stage")) == 2
        assert len(cluster.tracer.find("ftdmp.tuner_stage")) == 2

    def test_stage_spans_nest_inside_finetune(self, lifecycle):
        cluster, _, _ = lifecycle
        finetune = cluster.tracer.find("cluster.finetune")[0]
        for span in cluster.tracer.find("ftdmp.store_stage"):
            assert span.depth > finetune.depth
            assert span.start_s >= finetune.start_s
            assert span.end_s <= finetune.end_s

    def test_chrome_trace_loads(self, lifecycle):
        cluster, _, _ = lifecycle
        payload = json.loads(cluster.tracer.export_chrome_trace())
        events = payload["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in events)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "cluster.finetune" in names and "ftdmp.store_stage" in names
