"""Tests for the MetricsRegistry: instruments, labels, exports."""

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    iter_samples,
)


class TestCounter:
    def test_unlabelled_counting(self):
        c = Counter("jobs_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total() == 3.5

    def test_labelled_counting_is_per_label_set(self):
        c = Counter("bytes_total", label_names=("kind",))
        c.inc(10, kind="ingest")
        c.inc(5, kind="labels")
        c.inc(1, kind="ingest")
        assert c.value(kind="ingest") == 11
        assert c.value(kind="labels") == 5
        assert c.total() == 16

    def test_unknown_label_set_reads_zero(self):
        c = Counter("bytes_total", label_names=("kind",))
        assert c.value(kind="never-seen") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("jobs_total").inc(-1)

    def test_wrong_labels_rejected(self):
        c = Counter("bytes_total", label_names=("kind",))
        with pytest.raises(ValueError):
            c.inc(1, flavour="x")
        with pytest.raises(ValueError):
            c.inc(1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!")

    def test_thread_safety(self):
        c = Counter("n")

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("journal_entries")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_labelled_gauge(self):
        g = Gauge("fleet_up", label_names=("store",))
        g.set(1, store="pipestore-0")
        g.set(0, store="pipestore-1")
        assert g.value(store="pipestore-0") == 1
        assert g.value(store="pipestore-1") == 0


class TestHistogram:
    def test_observe_counts_and_sums(self):
        h = Histogram("latency_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_buckets_are_cumulative_in_export(self):
        h = Histogram("latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 2
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples["latency_seconds_count"] == 3

    def test_labelled_histogram(self):
        h = Histogram("run_seconds", label_names=("stage",), buckets=(1.0,))
        h.observe(0.5, stage="store")
        h.observe(0.7, stage="tuner")
        assert h.count(stage="store") == 1
        assert h.count(stage="tuner") == 1

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "help text")
        b = reg.counter("jobs_total")
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", label_names=("kind",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x", label_names=("flavour",))

    def test_get_and_contains(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        assert "g" in reg
        assert reg.get("g").kind == "gauge"
        with pytest.raises(KeyError):
            reg.get("missing")

    def test_prometheus_export_format(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", "bytes moved",
                    label_names=("kind",)).inc(42, kind="ingest")
        reg.gauge("up", "health").set(1)
        text = reg.export_prometheus()
        assert "# HELP bytes_total bytes moved" in text
        assert "# TYPE bytes_total counter" in text
        assert 'bytes_total{kind="ingest"} 42' in text
        assert "# TYPE up gauge" in text
        assert "up 1" in text.splitlines()

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c", label_names=("k",)).inc(1, k='a"b\\c')
        assert 'k="a\\"b\\\\c"' in reg.export_prometheus()

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", label_names=("kind",)).inc(7, kind="x")
        reg.histogram("h", buckets=(1.0,)).observe(0.2)
        payload = json.loads(reg.export_json())
        assert payload["bytes_total"]["type"] == "counter"
        assert payload["bytes_total"]["values"] == [
            {"labels": ["x"], "value": 7}
        ]
        assert payload["h"]["values"][0]["count"] == 1

    def test_iter_samples_covers_all_families(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(2)
        names = [name for name, _ in iter_samples(reg)]
        assert names == ["a", "b"]
