"""Tests for the span tracer and its Chrome trace_event export."""

import json
import threading

import pytest

from repro.obs.tracing import Tracer


def fake_clock():
    """A deterministic clock advancing 1s per call."""
    state = {"t": 0.0}

    def _tick():
        state["t"] += 1.0
        return state["t"]

    return _tick


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("work"):
            pass
        (span,) = tracer.find("work")
        assert span.duration_s == pytest.approx(1.0)
        assert span.depth == 0

    def test_nested_spans_track_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.find("outer")[0]
        inner = tracer.find("inner")[0]
        assert outer.depth == 0
        assert inner.depth == 1
        assert inner.start_s >= outer.start_s
        assert inner.end_s <= outer.end_s

    def test_span_args_recorded(self):
        tracer = Tracer()
        with tracer.span("run", category="ftdmp", run=3):
            pass
        span = tracer.find("run")[0]
        assert span.category == "ftdmp"
        assert span.args == {"run": 3}

    def test_tick_source_stamps_logical_clock(self):
        ticks = iter([10, 17])
        tracer = Tracer(tick_source=lambda: next(ticks))
        with tracer.span("flow"):
            pass
        span = tracer.find("flow")[0]
        assert span.tick_start == 10
        assert span.tick_end == 17

    def test_total_seconds_and_summary(self):
        tracer = Tracer(clock=fake_clock())
        for _ in range(3):
            with tracer.span("step"):
                pass
        assert tracer.total_seconds("step") == pytest.approx(3.0)
        summary = tracer.summary()
        assert summary["step"]["count"] == 3
        assert summary["step"]["mean_s"] == pytest.approx(1.0)

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped_spans == 3
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped_spans == 0

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer.find("doomed")) == 1

    def test_threads_do_not_share_depth(self):
        tracer = Tracer()
        results = {}

        def worker():
            with tracer.span("thread-span") as span:
                results["depth"] = span.depth

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert results["depth"] == 0  # not nested under the main thread


class TestChromeTraceExport:
    def test_export_is_loadable_chrome_trace_json(self):
        """The export must satisfy the chrome://tracing JSON object format."""
        tracer = Tracer(clock=fake_clock())
        with tracer.span("cluster.finetune", epochs=1):
            with tracer.span("ftdmp.store_stage", category="ftdmp"):
                pass
        payload = json.loads(tracer.export_chrome_trace())

        # Object format: top-level dict with a traceEvents array.
        assert isinstance(payload, dict)
        events = payload["traceEvents"]
        assert isinstance(events, list)

        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"

        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "cluster.finetune", "ftdmp.store_stage",
        }
        for event in complete:
            # Required trace_event fields, ts/dur in microseconds.
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["cat"], str)
            assert isinstance(event["args"], dict)

        inner = next(e for e in complete if e["name"] == "ftdmp.store_stage")
        outer = next(e for e in complete if e["name"] == "cluster.finetune")
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert outer["args"]["epochs"] == 1

    def test_export_includes_ticks_when_wired(self):
        ticks = iter([4, 9])
        tracer = Tracer(tick_source=lambda: next(ticks))
        with tracer.span("flow"):
            pass
        payload = json.loads(tracer.export_chrome_trace(indent=2))
        event = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        assert event["args"]["tick_start"] == 4
        assert event["args"]["tick_end"] == 9
