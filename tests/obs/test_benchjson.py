"""Tests for the structured benchmark-results schema."""

import json

import pytest

from repro.obs.benchjson import (
    SCHEMA_VERSION,
    BenchResult,
    bench_payload,
    load_bench_json,
    write_bench_json,
)


class TestPayload:
    def test_payload_shape(self):
        payload = bench_payload(
            "fig12",
            [BenchResult("ips", 2129.0, "images/s", {"level": "+Batch"})],
            config={"model": "ResNet50"},
        )
        assert payload["bench"] == "fig12"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["config"] == {"model": "ResNet50"}
        assert payload["results"] == [{
            "metric": "ips", "value": 2129.0, "unit": "images/s",
            "labels": {"level": "+Batch"},
        }]

    def test_unlabelled_result_omits_labels(self):
        payload = bench_payload("b", [BenchResult("x", 1, "count")])
        assert "labels" not in payload["results"][0]

    def test_empty_bench_name_rejected(self):
        with pytest.raises(ValueError):
            bench_payload("", [])

    def test_non_benchresult_rejected(self):
        with pytest.raises(TypeError):
            bench_payload("b", [("x", 1, "count")])


class TestDirections:
    def test_direction_serialised_and_loaded(self, tmp_path):
        results = [
            BenchResult("ips", 94.0, "images/s",
                        direction="higher_is_better"),
            BenchResult("note", 1.0, "x"),  # informational
        ]
        path = write_bench_json(tmp_path, "b", results)
        loaded = load_bench_json(path)
        assert loaded == results
        assert loaded[0].direction == "higher_is_better"
        assert loaded[1].direction is None

    def test_direction_omitted_from_json_when_none(self, tmp_path):
        path = write_bench_json(tmp_path, "b", [BenchResult("x", 1, "n")])
        assert "direction" not in json.loads(path.read_text())["results"][0]

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            BenchResult("x", 1, "n", direction="bigger_is_nicer")


class TestRoundTrip:
    def test_write_and_load(self, tmp_path):
        results = [
            BenchResult("ips", 94.0, "images/s", {"system": "Typical"}),
            BenchResult("slowdown", 3.7, "x"),
        ]
        path = write_bench_json(tmp_path, "fig05", results,
                                config={"images": 1_200_000})
        assert path == tmp_path / "fig05.json"
        assert load_bench_json(path) == results

    def test_output_is_deterministic(self, tmp_path):
        results = [BenchResult("ips", 94.0, "images/s", {"b": "2", "a": "1"})]
        p1 = write_bench_json(tmp_path / "run1", "b", results,
                              config={"z": 1, "a": 2})
        p2 = write_bench_json(tmp_path / "run2", "b", results,
                              config={"a": 2, "z": 1})
        assert p1.read_text() == p2.read_text()

    def test_written_file_is_valid_json_with_newline(self, tmp_path):
        path = write_bench_json(tmp_path, "b", [BenchResult("x", 1, "n")])
        text = path.read_text()
        assert text.endswith("\n")
        json.loads(text)
