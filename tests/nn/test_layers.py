"""Unit tests for layers, modules, and parameter management."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


def rng():
    return np.random.default_rng(0)


class TestLinearConv:
    def test_linear_shape_and_bias(self):
        layer = nn.Linear(4, 3, rng=rng())
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_bias_applied_per_channel(self):
        layer = nn.Conv2d(1, 2, 1, bias=True, rng=rng())
        layer.weight.data[:] = 0.0
        layer.bias.data[:] = [1.0, 2.0]
        out = layer(Tensor(np.zeros((1, 1, 3, 3))))
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], 2.0)

    def test_conv_invalid_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 6, 3, groups=2)


class TestNorms:
    def test_batchnorm_normalises_in_train_mode(self):
        bn = nn.BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 2.0, size=(8, 3, 4, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert abs(out.data.std() - 1.0) < 0.05

    def test_batchnorm_running_stats_update(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.full((4, 2, 3, 3), 10.0))
        bn(x)
        assert bn._buffers["running_mean"][0] > 0.5

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(1)
        for _ in range(50):
            bn(Tensor(np.random.default_rng(1).normal(3.0, 1.0, (16, 1, 2, 2))))
        bn.eval()
        out = bn(Tensor(np.full((1, 1, 2, 2), 3.0)))
        assert abs(out.data.mean()) < 0.2

    def test_layernorm_normalises_last_axis(self):
        ln = nn.LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(3, 5, rng=rng()), nn.ReLU(),
                            nn.Linear(5, 2, rng=rng()))
        out = seq(Tensor(np.ones((1, 3))))
        assert out.shape == (1, 2)
        assert len(seq) == 3

    def test_sequential_indexing_and_slicing(self):
        seq = nn.Sequential(nn.ReLU(), nn.ReLU(), nn.Flatten())
        assert isinstance(seq[2], nn.Flatten)
        assert len(seq[:2]) == 2

    def test_sequential_append_registers_params(self):
        seq = nn.Sequential()
        seq.append(nn.Linear(2, 2, rng=rng()))
        assert len(seq.parameters()) == 2

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)


class TestModuleProtocol:
    def test_named_parameters_nested(self):
        seq = nn.Sequential(nn.Linear(2, 2, rng=rng()))
        names = [n for n, _ in seq.named_parameters()]
        assert "layer0.weight" in names and "layer0.bias" in names

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Linear(3, 3, rng=rng()), nn.BatchNorm2d(3))
        b = nn.Sequential(nn.Linear(3, 3, rng=np.random.default_rng(9)),
                          nn.BatchNorm2d(3))
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(2)
        assert "running_mean" in bn.state_dict()

    def test_load_state_dict_shape_mismatch(self):
        a = nn.Linear(2, 2, rng=rng())
        state = a.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            a.load_state_dict(state)

    def test_load_state_dict_unknown_key(self):
        a = nn.Linear(2, 2, rng=rng())
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros(1)})

    def test_freeze_unfreeze(self):
        layer = nn.Linear(2, 2, rng=rng())
        layer.freeze()
        assert all(not p.requires_grad for p in layer.parameters())
        layer.unfreeze()
        assert all(p.requires_grad for p in layer.parameters())

    def test_train_eval_propagates(self):
        seq = nn.Sequential(nn.Sequential(nn.Dropout(0.5)))
        seq.eval()
        assert all(not m.training for m in seq.modules())

    def test_cast_changes_dtype(self):
        layer = nn.Sequential(nn.Linear(2, 2, rng=rng()), nn.BatchNorm2d(2))
        layer.cast(np.float32)
        assert all(p.dtype == np.float32 for p in layer.parameters())
        assert layer[1]._buffers["running_mean"].dtype == np.float32

    def test_num_parameters(self):
        layer = nn.Linear(3, 4, rng=rng())
        assert layer.num_parameters() == 3 * 4 + 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestOptimizers:
    def _quadratic_step(self, opt_cls, **kwargs):
        param = Parameter(np.array([5.0]))
        opt = opt_cls([param], **kwargs)
        for _ in range(200):
            loss = (Tensor(param.data) * 0).sum()  # placeholder
            opt.zero_grad()
            param.grad = 2 * param.data  # d/dx x^2
            opt.step()
        return float(param.data[0])

    def test_sgd_minimises_quadratic(self):
        assert abs(self._quadratic_step(nn.SGD, lr=0.1)) < 1e-3

    def test_sgd_momentum_minimises(self):
        assert abs(self._quadratic_step(nn.SGD, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_minimises_quadratic(self):
        assert abs(self._quadratic_step(nn.Adam, lr=0.1)) < 1e-2

    def test_optimizers_skip_frozen_params(self):
        param = Parameter(np.array([1.0]))
        param.requires_grad = False
        opt = nn.SGD([param], lr=0.5)
        param.grad = np.array([1.0])
        opt.step()
        assert param.data[0] == 1.0

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        opt = nn.SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.array([0.0])
        opt.step()
        assert param.data[0] < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], lr=-1.0)


class TestLosses:
    def test_cross_entropy_nonnegative_and_matches_uniform(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = nn.cross_entropy(logits, np.zeros(4, dtype=int))
        assert np.isclose(loss.item(), np.log(10))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = nn.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_grad_is_softmax_minus_onehot(self):
        logits = Tensor(np.zeros((1, 4)), requires_grad=True)
        nn.cross_entropy(logits, np.array([2])).backward()
        expected = np.full((1, 4), 0.25)
        expected[0, 2] -= 1.0
        assert np.allclose(logits.grad, expected)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 3.0]))
        assert np.isclose(nn.mse(pred, np.array([1.0, 1.0])).item(), 2.0)

    def test_accuracy_and_topk(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        labels = np.array([1, 1])
        assert nn.accuracy(logits, labels) == 0.5
        assert nn.topk_accuracy(logits, labels, k=2) == 1.0

    def test_topk_clamps_to_one_when_k_exceeds_classes(self):
        logits = np.zeros((3, 2))
        assert nn.topk_accuracy(logits, np.zeros(3, dtype=int), k=5) == 1.0


class TestAttention:
    def test_mhsa_shape(self):
        attn = nn.MultiHeadSelfAttention(16, 4, rng=rng())
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_mhsa_dim_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_transformer_block_shape_preserved(self):
        block = nn.TransformerBlock(16, 4, rng=rng())
        x = Tensor(np.random.default_rng(1).normal(size=(1, 6, 16)))
        assert block(x).shape == (1, 6, 16)

    def test_patch_embedding_token_count(self):
        embed = nn.PatchEmbedding(16, 4, 3, 24, rng=rng())
        out = embed(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 17, 24)  # 16 patches + CLS

    def test_patch_embedding_divisibility(self):
        with pytest.raises(ValueError):
            nn.PatchEmbedding(15, 4, 3, 24)

    def test_attention_backward_flows(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=rng())
        x = Tensor(np.random.default_rng(2).normal(size=(1, 3, 8)),
                   requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.qkv.weight.grad is not None
