"""Unit tests for conv/pool primitives and helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestShapes:
    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(7, 7, 1, 0) == 1

    def test_conv2d_shape(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((5, 3, 3, 3)))
        assert F.conv2d(x, w, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)

    def test_grouped_conv_shape(self):
        x = Tensor(np.zeros((1, 4, 6, 6)))
        w = Tensor(np.zeros((8, 2, 3, 3)))
        assert F.conv2d(x, w, padding=1, groups=2).shape == (1, 8, 6, 6)

    def test_conv2d_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 6, 6)))
        w = Tensor(np.zeros((4, 2, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w)

    def test_conv2d_group_divisibility(self):
        x = Tensor(np.zeros((1, 4, 6, 6)))
        w = Tensor(np.zeros((3, 2, 3, 3)))
        with pytest.raises(ValueError, match="not divisible"):
            F.conv2d(x, w, groups=2)

    def test_pools_shapes(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        assert F.max_pool2d(x, 2).shape == (2, 3, 4, 4)
        assert F.avg_pool2d(x, 2).shape == (2, 3, 4, 4)
        assert F.global_avg_pool2d(x).shape == (2, 3)


class TestNumerics:
    def test_conv2d_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        assert np.allclose(out.data, x)

    def test_conv2d_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 4, 4))
        w = rng.normal(size=(1, 2, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        manual = np.zeros((1, 1, 3, 3))
        for i in range(3):
            for j in range(3):
                manual[0, 0, i, j] = (x[0, :, i:i + 2, j:j + 2] * w[0]).sum()
        assert np.allclose(out, manual)

    def test_grouped_equals_blockdiag_full_conv(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 4, 5, 5))
        w = rng.normal(size=(4, 2, 3, 3))
        grouped = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=2).data
        wfull = np.zeros((4, 4, 3, 3))
        wfull[:2, :2] = w[:2]
        wfull[2:, 2:] = w[2:]
        full = F.conv2d(Tensor(x), Tensor(wfull), padding=1).data
        assert np.allclose(grouped, full)

    def test_depthwise_equals_blockdiag(self):
        rng = np.random.default_rng(3)
        c = 5
        x = rng.normal(size=(1, c, 6, 6))
        w = rng.normal(size=(c, 1, 3, 3))
        depthwise = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1,
                             groups=c).data
        wfull = np.zeros((c, c, 3, 3))
        for ch in range(c):
            wfull[ch, ch] = w[ch, 0]
        full = F.conv2d(Tensor(x), Tensor(wfull), stride=2, padding=1).data
        assert np.allclose(depthwise, full)

    def test_max_pool_picks_maxima(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_averages(self):
        x = np.ones((1, 1, 4, 4))
        assert np.allclose(F.avg_pool2d(Tensor(x), 2).data, 1.0)

    def test_max_pool_with_padding_ignores_pad(self):
        x = -np.ones((1, 1, 2, 2))
        out = F.max_pool2d(Tensor(x), 2, stride=1, padding=1)
        # padding is -inf, so maxima are the real values
        assert out.data.max() == -1.0

    def test_global_avg_pool_matches_mean(self):
        x = np.random.default_rng(4).normal(size=(2, 3, 4, 4))
        assert np.allclose(F.global_avg_pool2d(Tensor(x)).data,
                           x.mean(axis=(2, 3)))


class TestIm2Col:
    @settings(max_examples=10, deadline=None)
    @given(h=st.integers(4, 8), stride=st.sampled_from([1, 2]),
           padding=st.sampled_from([0, 1]), seed=st.integers(0, 1000))
    def test_col2im_adjoint_of_im2col(self, h, stride, padding, seed):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, h, h))
        cols, oh, ow = F.im2col(x, 3, 3, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, 3, 3, stride, padding)
        rhs = float((x * back).sum())
        assert np.isclose(lhs, rhs)

    def test_im2col_counts(self):
        x = np.ones((1, 1, 4, 4))
        cols, oh, ow = F.im2col(x, 2, 2, 2, 0)
        assert cols.shape == (1, 4, 4)
        assert oh == ow == 2


class TestDropoutOneHot:
    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])
