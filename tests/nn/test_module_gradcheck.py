"""Finite-difference gradient checks at the whole-layer level.

The op-level checks live in ``test_gradcheck.py``; these verify composed
layers (batchnorm, layernorm, attention, a full bottleneck) propagate
correct gradients into their *parameters*, which is what training
actually consumes.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def param_numeric_grad(module, param, x, eps=1e-6):
    """Central differences of sum(module(x)) w.r.t. one parameter."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float(module(Tensor(x)).data.sum())
        flat[i] = orig - eps
        down = float(module(Tensor(x)).data.sum())
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_module_params(module, x, atol=1e-4):
    out = module(Tensor(x))
    module.zero_grad()
    out.sum().backward()
    for name, param in module.named_parameters():
        expected = param_numeric_grad(module, param, x)
        got = param.grad if param.grad is not None else np.zeros_like(expected)
        assert np.allclose(got, expected, atol=atol), (
            f"{name}: max err {np.abs(got - expected).max():.2e}"
        )


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLayerParameterGradients:
    def test_linear(self, rng):
        check_module_params(nn.Linear(5, 3, rng=rng),
                            rng.normal(size=(4, 5)))

    def test_batchnorm_train_mode(self, rng):
        bn = nn.BatchNorm2d(3)
        bn.gamma.data = rng.normal(1.0, 0.1, size=3)
        bn.beta.data = rng.normal(0.0, 0.1, size=3)
        check_module_params(bn, rng.normal(size=(4, 3, 3, 3)), atol=2e-3)

    def test_layernorm(self, rng):
        ln = nn.LayerNorm(6)
        ln.gamma.data = rng.normal(1.0, 0.1, size=6)
        check_module_params(ln, rng.normal(size=(3, 6)), atol=1e-4)

    def test_conv_bn_relu_stack(self, rng):
        stack = nn.Sequential(
            nn.Conv2d(2, 3, 3, padding=1, rng=rng),
            nn.BatchNorm2d(3),
            nn.ReLU(),
        )
        check_module_params(stack, rng.normal(size=(2, 2, 5, 5)), atol=2e-3)

    def test_attention_parameters(self, rng):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=rng)
        check_module_params(attn, rng.normal(size=(2, 4, 8)) * 0.5,
                            atol=5e-4)

    def test_transformer_block_parameters(self, rng):
        block = nn.TransformerBlock(8, 2, rng=rng)
        check_module_params(block, rng.normal(size=(1, 3, 8)) * 0.5,
                            atol=2e-3)

    def test_bottleneck_parameters(self, rng):
        from repro.models.blocks import Bottleneck

        block = Bottleneck(4, 2, 4, rng=rng)
        check_module_params(block, rng.normal(size=(2, 4, 4, 4)), atol=3e-3)

    def test_patch_embedding_parameters(self, rng):
        embed = nn.PatchEmbedding(8, 4, 2, 6, rng=rng)
        check_module_params(embed, rng.normal(size=(2, 2, 8, 8)) * 0.5,
                            atol=5e-4)
