"""Unit tests for the autograd Tensor: op semantics and gradients."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, gelu, log_softmax, softmax, stack, where


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=float), requires_grad=grad)


class TestForwardSemantics:
    def test_add_matches_numpy(self):
        a, b = t([1.0, 2.0]), t([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_broadcasts(self):
        a = t(np.ones((2, 3)))
        b = t([1.0, 2.0, 3.0])
        assert (a + b).shape == (2, 3)

    def test_scalar_radd(self):
        a = t([1.0, 2.0])
        assert np.allclose((5 + a).data, [6.0, 7.0])

    def test_mul_and_neg(self):
        a = t([2.0, -3.0])
        assert np.allclose((-a * 2).data, [-4.0, 6.0])

    def test_sub_and_rsub(self):
        a = t([1.0, 2.0])
        assert np.allclose((a - 1).data, [0.0, 1.0])
        assert np.allclose((1 - a).data, [0.0, -1.0])

    def test_div(self):
        a, b = t([4.0, 9.0]), t([2.0, 3.0])
        assert np.allclose((a / b).data, [2.0, 3.0])

    def test_pow_scalar_only(self):
        a = t([4.0])
        assert np.allclose((a ** 0.5).data, [2.0])
        with pytest.raises(TypeError):
            _ = a ** a

    def test_matmul(self):
        a = t(np.arange(6.0).reshape(2, 3))
        b = t(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_exp_log_roundtrip(self):
        a = t([0.5, 1.5])
        assert np.allclose(a.exp().log().data, a.data)

    def test_relu_clamps(self):
        a = t([-1.0, 0.0, 2.0])
        assert np.allclose(a.relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        a = t(np.linspace(-10, 10, 21))
        out = a.sigmoid().data
        assert np.all(out > 0) and np.all(out < 1)

    def test_tanh_matches_numpy(self):
        a = t([0.3, -0.7])
        assert np.allclose(a.tanh().data, np.tanh(a.data))

    def test_sum_axis_keepdims(self):
        a = t(np.arange(6.0).reshape(2, 3))
        assert a.sum(axis=1).shape == (2,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_matches_numpy(self):
        x = np.arange(12.0).reshape(3, 4)
        assert np.allclose(t(x).mean(axis=0).data, x.mean(axis=0))

    def test_var_matches_numpy(self):
        x = np.arange(12.0).reshape(3, 4)
        assert np.allclose(t(x).var(axis=1).data, x.var(axis=1))

    def test_max_matches_numpy(self):
        x = np.array([[1.0, 5.0], [7.0, 2.0]])
        assert np.allclose(t(x).max(axis=1).data, x.max(axis=1))

    def test_reshape_and_transpose(self):
        a = t(np.arange(6.0))
        assert a.reshape(2, 3).T.shape == (3, 2)

    def test_getitem(self):
        a = t(np.arange(10.0))
        assert np.allclose(a[2:5].data, [2.0, 3.0, 4.0])

    def test_pad2d(self):
        a = t(np.ones((1, 1, 2, 2)))
        assert a.pad2d(1).shape == (1, 1, 4, 4)
        assert a.pad2d(0) is a

    def test_concat_and_stack(self):
        a, b = t([1.0, 2.0]), t([3.0, 4.0])
        assert np.allclose(concat([a, b]).data, [1, 2, 3, 4])
        assert stack([a, b]).shape == (2, 2)

    def test_where(self):
        a, b = t([1.0, 2.0]), t([9.0, 9.0])
        out = where(np.array([True, False]), a, b)
        assert np.allclose(out.data, [1.0, 9.0])

    def test_softmax_rows_sum_to_one(self):
        logits = t(np.random.default_rng(0).normal(size=(4, 7)))
        assert np.allclose(softmax(logits).data.sum(axis=-1), 1.0)

    def test_log_softmax_stability(self):
        out = log_softmax(t([[1000.0, 1000.0]]))
        assert np.all(np.isfinite(out.data))

    def test_gelu_near_relu_for_large_inputs(self):
        x = t([10.0])
        assert np.allclose(gelu(x).data, 10.0, atol=1e-3)

    def test_repr_and_introspection(self):
        a = t(np.ones((2, 3)))
        assert "requires_grad" in repr(a)
        assert a.ndim == 2 and a.size == 6 and len(a) == 2

    def test_detach_drops_grad_tracking(self):
        a = t([1.0])
        assert a.detach().requires_grad is False


class TestBackwardSemantics:
    def test_add_grad_broadcast_unreduces(self):
        a = t(np.ones((2, 3)))
        b = t(np.ones(3))
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 2.0)

    def test_mul_grad(self):
        a, b = t([2.0]), t([5.0])
        (a * b).backward()
        assert np.allclose(a.grad, 5.0) and np.allclose(b.grad, 2.0)

    def test_matmul_grads(self):
        a = t(np.random.default_rng(1).normal(size=(2, 3)))
        b = t(np.random.default_rng(2).normal(size=(3, 4)))
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 4)) @ b.data.T)
        assert np.allclose(b.grad, a.data.T @ np.ones((2, 4)))

    def test_grad_accumulates_across_uses(self):
        a = t([3.0])
        (a * a).backward()
        assert np.allclose(a.grad, 6.0)

    def test_zero_grad(self):
        a = t([1.0])
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_max_grad_splits_ties(self):
        a = t([[2.0, 2.0]])
        a.max(axis=1).backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])

    def test_getitem_grad_scatters(self):
        a = t(np.zeros(5))
        a[1:3].sum().backward()
        assert np.allclose(a.grad, [0, 1, 1, 0, 0])

    def test_concat_routes_grads(self):
        a, b = t([1.0, 2.0]), t([3.0])
        out = concat([a, b])
        out.backward(np.array([10.0, 20.0, 30.0]))
        assert np.allclose(a.grad, [10.0, 20.0])
        assert np.allclose(b.grad, [30.0])

    def test_no_grad_tracking_when_not_required(self):
        a = Tensor([1.0])
        out = a * 2 + 1
        assert out.requires_grad is False
        assert out._parents == ()

    def test_deep_chain_does_not_recurse(self):
        a = t([1.0])
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        assert np.allclose(a.grad, 1.0)

    def test_backward_with_explicit_gradient(self):
        a = t([1.0, 2.0])
        (a * 3).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [3.0, 30.0])


class TestValidation:
    def test_schedule_negative_time_rejected_elsewhere(self):
        # placeholder ensuring Tensor coercion handles ints
        assert Tensor([1, 2]).dtype.kind == "f"

    def test_transpose_inverse_axes(self):
        a = t(np.random.default_rng(0).normal(size=(2, 3, 4)))
        out = a.transpose(2, 0, 1)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
