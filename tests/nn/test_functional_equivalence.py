"""Bit-exactness of every vectorized hot path against its scalar reference.

The fast paths behind :mod:`repro.fastpath` are only admissible because
they change *how fast* numbers are produced, never *which* numbers.
These property tests sweep seeded shape/dtype/stride/padding/group
grids and demand exact float equality — ``assert_array_equal``, not
``allclose`` — between the scalar reference implementation and the
vectorized one, for forward values and for every gradient.
"""

import numpy as np
import pytest

from repro.fastpath import overrides
from repro.nn.functional import conv2d
from repro.nn.layers import BatchNorm2d
from repro.nn.tensor import Tensor, no_grad
from repro.storage.compression import compress_array, decompress_array, deflate, inflate
from repro.storage.imageformat import (
    decode_photo,
    decode_preprocessed,
    decode_preprocessed_into,
    encode_photo,
    encode_preprocessed,
    preprocess,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False


def _conv_operands(seed, dtype, groups, with_grad=True):
    rng = np.random.default_rng(seed)
    n, c_per, f_per, hw, k = 3, 2, 3, 7, 3
    x = rng.standard_normal((n, c_per * groups, hw, hw)).astype(dtype)
    w = rng.standard_normal(
        (f_per * groups, c_per, k, k)).astype(dtype) * 0.3
    return x, w


def _run_conv(x, w, stride, padding, groups, vectorized, upstream):
    with overrides(vectorized_autograd=vectorized):
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        out = conv2d(xt, wt, stride=stride, padding=padding, groups=groups)
        out.backward(upstream(out.shape))
        return out.data, xt.grad, wt.grad


class TestConvBitIdentical:
    """The batched-matmul conv == the per-group scalar conv, bit for bit."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("groups", [1, 2, 3])
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_forward_and_gradients(self, dtype, groups, stride, padding):
        x, w = _conv_operands(11, dtype, groups)
        g_rng = np.random.default_rng(12)
        cache = {}

        def upstream(shape):
            # the same upstream gradient must reach both implementations
            if shape not in cache:
                cache[shape] = g_rng.standard_normal(shape).astype(x.dtype)
            return cache[shape]

        out_s, dx_s, dw_s = _run_conv(x, w, stride, padding, groups,
                                      vectorized=False, upstream=upstream)
        out_v, dx_v, dw_v = _run_conv(x, w, stride, padding, groups,
                                      vectorized=True, upstream=upstream)
        np.testing.assert_array_equal(out_s, out_v)
        np.testing.assert_array_equal(dx_s, dx_v)
        np.testing.assert_array_equal(dw_s, dw_v)
        assert out_v.dtype == dtype and dx_v.dtype == dtype

    def test_seeded_shape_sweep(self):
        """Random small shapes, both dtypes, forward exactness."""
        rng = np.random.default_rng(0)
        for trial in range(10):
            n = int(rng.integers(1, 4))
            groups = int(rng.choice([1, 2]))
            c_per = int(rng.integers(1, 4))
            f_per = int(rng.integers(1, 4))
            hw = int(rng.integers(4, 9))
            k = int(rng.choice([1, 3]))
            dtype = [np.float64, np.float32][trial % 2]
            x = rng.standard_normal(
                (n, c_per * groups, hw, hw)).astype(dtype)
            w = rng.standard_normal(
                (f_per * groups, c_per, k, k)).astype(dtype)
            with overrides(vectorized_autograd=False):
                ref = conv2d(Tensor(x), Tensor(w), padding=1,
                             groups=groups).data
            with overrides(vectorized_autograd=True):
                vec = conv2d(Tensor(x), Tensor(w), padding=1,
                             groups=groups).data
            np.testing.assert_array_equal(ref, vec)


class TestBatchNormEvalFastPath:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_eval_forward_bit_identical(self, dtype):
        rng = np.random.default_rng(5)
        bn = BatchNorm2d(6)
        bn._buffers["running_mean"] = rng.standard_normal(6)
        bn._buffers["running_var"] = rng.uniform(0.2, 2.0, 6)
        bn.gamma.data = rng.standard_normal(6)
        bn.beta.data = rng.standard_normal(6)
        bn.eval()
        x = rng.standard_normal((4, 6, 5, 5)).astype(dtype)
        with no_grad():
            with overrides(vectorized_autograd=False):
                ref = bn(Tensor(x)).data
            with overrides(vectorized_autograd=True):
                fast = bn(Tensor(x)).data
        np.testing.assert_array_equal(ref, fast)

    def test_fast_path_keeps_parameter_gradients(self):
        """The raw-numpy path must not engage while gradients are on —
        gamma/beta still train even when the input itself is frozen."""
        rng = np.random.default_rng(6)
        bn = BatchNorm2d(3)
        bn.eval()
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))  # requires_grad=False
        with overrides(vectorized_autograd=True):
            out = bn(x)
            out.sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestPreprocessBatching:
    def test_batched_equals_per_sample(self):
        rng = np.random.default_rng(7)
        batch = rng.uniform(0, 1, (5, 16, 16, 3)).astype(np.float32)
        with overrides(vectorized_preprocess=True):
            whole = preprocess(batch)
        with overrides(vectorized_preprocess=False):
            singles = np.stack([preprocess(img) for img in batch])
        np.testing.assert_array_equal(whole, singles)
        assert whole.dtype == np.float32


class TestCodecZeroCopy:
    def _photo(self, seed=8):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, 1, (16, 16, 3)).astype(np.float32)

    def test_decode_photo_identical(self):
        blob = encode_photo(self._photo())
        with overrides(zero_copy=False):
            ref = decode_photo(blob)
        with overrides(zero_copy=True):
            fast = decode_photo(blob)
        np.testing.assert_array_equal(ref, fast)

    def test_decode_preprocessed_identical_and_writable(self):
        tensor = preprocess(self._photo()).transpose(2, 0, 1)
        blob = encode_preprocessed(tensor)
        with overrides(zero_copy=False):
            ref = decode_preprocessed(blob)
        with overrides(zero_copy=True):
            fast = decode_preprocessed(blob)
        np.testing.assert_array_equal(ref, fast)
        fast[0, 0, 0] = 42.0  # zero-copy decode still hands back owned memory

    def test_decode_into_matches_decode(self):
        tensor = preprocess(self._photo()).transpose(2, 0, 1)
        blob = encode_preprocessed(tensor)
        out = np.empty_like(tensor)
        decode_preprocessed_into(inflate(deflate(blob)), out)
        np.testing.assert_array_equal(out, decode_preprocessed(blob))

    def test_inflate_and_array_roundtrip_identical(self):
        rng = np.random.default_rng(9)
        arr = rng.standard_normal((5, 7)).astype(np.float32)
        blob = compress_array(arr)
        payload = deflate(b"some raw bytes" * 20)
        with overrides(zero_copy=False):
            ref_arr = decompress_array(blob)
            ref_raw = inflate(payload)
        with overrides(zero_copy=True):
            fast_arr = decompress_array(blob)
            fast_raw = inflate(payload)
        np.testing.assert_array_equal(ref_arr, fast_arr)
        assert ref_raw == fast_raw
        fast_arr[0, 0] = 1.0  # decompressed array is writable


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 4),
        f=st.integers(1, 4),
        hw=st.integers(3, 8),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
        seed=st.integers(0, 2**16),
        use_f32=st.booleans(),
    )
    def test_conv_forward_property(n, c, f, hw, stride, padding, seed,
                                   use_f32):
        """Hypothesis: any small conv agrees exactly across both paths."""
        dtype = np.float32 if use_f32 else np.float64
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, hw, hw)).astype(dtype)
        w = rng.standard_normal((f, c, 3, 3)).astype(dtype)
        with overrides(vectorized_autograd=False):
            ref = conv2d(Tensor(x), Tensor(w), stride=stride,
                         padding=padding).data
        with overrides(vectorized_autograd=True):
            vec = conv2d(Tensor(x), Tensor(w), stride=stride,
                         padding=padding).data
        np.testing.assert_array_equal(ref, vec)
