"""Tests for learning-rate schedules and gradient clipping."""

import math

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import (
    CosineLR,
    StepLR,
    WarmupLR,
    clip_gradients,
)


def make_opt(lr=0.1):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestStepLR:
    def test_decays_on_schedule(self):
        opt = make_opt(0.1)
        sched = StepLR(opt, step_epochs=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([0.1, 0.01, 0.01, 0.001])
        assert opt.lr == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_epochs=0)
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_epochs=1, gamma=0.0)


class TestCosineLR:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.01)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(10) == pytest.approx(0.01)
        assert sched.lr_at(5) == pytest.approx((1.0 + 0.01) / 2)

    def test_monotone_decrease(self):
        sched = CosineLR(make_opt(1.0), total_epochs=8)
        lrs = [sched.lr_at(e) for e in range(9)]
        assert lrs == sorted(lrs, reverse=True)

    def test_clamps_past_horizon(self):
        sched = CosineLR(make_opt(1.0), total_epochs=4, min_lr=0.1)
        assert sched.lr_at(100) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineLR(make_opt(), total_epochs=0)
        with pytest.raises(ValueError):
            CosineLR(make_opt(), total_epochs=5, min_lr=0.0)


class TestWarmup:
    def test_linear_ramp(self):
        sched = WarmupLR(make_opt(0.4), warmup_epochs=4)
        assert [sched.lr_at(e) for e in (1, 2, 4)] == pytest.approx(
            [0.1, 0.2, 0.4])

    def test_delegates_after_warmup(self):
        opt = make_opt(1.0)
        after = StepLR(opt, step_epochs=1, gamma=0.5)
        sched = WarmupLR(opt, warmup_epochs=2, after=after)
        assert sched.lr_at(3) == pytest.approx(0.5)  # after's epoch 1

    def test_plateau_without_after(self):
        sched = WarmupLR(make_opt(0.2), warmup_epochs=2)
        assert sched.lr_at(9) == pytest.approx(0.2)


class TestClipGradients:
    def test_scales_down_large_gradients(self):
        params = [Parameter(np.zeros(4))]
        params[0].grad = np.full(4, 3.0)
        norm = clip_gradients(params, max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0)

    def test_leaves_small_gradients_alone(self):
        params = [Parameter(np.zeros(2))]
        params[0].grad = np.array([0.1, 0.1])
        clip_gradients(params, max_norm=10.0)
        assert np.allclose(params[0].grad, [0.1, 0.1])

    def test_skips_missing_gradients(self):
        params = [Parameter(np.zeros(2)), Parameter(np.zeros(2))]
        params[0].grad = np.array([5.0, 0.0])
        clip_gradients(params, max_norm=1.0)
        assert params[1].grad is None

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


class TestIntegrationWithFullTrain:
    def test_scheduler_and_clip_run_end_to_end(self, small_world):
        from repro.data.loader import normalize_images
        from repro.models.registry import tiny_model
        from repro.train.fulltrain import full_train

        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        x, y = small_world.sample(64, 0)
        history = full_train(
            model, normalize_images(x), y, epochs=2, lr=5e-3,
            scheduler_fn=lambda opt: CosineLR(opt, total_epochs=2),
            grad_clip=5.0,
        )
        assert history.epochs == 2
        assert all(math.isfinite(loss) for loss in history.losses)
