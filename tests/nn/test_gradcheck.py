"""Property-based gradient verification: autograd vs finite differences."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concat, gelu, log_softmax


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check(op, x: np.ndarray, atol: float = 1e-5) -> None:
    tensor = Tensor(x.copy(), requires_grad=True)
    out = op(tensor)
    out.sum().backward()
    expected = numeric_grad(lambda arr: op(Tensor(arr)).data.sum(), x.copy())
    assert np.allclose(tensor.grad, expected, atol=atol), (
        f"max err {np.abs(tensor.grad - expected).max():.2e}"
    )


arrays = st.integers(min_value=1, max_value=4)


@settings(max_examples=12, deadline=None)
@given(n=arrays, m=arrays, seed=st.integers(0, 2**31 - 1))
def test_elementwise_ops_gradcheck(n, m, seed):
    x = np.random.default_rng(seed).normal(size=(n, m)) * 0.8 + 0.1
    check(lambda t: t.tanh() * t + t.sigmoid(), x)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_exp_log_softmax_gradcheck(seed):
    x = np.random.default_rng(seed).normal(size=(3, 5))
    check(lambda t: log_softmax(t, axis=-1), x)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_gelu_gradcheck(seed):
    x = np.random.default_rng(seed).normal(size=(2, 6))
    check(gelu, x, atol=1e-4)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_matmul_gradcheck(seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(4, 3))
    x = rng.normal(size=(2, 4))
    check(lambda t: t @ Tensor(w), x)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_reductions_gradcheck(seed):
    x = np.random.default_rng(seed).normal(size=(3, 4)) + 2.0
    check(lambda t: t.mean(axis=0) * t.sum(axis=0), x)
    check(lambda t: t.var(axis=1), x)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), stride=st.sampled_from([1, 2]),
       padding=st.sampled_from([0, 1]))
def test_conv2d_gradcheck(seed, stride, padding):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 2, 5, 5))
    w = rng.normal(size=(3, 2, 3, 3))

    xt = Tensor(x.copy(), requires_grad=True)
    wt = Tensor(w.copy(), requires_grad=True)
    F.conv2d(xt, wt, stride=stride, padding=padding).sum().backward()

    expected_x = numeric_grad(
        lambda arr: F.conv2d(Tensor(arr), Tensor(w), stride, padding).data.sum(),
        x.copy(),
    )
    expected_w = numeric_grad(
        lambda arr: F.conv2d(Tensor(x), Tensor(arr), stride, padding).data.sum(),
        w.copy(),
    )
    assert np.allclose(xt.grad, expected_x, atol=1e-5)
    assert np.allclose(wt.grad, expected_w, atol=1e-5)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_grouped_conv2d_gradcheck(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(1, 4, 4, 4))
    w = rng.normal(size=(4, 2, 3, 3))  # groups=2
    xt = Tensor(x.copy(), requires_grad=True)
    wt = Tensor(w.copy(), requires_grad=True)
    F.conv2d(xt, wt, padding=1, groups=2).sum().backward()
    expected_x = numeric_grad(
        lambda arr: F.conv2d(Tensor(arr), Tensor(w), 1, 1, 2).data.sum(),
        x.copy(),
    )
    assert np.allclose(xt.grad, expected_x, atol=1e-5)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_depthwise_conv2d_gradcheck(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 3, 5, 5))
    w = rng.normal(size=(3, 1, 3, 3))  # groups == channels
    xt = Tensor(x.copy(), requires_grad=True)
    wt = Tensor(w.copy(), requires_grad=True)
    F.conv2d(xt, wt, stride=2, padding=1, groups=3).sum().backward()
    expected_x = numeric_grad(
        lambda arr: F.conv2d(Tensor(arr), Tensor(w), 2, 1, 3).data.sum(),
        x.copy(),
    )
    expected_w = numeric_grad(
        lambda arr: F.conv2d(Tensor(x), Tensor(arr), 2, 1, 3).data.sum(),
        w.copy(),
    )
    assert np.allclose(xt.grad, expected_x, atol=1e-5)
    assert np.allclose(wt.grad, expected_w, atol=1e-5)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), kernel=st.sampled_from([2, 3]))
def test_pool_gradcheck(seed, kernel):
    x = np.random.default_rng(seed).normal(size=(1, 2, 6, 6))
    check(lambda t: F.avg_pool2d(t, kernel), x)
    # max pool has kinks; nudge away from ties for finite differences
    x = x + np.arange(x.size).reshape(x.shape) * 1e-3
    check(lambda t: F.max_pool2d(t, kernel), x)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_concat_gradcheck(seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(2, 3))
    check(lambda t: concat([t * 2, t + 1], axis=1), a)


def test_numeric_grad_sanity():
    # d/dx x^2 = 2x
    x = np.array([3.0])
    grad = numeric_grad(lambda a: float((a ** 2).sum()), x)
    assert np.allclose(grad, 6.0, atol=1e-4)
