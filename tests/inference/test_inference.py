"""Tests for online/offline inference paths and campaign estimates."""

import pytest

from repro.core.cluster import InferenceServer
from repro.inference.offline import (
    campaign_comparison,
    ndpipe_campaign,
    srv_campaign,
)
from repro.inference.online import (
    OnlineInferencePath,
    online_latency,
)
from repro.models.catalog import model_graph
from repro.models.registry import tiny_model
from repro.storage.photodb import PhotoDatabase


@pytest.fixture(scope="module")
def resnet():
    return model_graph("ResNet50")


class TestCampaigns:
    def test_ndpipe_network_bytes_are_labels_only(self, resnet):
        est = ndpipe_campaign(resnet, 1_000_000, 8)
        assert est.network_bytes == 1_000_000 * 16
        assert est.throughput_ips == pytest.approx(8 * 2129, rel=0.02)

    def test_srv_campaign_ships_binaries(self, resnet):
        est = srv_campaign(resnet, 1000, "SRV-C")
        assert est.network_bytes == 1000 * 206_293
        assert srv_campaign(resnet, 1000, "SRV-I").network_bytes == 0

    def test_comparison_contains_all_systems(self, resnet):
        out = campaign_comparison(resnet, 10_000, 6)
        assert set(out) == {"SRV-I", "SRV-P", "SRV-C", "NDPipe"}

    def test_ndpipe_moves_orders_of_magnitude_fewer_bytes(self, resnet):
        out = campaign_comparison(resnet, 100_000, 6)
        assert out["NDPipe"].network_bytes < out["SRV-C"].network_bytes / 1000

    def test_duration_scales_with_photos(self, resnet):
        small = ndpipe_campaign(resnet, 1000, 4)
        big = ndpipe_campaign(resnet, 10_000, 4)
        assert big.duration_s == pytest.approx(10 * small.duration_s)


class TestOnlineLatency:
    def test_components_positive(self, resnet):
        model = online_latency(resnet)
        assert model.preprocess_s > 0
        assert model.inference_s > 0
        assert model.total_s > model.preprocess_s

    def test_preprocessing_dominates_single_image(self, resnet):
        """At batch 1 on a V100, JPEG preprocessing dwarfs the forward."""
        model = online_latency(resnet)
        assert model.preprocess_s > model.inference_s


class TestOnlinePath:
    def test_upload_indexes_label(self, rng):
        server = InferenceServer(tiny_model("ResNet50", num_classes=6,
                                            width=8, seed=2))
        db = PhotoDatabase()
        path = OnlineInferencePath(server, db, model_version=3)
        label, conf = path.upload("p1", rng.random((3, 16, 16)), "s0")
        assert 0 <= label < 6
        assert 0.0 < conf <= 1.0
        assert db.lookup("p1").model_version == 3
        assert path.uploads == 1
