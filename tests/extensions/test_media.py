"""Tests for the §7.1 media extensions (video / audio / documents)."""

import numpy as np
import pytest

from repro.extensions.media import (
    AudioAdapter,
    DocumentAdapter,
    DocumentEncoder,
    VideoAdapter,
    extract_key_frames,
    spectrogram,
    synthesize_audio,
    synthesize_document,
    synthesize_video,
)


@pytest.fixture(scope="module")
def world():
    from repro.data.drift import DriftingPhotoWorld, WorldConfig

    return DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))


class TestVideo:
    def test_synthesize_shapes(self, world):
        video = synthesize_video(world, label=2, num_frames=12)
        assert video.frames.shape == (12, 3, 16, 16)
        assert video.duration_s == pytest.approx(0.5)
        assert video.nominal_bytes == 12 * 40_000

    def test_key_frames_sorted_and_unique(self, world):
        video = synthesize_video(world, label=1, num_frames=20, seed=3)
        frames, indices = extract_key_frames(video, 5)
        assert len(frames) == 5
        assert indices == sorted(set(indices))
        assert indices[0] == 0  # opening frame always kept

    def test_key_frames_prefer_shot_changes(self, world):
        video = synthesize_video(world, label=1, num_frames=30, seed=7)
        diffs = np.abs(np.diff(video.frames, axis=0)).mean(axis=(1, 2, 3))
        _, indices = extract_key_frames(video, 4)
        chosen_nonfirst = [i for i in indices if i > 0]
        if chosen_nonfirst:
            chosen_mean = np.mean([diffs[i - 1] for i in chosen_nonfirst])
            assert chosen_mean >= np.median(diffs)

    def test_request_more_frames_than_exist(self, world):
        video = synthesize_video(world, label=0, num_frames=3)
        frames, indices = extract_key_frames(video, 10)
        assert len(frames) == 3 and indices == [0, 1, 2]

    def test_adapter_summary_majority(self):
        adapter = VideoAdapter(num_key_frames=4)
        label, conf = adapter.summarize([2, 2, 5, 2], [0.9, 0.8, 0.4, 0.7])
        assert label == 2
        assert 0.5 < conf <= 1.0

    def test_adapter_compute_savings(self, world):
        adapter = VideoAdapter(num_key_frames=4)
        video = synthesize_video(world, label=1, num_frames=24)
        assert adapter.compute_saved_fraction(video) == pytest.approx(
            1 - 4 / 24)

    def test_adapter_validation(self):
        with pytest.raises(ValueError):
            VideoAdapter(num_key_frames=0)
        with pytest.raises(ValueError):
            VideoAdapter().summarize([], [])

    def test_end_to_end_video_classification(self, world):
        """Key frames flow through a real model like photos do."""
        from repro.models.registry import tiny_model
        from repro.nn.tensor import Tensor
        from repro.storage.imageformat import preprocess

        model = tiny_model("ResNet50", num_classes=8, width=8).eval()
        adapter = VideoAdapter(num_key_frames=3)
        video = synthesize_video(world, label=4, num_frames=16)
        frames = adapter.prepare(video)
        logits = model(Tensor(np.stack([preprocess(f) for f in frames]))).data
        labels = logits.argmax(axis=-1).tolist()
        confidences = logits.max(axis=-1).tolist()
        label, _ = adapter.summarize(labels, confidences)
        assert 0 <= label < 8


class TestAudio:
    def test_waveform_shape(self):
        audio = synthesize_audio(label=2, num_classes=6)
        assert audio.waveform.ndim == 1
        assert np.abs(audio.waveform).max() <= 1.0

    def test_spectrogram_shape_and_range(self):
        audio = synthesize_audio(label=1, num_classes=6)
        spec = spectrogram(audio.waveform, n_fft=128)
        assert spec.shape[0] == 65  # rfft bins
        assert 0.0 <= spec.min() and spec.max() <= 1.0

    def test_spectrogram_too_short(self):
        with pytest.raises(ValueError):
            spectrogram(np.zeros(16), n_fft=128)

    def test_adapter_emits_photo_shaped_input(self):
        adapter = AudioAdapter(image_size=16)
        audio = synthesize_audio(label=3, num_classes=6)
        image = adapter.prepare(audio)
        assert image.shape == (3, 16, 16)
        assert image.dtype == np.float32

    def test_different_classes_distinguishable(self):
        adapter = AudioAdapter(image_size=16)
        a = adapter.prepare(synthesize_audio(0, 6, seed=1))
        b = adapter.prepare(synthesize_audio(4, 6, seed=1))
        assert np.abs(a - b).mean() > 0.01

    def test_spectrograms_classifiable(self):
        """A linear probe separates two synthetic 'genres'."""
        adapter = AudioAdapter(image_size=16)
        xs, ys = [], []
        for seed in range(30):
            for label in (0, 4):
                xs.append(adapter.prepare(
                    synthesize_audio(label, 6, seed=seed)).reshape(-1))
                ys.append(0 if label == 0 else 1)
        xs = np.stack(xs)
        ys = np.array(ys)
        # closed-form least squares probe
        w, *_ = np.linalg.lstsq(
            np.hstack([xs, np.ones((len(xs), 1))]), 2.0 * ys - 1.0,
            rcond=None)
        preds = (np.hstack([xs, np.ones((len(xs), 1))]) @ w) > 0
        assert (preds == ys.astype(bool)).mean() > 0.9


class TestDocuments:
    def test_encoder_deterministic_across_instances(self):
        a = DocumentEncoder(seed=3).encode("photo of a cat on a couch")
        b = DocumentEncoder(seed=3).encode("photo of a cat on a couch")
        assert np.array_equal(a, b)

    def test_embedding_shape_and_range(self):
        emb = DocumentEncoder(embedding_dim=32).encode("hello world")
        assert emb.shape == (32,)
        assert np.abs(emb).max() <= 1.0

    def test_empty_document(self):
        emb = DocumentEncoder().encode("")
        assert np.allclose(emb, 0.0)

    def test_similar_documents_closer_than_different(self):
        encoder = DocumentEncoder()
        d0a = synthesize_document(0, 4, seed=1)
        d0b = synthesize_document(0, 4, seed=2)
        d3 = synthesize_document(3, 4, seed=3)
        same = np.linalg.norm(encoder.encode(d0a) - encoder.encode(d0b))
        diff = np.linalg.norm(encoder.encode(d0a) - encoder.encode(d3))
        assert same < diff

    def test_adapter_traffic_reduction(self):
        adapter = DocumentAdapter(DocumentEncoder(embedding_dim=64))
        text = synthesize_document(1, 4, length=500)
        assert adapter.traffic_reduction(text) > 5

    def test_encoder_validation(self):
        with pytest.raises(ValueError):
            DocumentEncoder(embedding_dim=0)

    def test_embeddings_train_a_classifier(self):
        """Tuner-side classification over near-data embeddings (§7.1)."""
        from repro.nn.layers import Linear
        from repro.nn.losses import accuracy, cross_entropy
        from repro.nn.optim import Adam
        from repro.nn.tensor import Tensor

        encoder = DocumentEncoder(embedding_dim=48)
        xs, ys = [], []
        for seed in range(40):
            for label in range(4):
                xs.append(encoder.encode(
                    synthesize_document(label, 4, seed=seed * 7 + label)))
                ys.append(label)
        xs = np.stack(xs).astype(np.float64)
        ys = np.array(ys)
        head = Linear(48, 4, rng=np.random.default_rng(0))
        opt = Adam(head.parameters(), lr=5e-2)
        for _ in range(60):
            loss = cross_entropy(head(Tensor(xs)), ys)
            head.zero_grad()
            loss.backward()
            opt.step()
        assert accuracy(head(Tensor(xs)).data, ys) > 0.9
