"""Crash-resume chaos suite — the issue's acceptance scenario.

A :class:`TunerCrash` event kills the Tuner mid-lifecycle (every
subsequent operation raises the non-transient ``TunerCrashError``, so
retries cannot absorb it).  The operator restores the latest run-boundary
checkpoint into a fresh cluster and finishes the lifecycle; the result
must match an uninterrupted run bit for bit — same final model version,
same weights, same label counts.

``NDPIPE_CHAOS_SEED`` varies the schedule in CI; ``NDPIPE_CKPT_DIR``
redirects the ``.ndcp`` blobs somewhere the CI job can upload them as
artifacts.  Everything is deterministic for a fixed seed.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.faults import FaultInjector, TunerCrash
from repro.faults.errors import TunerCrashError
from repro.models.registry import tiny_model

NUM_PHOTOS = 18
NUM_RUNS = 3
CHAOS_SEED = int(os.environ.get("NDPIPE_CHAOS_SEED", "0"))


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


def fresh_cluster():
    return NDPipeCluster(factory, num_stores=3, nominal_raw_bytes=2048,
                         replication=2, seed=0)


def ingest_world(cluster, small_world, seed):
    x, y = small_world.sample(NUM_PHOTOS, 0, rng=np.random.default_rng(seed))
    return cluster.ingest(x, train_labels=y)


def lifecycle_fingerprint(cluster):
    """Everything the acceptance criterion compares."""
    return {
        "tuner_version": cluster.tuner.version,
        "model": {k: v.copy()
                  for k, v in cluster.tuner.model.state_dict().items()},
        "labels": cluster.database.snapshot_labels(),
        "version_counts": cluster.database.version_counts(),
    }


def assert_fingerprints_equal(a, b):
    assert a["tuner_version"] == b["tuner_version"]
    assert a["labels"] == b["labels"]
    assert a["version_counts"] == b["version_counts"]
    assert set(a["model"]) == set(b["model"])
    for key in a["model"]:
        assert np.array_equal(a["model"][key], b["model"][key]), key


def checkpoint_dir(tmp_path: Path) -> Path:
    configured = os.environ.get("NDPIPE_CKPT_DIR")
    if configured:
        path = Path(configured)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


def run_uninterrupted(small_world, seed):
    cluster = fresh_cluster()
    ingest_world(cluster, small_world, seed)
    report = cluster.finetune(epochs=1, num_runs=NUM_RUNS)
    cluster.offline_relabel()
    return cluster, report


def run_until_crash(small_world, seed, crash_tick, out_dir):
    """Ingest, then fine-tune until the injected Tuner crash kills it.
    Returns the on-disk checkpoints written before the crash."""
    cluster = fresh_cluster()
    ingest_world(cluster, small_world, seed)
    injector = FaultInjector([TunerCrash(at=crash_tick)]).attach(cluster)
    written = {}

    def sink(run_index, blob):
        path = out_dir / f"crash-resume-s{seed}-run{run_index}.ndcp"
        path.write_bytes(blob)
        written[run_index] = path

    with pytest.raises(TunerCrashError):
        cluster.finetune(epochs=1, num_runs=NUM_RUNS, checkpoint_sink=sink)
    assert injector.tuner_crashed
    injector.detach()
    return written


def resume_from_latest(written, small_world_unused=None):
    latest = written[max(written)]
    cluster = fresh_cluster()
    progress = cluster.restore(latest.read_bytes())
    assert progress is not None
    report = cluster.finetune(resume=progress)
    cluster.offline_relabel()
    return cluster, report


@pytest.mark.parametrize("seed", sorted({0, CHAOS_SEED}))
class TestTunerCrashResume:
    """Crash mid-gather (between run boundaries), resume, compare."""

    def test_resumed_lifecycle_matches_uninterrupted(self, small_world,
                                                     tmp_path, seed):
        baseline, base_report = run_uninterrupted(small_world, seed)
        expected = lifecycle_fingerprint(baseline)

        # each run moves 3 feature transfers; tick 4-6 is inside run 1's
        # gather, so run 0's checkpoint is durable and run 1 is lost
        crash_tick = 4 + seed % 3
        out_dir = checkpoint_dir(tmp_path)
        written = run_until_crash(small_world, seed, crash_tick, out_dir)
        assert max(written) == 0  # the crash lost every later run

        resumed, resumed_report = resume_from_latest(written)
        assert_fingerprints_equal(lifecycle_fingerprint(resumed), expected)
        # the resumed report accumulates onto the restored one: identical
        # loss trajectory, identical coverage
        assert [e.loss for e in resumed_report.epochs] == \
            [e.loss for e in base_report.epochs]
        assert resumed_report.images_extracted == base_report.images_extracted
        assert resumed.database.outdated_ids(resumed.tuner.version) == []

    def test_crash_and_resume_are_deterministic(self, small_world,
                                                tmp_path, seed):
        crash_tick = 4 + seed % 3

        def once(label):
            out = tmp_path / label
            out.mkdir()
            written = run_until_crash(small_world, seed, crash_tick, out)
            blobs = {run: path.read_bytes()
                     for run, path in written.items()}
            cluster, _ = resume_from_latest(written)
            return blobs, lifecycle_fingerprint(cluster)

        blobs_a, fp_a = once("a")
        blobs_b, fp_b = once("b")
        assert blobs_a == blobs_b  # checkpoints are bit-identical
        assert_fingerprints_equal(fp_a, fp_b)


class TestCrashAtOtherPoints:
    def test_crash_during_distribution_resumes_cleanly(self, small_world,
                                                       tmp_path):
        """All runs gathered; the crash hits the Check-N-Run round.  The
        last checkpoint says 'nothing left to gather' and resume only
        redoes the distribution."""
        baseline, _ = run_uninterrupted(small_world, CHAOS_SEED)
        expected = lifecycle_fingerprint(baseline)

        # 3 runs x 3 feature sends = 9 ticks; tick 10+ is distribution
        out_dir = checkpoint_dir(tmp_path)
        written = run_until_crash(small_world, CHAOS_SEED, crash_tick=10,
                                  out_dir=out_dir)
        assert max(written) == NUM_RUNS - 1
        latest = written[max(written)]

        cluster = fresh_cluster()
        progress = cluster.restore(latest.read_bytes())
        assert progress.finished_gathering
        report = cluster.finetune(resume=progress)
        cluster.offline_relabel()
        assert_fingerprints_equal(lifecycle_fingerprint(cluster), expected)
        assert report.images_extracted == NUM_PHOTOS

    def test_crash_before_any_checkpoint_leaves_nothing(self, small_world,
                                                        tmp_path):
        """A crash inside run 0 writes no checkpoint: the operator
        restarts the lifecycle from scratch — no silent partial state."""
        cluster = fresh_cluster()
        ingest_world(cluster, small_world, CHAOS_SEED)
        injector = FaultInjector([TunerCrash(at=1)]).attach(cluster)
        sink_calls = []
        with pytest.raises(TunerCrashError):
            cluster.finetune(epochs=1, num_runs=NUM_RUNS,
                             checkpoint_sink=lambda r, b: sink_calls.append(r))
        assert sink_calls == []
        injector.detach()

    def test_retries_cannot_absorb_a_tuner_crash(self, small_world):
        """TunerCrashError is not transient: the retry policy must let it
        through instead of spinning against a dead process."""
        cluster = fresh_cluster()
        ingest_world(cluster, small_world, CHAOS_SEED)
        FaultInjector([TunerCrash(at=1)]).attach(cluster)
        with pytest.raises(TunerCrashError):
            cluster.finetune(epochs=1)
