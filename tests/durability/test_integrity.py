"""Integrity layer: write-time CRCs, verified reads, corruption events,
scrub detection, and unaccounted maintenance IO."""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.faults import BitRot, FaultInjector, TornWrite
from repro.models.registry import tiny_model
from repro.storage.objectstore import CorruptObjectError, ObjectStore


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


def fresh_cluster(**kwargs):
    kwargs.setdefault("num_stores", 3)
    kwargs.setdefault("nominal_raw_bytes", 2048)
    return NDPipeCluster(factory, **kwargs)


class TestObjectStoreCRC:
    def test_get_verifies_crc(self):
        store = ObjectStore(name="s")
        store.put("raw/a", b"hello world")
        assert store.get("raw/a") == b"hello world"
        store.corrupt_object("raw/a", b"hellp world")
        with pytest.raises(CorruptObjectError) as info:
            store.get("raw/a")
        assert info.value.store == "s"
        assert info.value.key == "raw/a"

    def test_single_bit_flip_always_detected(self):
        blob = bytes(np.random.default_rng(0).integers(0, 256, 64,
                                                       dtype=np.uint8))
        for pos in range(0, len(blob), 7):
            for bit in range(8):
                store = ObjectStore()
                store.put("k", blob)
                damaged = bytearray(blob)
                damaged[pos] ^= 1 << bit
                store.corrupt_object("k", bytes(damaged))
                assert not store.verify("k")

    def test_peek_is_unaccounted_and_unverified(self):
        store = ObjectStore()
        store.put("k", b"payload")
        store.corrupt_object("k", b"pAyload")
        before = store.bytes_read
        assert store.peek("k") == b"pAyload"  # no CRC complaint
        assert store.bytes_read == before
        with pytest.raises(CorruptObjectError):
            store.peek("k", verify=True)

    def test_rewrite_refreshes_crc(self):
        store = ObjectStore()
        store.put("k", b"old")
        store.corrupt_object("k", b"bad")
        store.put("k", b"new")
        assert store.verify("k")
        assert store.get("k") == b"new"

    def test_iter_items_does_not_count_reads(self):
        store = ObjectStore()
        store.put("a", b"x" * 100)
        store.put("b", b"y" * 100)
        _ = store.get("a")
        before = store.bytes_read
        assert dict(store.iter_items()) == {"a": b"x" * 100, "b": b"y" * 100}
        assert store.bytes_read == before


class TestCorruptionEvents:
    def _loaded(self, small_world):
        cluster = fresh_cluster()
        x, y = small_world.sample(15, 0, rng=np.random.default_rng(3))
        ids = cluster.ingest(x, train_labels=y)
        return cluster, ids

    def test_bit_rot_fires_and_scrub_detects(self, small_world):
        cluster, _ = self._loaded(small_world)
        injector = FaultInjector([
            BitRot(at=1, store_id="pipestore-0", num_objects=2, seed=9),
        ]).attach(cluster)
        # any transfer advances the clock past tick 1
        cluster.network.send("a", "b", 1, "tick")
        assert len(injector.corrupted) == 2
        report = cluster.stores[0].scrub()
        assert sorted(report.corrupt_keys) == sorted(
            key for _sid, key in injector.corrupted)
        assert not cluster.stores[1].scrub().corrupt_keys
        injector.detach()

    def test_torn_write_truncates_and_is_detected(self, small_world):
        cluster, ids = self._loaded(small_world)
        store = cluster.stores[0]
        key = store.objects.raw_key(
            cluster.database.ids_at("pipestore-0")[0])
        original_len = store.objects.size_of(key)
        injector = FaultInjector([
            TornWrite(at=1, store_id="pipestore-0", key=key,
                      keep_fraction=0.5),
        ]).attach(cluster)
        cluster.network.send("a", "b", 1, "tick")
        assert injector.corrupted == [("pipestore-0", key)]
        assert store.objects.size_of(key) == original_len // 2
        assert not store.objects.verify(key)
        injector.detach()

    def test_corruption_schedule_is_deterministic(self, small_world):
        def run():
            cluster, _ = self._loaded(small_world)
            injector = FaultInjector([
                BitRot(at=1, store_id="pipestore-1", num_objects=3, seed=4),
            ]).attach(cluster)
            cluster.network.send("a", "b", 1, "tick")
            corrupted = list(injector.corrupted)
            injector.detach()
            return corrupted

        assert run() == run()

    def test_workload_read_of_rotten_object_raises(self, small_world):
        cluster, _ = self._loaded(small_world)
        pid = cluster.database.ids_at("pipestore-0")[0]
        store = cluster.stores[0]
        key = store.objects.preproc_key(pid)
        blob = bytearray(store.objects.peek(key))
        blob[len(blob) // 2] ^= 0x40
        store.objects.corrupt_object(key, bytes(blob))
        with pytest.raises(CorruptObjectError):
            store.load_preprocessed(pid)


class TestScrubMetrics:
    def test_scrub_counts_into_metrics(self, small_world):
        cluster = fresh_cluster()
        x, y = small_world.sample(9, 0, rng=np.random.default_rng(1))
        cluster.ingest(x, train_labels=y)
        store = cluster.stores[0]
        key = store.objects.keys("raw/")[0]
        store.objects.corrupt_object(key, b"\x00" * 8)
        report = store.scrub()
        assert report.objects_checked == len(store.objects)
        assert report.corrupt_keys == [key]
        assert not report.clean
        scrubbed = cluster.metrics.get("pipestore_objects_scrubbed_total")
        assert scrubbed.value(store="pipestore-0") == report.objects_checked
        corrupt = cluster.metrics.get("pipestore_corrupt_objects_total")
        assert corrupt.value(store="pipestore-0") == 1

    def test_scrub_never_touches_io_accounting(self, small_world):
        cluster = fresh_cluster()
        x, y = small_world.sample(6, 0, rng=np.random.default_rng(1))
        cluster.ingest(x, train_labels=y)
        for store in cluster.stores:
            before = store.objects.bytes_read
            store.scrub()
            assert store.objects.bytes_read == before
