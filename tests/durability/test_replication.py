"""k-way replication: placement, promotion, and scrub-and-repair.

Includes the issue's acceptance scenario: injected bit-rot on one replica
is detected by a scrub and repaired from another replica, with zero
photos lost — deterministic under a fixed injector seed."""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.durability.replication import ReplicaMap
from repro.faults import BitRot, FaultInjector, StoreCrash
from repro.models.registry import tiny_model

NUM_PHOTOS = 18


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


def fresh_cluster(**kwargs):
    kwargs.setdefault("num_stores", 3)
    kwargs.setdefault("nominal_raw_bytes", 2048)
    kwargs.setdefault("replication", 2)
    return NDPipeCluster(factory, **kwargs)


def loaded_cluster(small_world, seed=3, **kwargs):
    cluster = fresh_cluster(**kwargs)
    x, y = small_world.sample(NUM_PHOTOS, 0, rng=np.random.default_rng(seed))
    ids = cluster.ingest(x, train_labels=y)
    return cluster, ids


class TestReplicaMap:
    def test_place_and_lookup(self):
        rmap = ReplicaMap()
        rmap.place("p", ["a", "b"])
        assert rmap.primary("p") == "a"
        assert rmap.holders("p") == ["a", "b"]
        assert rmap.is_holder("p", "b")
        assert not rmap.is_holder("p", "c")
        assert "p" in rmap and len(rmap) == 1

    def test_place_rejects_bad_holder_lists(self):
        rmap = ReplicaMap()
        with pytest.raises(ValueError):
            rmap.place("p", [])
        with pytest.raises(ValueError):
            rmap.place("p", ["a", "a"])

    def test_remove_holder_drops_empty_entries(self):
        rmap = ReplicaMap()
        rmap.place("p", ["a", "b"])
        rmap.remove_holder("p", "a")
        assert rmap.holders("p") == ["b"]
        rmap.remove_holder("p", "b")
        assert "p" not in rmap

    def test_underreplicated_and_photos_on(self):
        rmap = ReplicaMap()
        rmap.place("p1", ["a", "b"])
        rmap.place("p2", ["a"])
        assert rmap.underreplicated(2) == ["p2"]
        assert rmap.photos_on("a") == ["p1", "p2"]
        assert rmap.photos_on("b") == ["p1"]

    def test_round_trips_through_dict(self):
        rmap = ReplicaMap()
        rmap.place("p1", ["a", "b"])
        rmap.place("p2", ["c"])
        clone = ReplicaMap.from_dict(rmap.to_dict())
        assert clone.to_dict() == rmap.to_dict()


class TestPlacement:
    def test_every_photo_gets_k_distinct_holders(self, small_world):
        cluster, ids = loaded_cluster(small_world)
        for pid in ids:
            holders = cluster.replicas.holders(pid)
            assert len(holders) == 2
            assert len(set(holders)) == 2
            assert holders[0] == cluster.database.lookup(pid).location
            for sid in holders:
                store = next(s for s in cluster.stores if s.store_id == sid)
                assert store.objects.exists(store.objects.raw_key(pid))
                assert store.objects.exists(store.objects.preproc_key(pid))
                assert store.has_train_label(pid)

    def test_replica_traffic_is_accounted(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        transfers = cluster.metrics.get("fabric_transfers_total")
        assert transfers.value(kind="replicate") == NUM_PHOTOS
        assert cluster.traffic_summary()["replicate"] > 0

    def test_replication_must_fit_fleet(self):
        with pytest.raises(ValueError):
            fresh_cluster(num_stores=2, replication=3)
        with pytest.raises(ValueError):
            fresh_cluster(replication=0)

    def test_degraded_fleet_underreplicates_not_fails(self, small_world):
        cluster = fresh_cluster()
        cluster.stores[1].fail()
        cluster.stores[2].fail()
        x, y = small_world.sample(4, 0, rng=np.random.default_rng(0))
        ids = cluster.ingest(x, train_labels=y)
        assert len(ids) == 4
        for pid in ids:
            assert cluster.replicas.holders(pid) == ["pipestore-0"]
        counter = cluster.metrics.get("durability_underreplicated_total")
        assert counter.value() == 4

    def test_reconcile_keeps_replica_copies(self, small_world):
        cluster, ids = loaded_cluster(small_world)
        for store in cluster.stores:
            assert cluster.reconcile(store) == []


class TestScrubAndRepairAcceptance:
    """Bit-rot on one replica: detected, repaired from another, 0 lost."""

    def _damage(self, cluster, seed):
        injector = FaultInjector([
            BitRot(at=1, store_id="pipestore-0", num_objects=4,
                   flips_per_object=3, seed=seed),
        ]).attach(cluster)
        cluster.network.send("probe-src", "probe-dst", 1, "tick")
        corrupted = list(injector.corrupted)
        injector.detach()
        return corrupted

    def test_rot_is_repaired_from_replica_zero_photos_lost(self, small_world):
        cluster, ids = loaded_cluster(small_world)
        corrupted = self._damage(cluster, seed=11)
        assert len(corrupted) == 4

        report = cluster.scrub_and_repair()
        assert sorted(key for _s, key in report.repaired) == sorted(
            key for _s, key in corrupted)
        assert report.corrupt_found == 4
        assert not report.unrecoverable

        # zero photos lost: every object on every holder verifies again
        clean = cluster.scrub_and_repair()
        assert clean.clean
        assert len(cluster.database) == NUM_PHOTOS
        for pid in ids:
            for sid in cluster.replicas.holders(pid):
                store = next(s for s in cluster.stores if s.store_id == sid)
                assert store.objects.verify(store.objects.raw_key(pid))
                assert store.objects.verify(store.objects.preproc_key(pid))
        repaired = cluster.metrics.get("durability_objects_repaired_total")
        assert repaired.value(store="pipestore-0") == 4
        transfers = cluster.metrics.get("fabric_transfers_total")
        assert transfers.value(kind="repair") == 4

    def test_repair_is_deterministic_under_fixed_seed(self, small_world):
        def run():
            cluster, _ = loaded_cluster(small_world)
            corrupted = self._damage(cluster, seed=23)
            report = cluster.scrub_and_repair()
            return corrupted, sorted(report.repaired), sorted(
                report.unrecoverable)

        assert run() == run()

    def test_unreplicated_rot_is_unrecoverable_not_silent(self, small_world):
        cluster = fresh_cluster(replication=1)
        x, y = small_world.sample(6, 0, rng=np.random.default_rng(2))
        cluster.ingest(x, train_labels=y)
        store = cluster.stores[0]
        key = store.objects.keys("raw/")[0]
        store.objects.corrupt_object(key, b"\xff" * 16)
        report = cluster.scrub_and_repair()
        assert report.unrecoverable == [("pipestore-0", key)]
        assert not report.repaired
        unrec = cluster.metrics.get("durability_objects_unrecoverable_total")
        assert unrec.value(store="pipestore-0") == 1

    def test_scrub_skips_down_stores(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        cluster.stores[2].fail()
        report = cluster.scrub_and_repair()
        assert report.stores_skipped == ["pipestore-2"]
        assert {s.store_id for s in report.scrubs} == {
            "pipestore-0", "pipestore-1"}


class TestCrashRecoveryWithReplicas:
    def test_primary_loss_promotes_replica_without_data_motion(
            self, small_world):
        cluster, ids = loaded_cluster(small_world)
        victims = cluster.database.ids_at("pipestore-0")
        bytes_before = cluster.network.total_bytes
        injector = FaultInjector([
            StoreCrash(at=1, store_id="pipestore-0")]).attach(cluster)
        cluster.network.send("probe-src", "probe-dst", 1, "tick")

        moved = cluster.reingest_orphans("pipestore-0")
        assert sorted(moved) == sorted(victims)
        for pid in victims:
            record = cluster.database.lookup(pid)
            assert record.location != "pipestore-0"
            assert cluster.replicas.primary(pid) == record.location
            # the crashed store keeps its (surviving) copy for later
            assert cluster.replicas.is_holder(pid, "pipestore-0")
        promoted = cluster.metrics.get("durability_replicas_promoted_total")
        assert promoted.value() == len(victims)
        # promotion changed pointers, not bytes: only the probe moved
        assert cluster.network.total_bytes == bytes_before + 1

        injector.detach()
        cluster.recover("pipestore-0")
        # the recovered store still replicates its old photos
        store = cluster.stores[0]
        for pid in victims:
            assert store.objects.exists(store.objects.raw_key(pid))
        assert cluster.scrub_and_repair().clean

    def test_crash_lost_media_is_restored_by_scrub(self, small_world):
        cluster, ids = loaded_cluster(small_world)
        store = cluster.stores[1]
        lost = cluster.replicas.photos_on("pipestore-1")[:3]
        for pid in lost:
            store.evict_photo(pid)  # media wiped, replica map still expects it
        report = cluster.scrub_and_repair()
        restored_keys = {key for _s, key in report.restored}
        assert restored_keys == {
            k for pid in lost
            for k in (store.objects.raw_key(pid),
                      store.objects.preproc_key(pid))
        }
        for pid in lost:
            assert store.objects.verify(store.objects.raw_key(pid))
            assert store.has_train_label(pid)
        assert cluster.scrub_and_repair().clean

    def test_finetune_trains_full_dataset_after_promotion(self, small_world):
        cluster, ids = loaded_cluster(small_world)
        cluster.stores[0].fail()
        cluster.reingest_orphans("pipestore-0")
        report = cluster.finetune(epochs=1)
        assert report.images_extracted == NUM_PHOTOS
        assert report.photos_deferred == 0
