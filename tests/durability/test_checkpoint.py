"""Checkpoint framing and full-cluster checkpoint/restore fidelity."""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.durability.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    FinetuneProgress,
    inspect_checkpoint,
    pack_arrays,
    read_frame,
    unpack_arrays,
    write_frame,
)
from repro.models.registry import tiny_model

NUM_PHOTOS = 18


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


def fresh_cluster(**kwargs):
    kwargs.setdefault("num_stores", 3)
    kwargs.setdefault("nominal_raw_bytes", 2048)
    kwargs.setdefault("replication", 2)
    return NDPipeCluster(factory, **kwargs)


def loaded_cluster(small_world, seed=3, **kwargs):
    cluster = fresh_cluster(**kwargs)
    x, y = small_world.sample(NUM_PHOTOS, 0, rng=np.random.default_rng(seed))
    ids = cluster.ingest(x, train_labels=y)
    return cluster, ids


class TestArrayPacking:
    def test_roundtrip_bit_exact(self):
        rng = np.random.default_rng(0)
        arrays = {
            "w": rng.normal(size=(3, 4)).astype(np.float32),
            "b": rng.normal(size=(4,)),
            "i": rng.integers(0, 100, size=(2, 2, 2)),
            "scalar": np.array(7.5),
        }
        out = unpack_arrays(pack_arrays(arrays))
        assert set(out) == set(arrays)
        for key, arr in arrays.items():
            assert out[key].dtype == arr.dtype
            assert out[key].shape == arr.shape
            assert np.array_equal(out[key], arr)

    def test_empty(self):
        assert unpack_arrays(pack_arrays({})) == {}

    def test_truncated_raises(self):
        blob = pack_arrays({"w": np.ones((4, 4))})
        with pytest.raises(CheckpointError):
            unpack_arrays(blob[:-10])

    def test_trailing_garbage_raises(self):
        blob = pack_arrays({"w": np.ones(3)})
        with pytest.raises(CheckpointError):
            unpack_arrays(blob + b"xx")


class TestFrame:
    def test_roundtrip(self):
        manifest = {"hello": [1, 2, 3], "nested": {"a": None}}
        blobs = [b"alpha", b"", b"\x00" * 1000]
        blob = write_frame(manifest, blobs)
        assert blob.startswith(CHECKPOINT_MAGIC)
        out_manifest, out_blobs = read_frame(blob)
        assert out_manifest == manifest
        assert out_blobs == blobs

    def test_bad_magic(self):
        with pytest.raises(CheckpointError, match="magic"):
            read_frame(b"XXXX" + b"\x00" * 32)

    def test_bit_flip_anywhere_fails_crc(self):
        blob = bytearray(write_frame({"k": "v"}, [b"payload"]))
        for pos in range(0, len(blob), max(1, len(blob) // 9)):
            damaged = bytearray(blob)
            damaged[pos] ^= 0x01
            with pytest.raises(CheckpointError):
                read_frame(bytes(damaged))

    def test_truncation_fails(self):
        blob = write_frame({"k": "v"}, [b"payload"])
        for cut in (3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CheckpointError):
                read_frame(blob[:cut])

    def test_unsupported_version(self):
        blob = bytearray(write_frame({}, []))
        blob[len(CHECKPOINT_MAGIC)] = 99
        import struct
        import zlib
        frame = bytes(blob[:-4])
        resealed = frame + struct.pack(">I", zlib.crc32(frame))
        with pytest.raises(CheckpointError, match="version"):
            read_frame(resealed)


class TestFinetuneProgress:
    def test_roundtrip(self):
        progress = FinetuneProgress(
            num_runs=3, epochs=2, next_run=1,
            run_plan=[{"s0": ["p1"]}, {"s0": ["p2"]}, {"s0": []}],
            report={"num_runs": 3}, relocate_lost=True,
        )
        clone = FinetuneProgress.from_dict(progress.to_dict())
        assert clone == progress
        assert not clone.finished_gathering
        assert FinetuneProgress(
            num_runs=2, epochs=1, next_run=2, run_plan=[{}, {}],
        ).finished_gathering


class TestClusterCheckpoint:
    def test_restore_reproduces_every_surface(self, small_world):
        cluster, ids = loaded_cluster(small_world)
        cluster.finetune(epochs=1, num_runs=2)
        cluster.offline_relabel()
        blob = cluster.checkpoint()

        clone = fresh_cluster()
        assert clone.restore(blob) is None

        assert clone.tuner.version == cluster.tuner.version
        for (ka, a), (kb, b) in zip(
                sorted(cluster.tuner.model.state_dict().items()),
                sorted(clone.tuner.model.state_dict().items())):
            assert ka == kb and np.array_equal(a, b)
        assert clone.database.snapshot_labels() == \
            cluster.database.snapshot_labels()
        assert clone.database.version_counts() == \
            cluster.database.version_counts()
        assert clone.replicas.to_dict() == cluster.replicas.to_dict()
        assert clone.journal_size == cluster.journal_size
        for orig, rest in zip(cluster.stores, clone.stores):
            assert rest.model_version == orig.model_version
            assert rest.objects.keys() == orig.objects.keys()
            assert rest.train_labels() == orig.train_labels()
            for key in orig.objects.keys():
                assert rest.objects.peek(key) == orig.objects.peek(key)
                assert rest.objects.stored_crc(key) == \
                    orig.objects.stored_crc(key)

        # the restored cluster keeps working end to end
        report = clone.finetune(epochs=1)
        assert report.images_extracted == NUM_PHOTOS
        assert clone.offline_relabel().photos_processed == NUM_PHOTOS

    def test_restore_preserves_stale_crcs(self, small_world):
        """Corruption that predates a checkpoint must survive restore, so
        a post-restore scrub still finds and repairs it."""
        cluster, _ = loaded_cluster(small_world)
        store = cluster.stores[0]
        key = store.objects.keys("raw/")[0]
        store.objects.corrupt_object(key, b"\x12" * 32)
        blob = cluster.checkpoint()

        clone = fresh_cluster()
        clone.restore(blob)
        assert not clone.stores[0].objects.verify(key)
        report = clone.scrub_and_repair()
        assert report.repaired == [("pipestore-0", key)]
        assert clone.scrub_and_repair().clean

    def test_corrupt_checkpoint_is_rejected(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        blob = bytearray(cluster.checkpoint())
        blob[len(blob) // 2] ^= 0x80
        clone = fresh_cluster()
        with pytest.raises(CheckpointError):
            clone.restore(bytes(blob))

    def test_restore_validates_fleet_shape(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        blob = cluster.checkpoint()
        wrong = NDPipeCluster(factory, num_stores=2, nominal_raw_bytes=2048)
        with pytest.raises(CheckpointError, match="stores"):
            wrong.restore(blob)

    def test_inspect_summarises_without_restoring(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        cluster.finetune(epochs=1)
        info = inspect_checkpoint(cluster.checkpoint())
        assert info["tuner_version"] == 1
        assert info["num_stores"] == 3
        assert info["store_ids"] == [s.store_id for s in cluster.stores]
        assert info["photos"] == NUM_PHOTOS
        assert info["replication"] == 2
        assert info["pending_finetune"] is None
        assert info["blob_bytes"] > 0

    def test_checkpoint_metrics(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        blob = cluster.checkpoint()
        assert cluster.metrics.get("durability_checkpoints_total").value() == 1
        assert cluster.metrics.get(
            "durability_checkpoint_bytes").value() == len(blob)

    def test_checkpoint_does_not_perturb_io_accounting(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        before = [s.objects.bytes_read for s in cluster.stores]
        cluster.checkpoint()
        assert [s.objects.bytes_read for s in cluster.stores] == before

    def test_mid_finetune_checkpoint_reports_pending(self, small_world):
        cluster, _ = loaded_cluster(small_world)
        sink = {}
        cluster.finetune(epochs=1, num_runs=3,
                         checkpoint_sink=lambda r, b: sink.__setitem__(r, b))
        assert sorted(sink) == [0, 1, 2]
        info = inspect_checkpoint(sink[0])
        assert info["pending_finetune"] == {"next_run": 1, "num_runs": 3}
        progress = fresh_cluster().restore(sink[0])
        assert progress is not None
        assert progress.next_run == 1
        assert not progress.finished_gathering
