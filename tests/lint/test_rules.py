"""Fixture tests: every rule fires with its exact ID and line numbers."""

from pathlib import Path

from repro.lint import LintConfig, LintEngine

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name):
    engine = LintEngine(LintConfig(manifest_path=None))
    return engine.run([FIXTURES / name])


def test_nd001_determinism_exact_sites():
    findings = lint_fixture("bad_nd001.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND001", 9),   # time.time()
        ("ND001", 13),  # random.random()
        ("ND001", 17),  # os.urandom()
    ]


def test_nd002_accounting_exact_sites():
    findings = lint_fixture("bad_nd002.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND002", 5),  # .peek()
        ("ND002", 9),  # .iter_items()
    ]


def test_nd003_guarded_by_exact_sites():
    findings = lint_fixture("bad_nd003.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND003", 20),  # decorator-declared attr, unlocked read
        ("ND003", 23),  # comment-declared attr, unlocked write
    ]
    assert "read" in findings[0].message
    assert "written" in findings[1].message


def test_nd004_metric_hygiene_exact_sites():
    findings = lint_fixture("bad_nd004.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND004", 5),  # CamelCase family name
        ("ND004", 7),  # duplicate registration site
        ("ND004", 8),  # non-literal family name
    ]
    assert "already registered" in findings[1].message


def test_nd005_retry_discipline_exact_site():
    findings = lint_fixture("bad_nd005.py")
    assert [(f.rule, f.line) for f in findings] == [("ND005", 5)]


def test_clean_fixture_has_no_findings():
    assert lint_fixture("good_clean.py") == []


def test_inline_allow_suppresses_with_justification(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "def ping(network):\n"
        "    # ndlint: fire-and-forget -- best-effort hint, loss is fine\n"
        "    network.send('a', 'b', 1, 'hint')\n"
    )
    engine = LintEngine(LintConfig(manifest_path=None))
    assert engine.run([target]) == []


def test_bare_allow_marker_is_nd000_and_suppresses_nothing(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "def ping(network):\n"
        "    network.send('a', 'b', 1, 'hint')  # ndlint: allow[ND005]\n"
    )
    engine = LintEngine(LintConfig(manifest_path=None))
    findings = engine.run([target])
    assert sorted(f.rule for f in findings) == ["ND000", "ND005"]
    nd000 = next(f for f in findings if f.rule == "ND000")
    assert "justification" in nd000.message


def test_syntax_error_is_nd000(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    engine = LintEngine(LintConfig(manifest_path=None))
    findings = engine.run([target])
    assert [f.rule for f in findings] == ["ND000"]
