"""Interprocedural tier (ND006-ND010): fixtures + gate mutation tests.

The mutation tests are the acceptance criterion for the whole tier:
copy a *real* production module, delete one fencing check or one counter
update, and prove the lint gate goes red — so the invariants cannot be
silently weakened by a future edit.
"""

import json
from pathlib import Path

from repro.lint import LintConfig, LintEngine

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src" / "repro"


def lint_paths(*paths):
    engine = LintEngine(LintConfig(manifest_path=None))
    return engine.run([Path(p) for p in paths])


def lint_fixture(name):
    return lint_paths(FIXTURES / name)


# -- ND006 conservation -------------------------------------------------------
def test_nd006_conservation_exact_sites():
    findings = lint_fixture("bad_nd006.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND006", 11),  # offer(): shed branch never settles the ledger
        ("ND006", 18),  # reset_books(): rebind outside __init__
        ("ND006", 21),  # bulk_admit(): non-constant delta (offered)
        ("ND006", 22),  # bulk_admit(): non-constant delta (admitted)
    ]
    assert "unbalanced" in findings[0].message
    assert "rebound outside __init__" in findings[1].message
    assert "non-constant delta" in findings[2].message


def test_nd006_group_mode_accepts_branch_terminal_counters(tmp_path):
    """Group mode: each completing path settles the same (lhs, rhs) pair
    even though no single path touches every counter."""
    target = tmp_path / "report.py"
    target.write_text(
        '@conserves("offered == completed + expired", mode="group")\n'
        "class Report:\n"
        "    def __init__(self):\n"
        "        self.offered = 0\n"
        "        self.completed = 0\n"
        "        self.expired = 0\n"
        "\n"
        "    def resolve(self, ok):\n"
        "        if ok:\n"
        "            self.completed += 1\n"
        "        else:\n"
        "            self.expired += 1\n"
    )
    assert lint_paths(target) == []


# -- ND007 epoch fencing ------------------------------------------------------
def test_nd007_fence_dominance_exact_sites():
    findings = lint_fixture("bad_nd007.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND007", 17),  # install(): mutation precedes the fence
        ("ND007", 24),  # hot_swap(): no fence on any path
    ]
    assert "no dominating self._fence()" in findings[0].message


# -- ND008 blocking-under-lock ------------------------------------------------
def test_nd008_blocking_under_lock_exact_sites():
    findings = lint_fixture("bad_nd008.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND008", 14),  # direct time.sleep under the lock
        ("ND008", 18),  # transitively via self._flush()
    ]
    assert "blocks while holding self._lock" in findings[0].message
    assert "via BadCritical._flush" in findings[1].message


# -- ND009 exception-safe accounting -----------------------------------------
def test_nd009_try_body_accounting_exact_sites():
    findings = lint_fixture("bad_nd009.py")
    assert [(f.rule, f.line) for f in findings] == [
        ("ND009", 16),  # conserved counter inside the try body
        ("ND009", 17),  # metric .inc() inside the try body
    ]
    assert "conserved counter 'done'" in findings[0].message
    assert ".inc() metric update" in findings[1].message


# -- ND010 fastpath equivalence manifest --------------------------------------
_FASTPATH = (
    "from dataclasses import dataclass\n"
    "\n"
    "@dataclass\n"
    "class FastPathFlags:\n"
    "    zero_copy: bool = True\n"
)
_USER = (
    "def encode(flags, blob):\n"
    "    if flags.zero_copy:\n"
    "        return memoryview(blob)\n"
    "    return bytes(blob)\n"
)


def _fastpath_tree(tmp_path, manifest=None):
    (tmp_path / "fastpath.py").write_text(_FASTPATH)
    (tmp_path / "user.py").write_text(_USER)
    config = LintConfig(manifest_path=None)
    if manifest is not None:
        manifest_file = tmp_path / "fastpath_equivalence.json"
        manifest_file.write_text(json.dumps(manifest))
        config = LintConfig(manifest_path=None,
                            fastpath_manifest_path=manifest_file)
    engine = LintEngine(config)
    return engine.run([tmp_path / "fastpath.py", tmp_path / "user.py"])


def test_nd010_unlisted_module_and_missing_tests(tmp_path):
    findings = _fastpath_tree(tmp_path)  # no manifest at all
    assert [(f.rule, f.line) for f in findings] == [
        ("ND010", 2),  # user.py:2 reads the flag, module not listed
        ("ND010", 2),  # and the flag has no equivalence tests
    ]
    assert "missing from fastpath_equivalence.json" in findings[0].message
    assert "no equivalence tests" in findings[1].message


def test_nd010_listed_module_still_needs_tests(tmp_path):
    manifest = {"flags": {"zero_copy": {"modules": ["user"], "tests": []}}}
    findings = _fastpath_tree(tmp_path, manifest)
    assert [f.rule for f in findings] == ["ND010"]
    assert "no equivalence tests" in findings[0].message


def test_nd010_complete_manifest_is_clean(tmp_path):
    manifest = {"flags": {"zero_copy": {
        "modules": ["user"],
        "tests": ["tests/test_equivalence.py::test_zero_copy"]}}}
    assert _fastpath_tree(tmp_path, manifest) == []


def test_nd010_silent_when_fastpath_not_in_linted_set(tmp_path):
    (tmp_path / "user.py").write_text(_USER)
    assert lint_paths(tmp_path / "user.py") == []


# -- gate mutation tests (the acceptance criterion) ---------------------------
def test_real_failover_module_is_fence_clean(tmp_path):
    source = (SRC / "ha" / "failover.py").read_text()
    copy = tmp_path / "failover.py"
    copy.write_text(source)
    assert [f for f in lint_paths(copy) if f.rule == "ND007"] == []


def test_deleting_the_promotion_fence_fails_the_gate(tmp_path):
    source = (SRC / "ha" / "failover.py").read_text()
    assert "self._check_promotable()\n" in source
    mutated = source.replace("        self._check_promotable()\n", "", 1)
    copy = tmp_path / "failover.py"
    copy.write_text(mutated)
    findings = [f for f in lint_paths(copy) if f.rule == "ND007"]
    assert findings, "deleting the fence check must trip ND007"
    assert any("no dominating self._check_promotable()" in f.message
               for f in findings)


def test_real_protocol_module_is_conservation_clean(tmp_path):
    source = (SRC / "serving" / "protocol.py").read_text()
    copy = tmp_path / "protocol.py"
    copy.write_text(source)
    assert [f for f in lint_paths(copy) if f.rule == "ND006"] == []


def test_deleting_a_credit_counter_update_fails_the_gate(tmp_path):
    source = (SRC / "serving" / "protocol.py").read_text()
    assert "self.in_flight += 1\n" in source
    mutated = source.replace("self.in_flight += 1", "pass", 1)
    copy = tmp_path / "protocol.py"
    copy.write_text(mutated)
    findings = [f for f in lint_paths(copy) if f.rule == "ND006"]
    assert findings, "deleting the in_flight update must trip ND006"
    assert "granted == in_flight + available" in findings[0].message


def test_deleting_a_stream_outcome_counter_fails_the_gate(tmp_path):
    """The group-mode ledger: dropping one terminal counter makes the
    completing paths disagree on the settled delta pair."""
    protocol = (SRC / "serving" / "protocol.py").read_text()
    stream = (SRC / "serving" / "stream.py").read_text()
    assert "self.report.expired += 1\n" in stream
    mutated = stream.replace("self.report.expired += 1", "pass", 1)
    (tmp_path / "protocol.py").write_text(protocol)
    (tmp_path / "stream.py").write_text(mutated)
    findings = [f for f in lint_paths(tmp_path / "protocol.py",
                                      tmp_path / "stream.py")
                if f.rule == "ND006"]
    assert findings, "deleting a terminal counter must trip ND006"
    assert any("inconsistent deltas" in f.message for f in findings)
