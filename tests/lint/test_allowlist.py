"""Allow-marker edge cases: multi-rule, string literals, unused markers."""

from repro.lint import LintConfig, LintEngine
from repro.lint.allowlist import parse_markers


def lint_source(tmp_path, source, **config):
    target = tmp_path / "mod.py"
    target.write_text(source)
    engine = LintEngine(LintConfig(manifest_path=None, **config))
    return engine.run([target])


def test_multi_rule_marker_suppresses_both_rules(tmp_path):
    # one line that trips ND001 (wall clock) and ND005 (raw send)
    findings = lint_source(
        tmp_path,
        "import time\n"
        "\n"
        "def ping(network):\n"
        "    network.send('a', 'b', time.time(), 'hint')"
        "  # ndlint: allow[ND001,ND005] -- demo payload, loss is fine\n",
    )
    assert findings == []


def test_multi_rule_marker_covers_the_next_line_when_comment_only(tmp_path):
    findings = lint_source(
        tmp_path,
        "import time\n"
        "\n"
        "def ping(network):\n"
        "    # ndlint: allow[ND001,ND005] -- demo payload, loss is fine\n"
        "    network.send('a', 'b', time.time(), 'hint')\n",
    )
    assert findings == []


def test_marker_on_method_of_decorated_class_suppresses_nd006(tmp_path):
    # interprocedural findings anchor on the def line even when the
    # class carries contract decorators; the marker lands there too
    findings = lint_source(
        tmp_path,
        '@conserves("offered == admitted + shed")\n'
        "class Ledger:\n"
        "    def __init__(self):\n"
        "        self.offered = self.admitted = self.shed = 0\n"
        "\n"
        "    # ndlint: allow[ND006,ND009] -- demo ledger, books settle"
        " offline\n"
        "    def offer(self, ok):\n"
        "        self.offered += 1\n",
    )
    assert [f.rule for f in findings if f.rule != "ND000"] == []


def test_marker_inside_multiline_string_suppresses_nothing(tmp_path):
    # the marker-shaped text is documentation inside a literal: the send
    # on the next line must still be reported
    findings = lint_source(
        tmp_path,
        "DOC = '''usage:\n"
        "# ndlint: allow[ND005] -- quoted example, not a real marker\n"
        "'''\n"
        "\n"
        "def ping(network):\n"
        "    network.send('a', 'b', 1, 'hint')\n",
        flag_unused_markers=False,
    )
    assert [(f.rule, f.line) for f in findings] == [("ND005", 6)]


def test_parse_markers_skips_string_literals_directly():
    markers, problems = parse_markers(
        "mod.py",
        "DOC = '''\n"
        "# ndlint: allow[ND005] -- quoted\n"
        "'''\n"
        "x = 1  # ndlint: allow[ND002] -- a real one\n",
    )
    assert [(m.line, m.rules) for m in markers] == [(4, ("ND002",))]
    assert problems == []


def test_unused_marker_raises_nd000(tmp_path):
    # justified marker for a rule that never fires on the covered line:
    # the suppression has rotted and must be deleted
    findings = lint_source(
        tmp_path,
        "def quiet():\n"
        "    return 1  # ndlint: allow[ND005] -- nothing to suppress\n",
    )
    assert [(f.rule, f.line) for f in findings] == [("ND000", 2)]
    assert "never fired" in findings[0].message


def test_partially_used_multi_rule_marker_flags_the_dead_rule(tmp_path):
    # ND005 fires and is suppressed, but ND001 in the marker never does:
    # per-rule granularity, so a stale rule id cannot ride along forever
    findings = lint_source(
        tmp_path,
        "def ping(network):\n"
        "    network.send('a', 'b', 1, 'hint')"
        "  # ndlint: allow[ND001,ND005] -- loss is fine\n",
    )
    assert [(f.rule, f.line) for f in findings] == [("ND000", 2)]
    assert "ND001 never fired" in findings[0].message


def test_unused_marker_check_can_be_disabled(tmp_path):
    findings = lint_source(
        tmp_path,
        "def quiet():\n"
        "    return 1  # ndlint: allow[ND005] -- nothing to suppress\n",
        flag_unused_markers=False,
    )
    assert findings == []
