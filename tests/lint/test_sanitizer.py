"""Runtime sanitizer: lock-order cycles and unguarded cross-thread writes."""

import threading

from repro.lint import SANITIZER, SanitizerError, guarded_by, sanitized

import pytest


def run_in_thread(fn):
    errors = []

    def wrapped():
        try:
            fn()
        except BaseException as exc:  # surfaced in the caller
            errors.append(exc)

    thread = threading.Thread(target=wrapped)
    thread.start()
    thread.join()
    if errors:
        raise errors[0]


@guarded_by("_lock", "value")
class GuardedBox:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0


def test_lock_order_cycle_detected_across_threads():
    with sanitized() as san:
        lock_a = san.track_lock(threading.Lock(), "Store._lock")
        lock_b = san.track_lock(threading.Lock(), "Tuner._lock")

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        run_in_thread(forward)
        run_in_thread(backward)
        violations = san.violations
        assert [v.kind for v in violations] == ["lock-order-cycle"]
        assert "Store._lock" in violations[0].detail
        assert "Tuner._lock" in violations[0].detail
        with pytest.raises(SanitizerError):
            san.assert_clean()


def test_consistent_lock_order_is_clean():
    with sanitized() as san:
        lock_a = san.track_lock(threading.Lock(), "Store._lock")
        lock_b = san.track_lock(threading.Lock(), "Tuner._lock")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert san.violations == []


def test_unguarded_cross_thread_write_detected():
    with sanitized() as san:
        box = GuardedBox()

        def write_without_lock():
            box.value = 1

        run_in_thread(write_without_lock)
        violations = san.violations
        assert [v.kind for v in violations] == ["unguarded-write"]
        assert "GuardedBox.value" in violations[0].detail


def test_locked_or_owner_thread_writes_are_clean():
    with sanitized() as san:
        box = GuardedBox()
        box.value = 1  # the constructing thread may write freely

        def write_with_lock():
            with box._lock:
                box.value = 2

        run_in_thread(write_with_lock)
        assert san.violations == []
        assert box.value == 2


def test_guarded_lock_is_wrapped_and_reentrant_rlock_works():
    with sanitized() as san:
        box = GuardedBox()
        assert type(box._lock).__name__ == "TrackedLock"
        rlock = san.track_lock(threading.RLock(), "Injector._lock")
        with rlock:
            with rlock:  # reentrant acquire adds no edges
                pass
        assert san.violations == []


def test_raise_mode_raises_at_the_violation_site():
    with sanitized(mode="raise"):
        box = GuardedBox()

        def write_without_lock():
            box.value = 1

        with pytest.raises(SanitizerError, match="unguarded-write"):
            run_in_thread(write_without_lock)


def test_sanitized_scope_restores_global_state():
    before = (SANITIZER.enabled, SANITIZER.mode, SANITIZER.violations)
    with sanitized(mode="record") as san:
        assert san is SANITIZER and san.enabled
    assert (SANITIZER.enabled, SANITIZER.mode,
            SANITIZER.violations) == before
