"""Runtime sanitizer: lock-order cycles and unguarded cross-thread writes."""

import threading

from repro.lint import SANITIZER, SanitizerError, guarded_by, sanitized
from repro.lint.sanitizer import VectorClock

import pytest


class FreeLock:
    """A lock-shaped object that never blocks.

    Lets tests stage the exact interleaving a real deadlock would need
    (both threads holding their first lock before either releases) —
    something real mutexes cannot reproduce without hanging the suite.
    """

    def acquire(self, blocking=True, timeout=-1):
        return True

    def release(self):
        pass


def run_in_thread(fn):
    errors = []

    def wrapped():
        try:
            fn()
        except BaseException as exc:  # surfaced in the caller
            errors.append(exc)

    thread = threading.Thread(target=wrapped)
    thread.start()
    thread.join()
    if errors:
        raise errors[0]


@guarded_by("_lock", "value")
class GuardedBox:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0


def test_lock_order_cycle_detected_across_threads():
    with sanitized() as san:
        lock_a = san.track_lock(threading.Lock(), "Store._lock")
        lock_b = san.track_lock(threading.Lock(), "Tuner._lock")

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        run_in_thread(forward)
        run_in_thread(backward)
        violations = san.violations
        assert [v.kind for v in violations] == ["lock-order-cycle"]
        assert "Store._lock" in violations[0].detail
        assert "Tuner._lock" in violations[0].detail
        with pytest.raises(SanitizerError):
            san.assert_clean()


def test_consistent_lock_order_is_clean():
    with sanitized() as san:
        lock_a = san.track_lock(threading.Lock(), "Store._lock")
        lock_b = san.track_lock(threading.Lock(), "Tuner._lock")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert san.violations == []


def test_unguarded_cross_thread_write_detected():
    with sanitized() as san:
        box = GuardedBox()

        def write_without_lock():
            box.value = 1

        run_in_thread(write_without_lock)
        violations = san.violations
        assert [v.kind for v in violations] == ["unguarded-write"]
        assert "GuardedBox.value" in violations[0].detail


def test_locked_or_owner_thread_writes_are_clean():
    with sanitized() as san:
        box = GuardedBox()
        box.value = 1  # the constructing thread may write freely

        def write_with_lock():
            with box._lock:
                box.value = 2

        run_in_thread(write_with_lock)
        assert san.violations == []
        assert box.value == 2


def test_guarded_lock_is_wrapped_and_reentrant_rlock_works():
    with sanitized() as san:
        box = GuardedBox()
        assert type(box._lock).__name__ == "TrackedLock"
        rlock = san.track_lock(threading.RLock(), "Injector._lock")
        with rlock:
            with rlock:  # reentrant acquire adds no edges
                pass
        assert san.violations == []


def test_raise_mode_raises_at_the_violation_site():
    with sanitized(mode="raise"):
        box = GuardedBox()

        def write_without_lock():
            box.value = 1

        with pytest.raises(SanitizerError, match="unguarded-write"):
            run_in_thread(write_without_lock)


def test_cycle_from_serialized_acquisitions_is_hb_ordered():
    """One thread trying both orders back to back: a real lint finding,
    but the vector clocks prove the two acquisitions never raced."""
    with sanitized() as san:
        lock_a = san.track_lock(threading.Lock(), "Store._lock")
        lock_b = san.track_lock(threading.Lock(), "Tuner._lock")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        violations = san.violations
        assert [v.kind for v in violations] == ["lock-order-cycle"]
        assert "[hb=ordered]" in violations[0].detail


def test_cycle_from_racing_threads_is_hb_concurrent():
    """The deadlock interleaving proper: both threads hold their first
    lock before either releases, so no hand-off orders their clocks."""
    with sanitized() as san:
        lock_a = san.track_lock(FreeLock(), "Store._lock")
        lock_b = san.track_lock(FreeLock(), "Tuner._lock")

        # both threads stay alive until the end: sequential short-lived
        # threads can reuse an OS thread id, which would fold the two
        # clocks into one and hide the race entirely
        forward_done = threading.Event()
        backward_done = threading.Event()

        def forward():
            lock_a.acquire()
            lock_b.acquire()
            forward_done.set()
            backward_done.wait(timeout=5)

        def backward():
            forward_done.wait(timeout=5)
            lock_b.acquire()
            lock_a.acquire()
            backward_done.set()

        threads = [threading.Thread(target=forward),
                   threading.Thread(target=backward)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()   # neither thread ever releases, so the
                            # backward thread's clock stays disjoint
        violations = san.violations
        assert [v.kind for v in violations] == ["lock-order-cycle"]
        assert "[hb=concurrent]" in violations[0].detail


def test_lock_handoff_orders_vector_clocks():
    """Release -> acquire is the happens-before edge the clocks model."""
    with sanitized() as san:
        lock = san.track_lock(threading.Lock(), "Store._lock")
        with lock:
            pass
        first = san.clocks.snapshot(threading.get_ident())

        def other():
            with lock:
                pass
            second = san.clocks.snapshot(threading.get_ident())
            assert VectorClock.ordered(first, second)
            # and strictly: the second acquisition saw the first
            assert first != second

        run_in_thread(other)


def test_vector_clock_ordered_predicate():
    assert VectorClock.ordered({1: 1}, {1: 2, 2: 1})
    assert VectorClock.ordered({1: 2, 2: 1}, {1: 1})  # either direction
    assert not VectorClock.ordered({1: 2}, {2: 2})    # concurrent
    assert not VectorClock.ordered(None, {1: 1})      # unknown


def test_check_blocking_flags_sends_under_a_tracked_lock():
    with sanitized() as san:
        lock = san.track_lock(threading.Lock(), "PipeStore._lock")
        san.check_blocking("fabric send store-0 -> tuner")
        assert san.violations == []  # lock not held: fine
        with lock:
            san.check_blocking("fabric send store-0 -> tuner")
        violations = san.violations
        assert [v.kind for v in violations] == ["blocking-under-lock"]
        assert "PipeStore._lock" in violations[0].detail
        assert "fabric send store-0 -> tuner" in violations[0].detail


def test_check_blocking_is_inert_when_disabled():
    SANITIZER.disable()
    SANITIZER.check_blocking("fabric send a -> b")
    assert SANITIZER.violations == []


def test_fabric_send_cross_checks_nd008_at_runtime():
    from repro.core.fabric import NetworkFabric

    with sanitized() as san:
        fabric = NetworkFabric()
        lock = san.track_lock(threading.Lock(), "AdmissionQueue._lock")
        fabric.send("a", "b", 128, "features")
        assert san.violations == []  # unlocked send: the common case
        fabric.send("a", "a", 128, "features")  # local handoff never blocks
        assert san.violations == []
        with lock:
            fabric.send("a", "b", 64, "features")
        violations = san.drain()
        assert [v.kind for v in violations] == ["blocking-under-lock"]
        assert "AdmissionQueue._lock" in violations[0].detail


def test_nemesis_surfaces_sanitizer_violations_as_invariants():
    from repro.ha import InvariantViolation, NemesisHarness
    from repro.lint.sanitizer import Violation

    harness = NemesisHarness(seed=11, steps=2, num_stores=2,
                             photos_per_step=2)
    with sanitized() as san:
        harness.check_invariants(step=0)  # clean sanitizer: no-op
        san.record(Violation(kind="blocking-under-lock",
                             detail="fabric send t -> s while holding "
                                    "PipeStore._lock"))
        with pytest.raises(InvariantViolation, match="blocking-under-lock"):
            harness.check_invariants(step=1)
        assert san.violations == []  # drained into the violation


def test_sanitized_scope_restores_global_state():
    before = (SANITIZER.enabled, SANITIZER.mode, SANITIZER.violations)
    with sanitized(mode="record") as san:
        assert san is SANITIZER and san.enabled
    assert (SANITIZER.enabled, SANITIZER.mode,
            SANITIZER.violations) == before
