"""The ``repro lint`` command: exit codes, report formats, the manifest."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import LintEngine, package_root

FIXTURES = Path(__file__).parent / "fixtures"


def test_shipped_tree_is_lint_clean(capsys):
    assert main(["lint"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_seeded_fixtures_fail_with_rule_ids_and_locations(capsys):
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    for rule in ("ND001", "ND002", "ND003", "ND004", "ND005"):
        assert rule in out
    # every finding line pins a file:line:col location
    assert f"{FIXTURES / 'bad_nd001.py'}:9:" in out


def test_json_report_is_written_even_on_failure(tmp_path, capsys):
    report_path = tmp_path / "lint-report.json"
    code = main(["lint", str(FIXTURES), "--format", "json",
                 "--out", str(report_path)])
    capsys.readouterr()
    assert code == 1
    report = json.loads(report_path.read_text())
    assert report["clean"] is False
    assert report["count"] == len(report["findings"]) > 0
    rules = {f["rule"] for f in report["findings"]}
    assert {"ND001", "ND002", "ND003", "ND004", "ND005"} <= rules
    for finding in report["findings"]:
        assert finding["line"] >= 1 and finding["path"]


def test_clean_tree_json_report(capsys):
    assert main(["lint", str(package_root()), "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"clean": True, "count": 0, "findings": []}


def test_manifest_is_current():
    """obs/METRICS.md matches what --update-manifest would regenerate."""
    engine = LintEngine()
    engine.run([package_root()])
    manifest = engine.config.manifest_path
    assert manifest.is_file()
    assert manifest.read_text() == engine.render_manifest()
