"""The ``repro lint`` command: exit codes, report formats, the manifest."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import LintEngine, package_root

FIXTURES = Path(__file__).parent / "fixtures"


def test_shipped_tree_is_lint_clean(capsys):
    assert main(["lint"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_seeded_fixtures_fail_with_rule_ids_and_locations(capsys):
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    for rule in ("ND001", "ND002", "ND003", "ND004", "ND005",
                 "ND006", "ND007", "ND008", "ND009"):
        assert rule in out
    # every finding line pins a file:line:col location
    assert f"{FIXTURES / 'bad_nd001.py'}:9:" in out
    assert f"{FIXTURES / 'bad_nd008.py'}:14:" in out


def test_json_report_is_written_even_on_failure(tmp_path, capsys):
    report_path = tmp_path / "lint-report.json"
    code = main(["lint", str(FIXTURES), "--format", "json",
                 "--out", str(report_path)])
    capsys.readouterr()
    assert code == 1
    report = json.loads(report_path.read_text())
    assert report["clean"] is False
    assert report["count"] == len(report["findings"]) > 0
    rules = {f["rule"] for f in report["findings"]}
    assert {"ND001", "ND002", "ND003", "ND004", "ND005"} <= rules
    for finding in report["findings"]:
        assert finding["line"] >= 1 and finding["path"]


def test_clean_tree_json_report(capsys):
    assert main(["lint", str(package_root()), "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"clean": True, "count": 0, "findings": []}


def test_manifest_is_current():
    """obs/METRICS.md matches what --update-manifest would regenerate."""
    engine = LintEngine()
    engine.run([package_root()])
    manifest = engine.config.manifest_path
    assert manifest.is_file()
    assert manifest.read_text() == engine.render_manifest()


def test_fastpath_manifest_is_current():
    """fastpath_equivalence.json lists every flag-gated module and keeps
    a non-empty equivalence-test set per flag."""
    engine = LintEngine()
    engine.run([package_root()])
    manifest = engine.config.fastpath_manifest_path
    assert manifest.is_file()
    assert manifest.read_text() == engine.render_fastpath_manifest()
    data = json.loads(manifest.read_text())
    for flag, entry in data["flags"].items():
        assert entry["modules"], flag
        assert entry["tests"], f"flag {flag} has no equivalence tests"


def test_check_manifests_gate_passes_on_the_shipped_tree(capsys):
    assert main(["lint", "--check-manifests"]) == 0
    capsys.readouterr()


def test_shipped_baseline_is_empty_and_current(capsys):
    ledger = Path(__file__).parents[2] / "lint-baseline.json"
    assert ledger.is_file()
    assert json.loads(ledger.read_text())["findings"] == {}
    assert main(["lint", "--baseline", str(ledger)]) == 0
    capsys.readouterr()


def test_update_baseline_then_rerun_is_green(tmp_path, capsys):
    ledger = tmp_path / "baseline.json"
    assert main(["lint", str(FIXTURES), "--update-baseline",
                 "--baseline", str(ledger)]) == 0
    capsys.readouterr()
    recorded = json.loads(ledger.read_text())["findings"]
    assert recorded  # the seeded fixtures all fingerprinted
    # the same findings are now tolerated, not reported
    assert main(["lint", str(FIXTURES), "--baseline", str(ledger)]) == 0
    captured = capsys.readouterr()
    assert "tolerated" in captured.err
    assert "0 findings" in captured.out


def test_baseline_does_not_tolerate_new_findings(tmp_path, capsys):
    ledger = tmp_path / "baseline.json"
    clean = FIXTURES / "good_clean.py"
    assert main(["lint", str(clean), "--update-baseline",
                 "--baseline", str(ledger)]) == 0
    # a finding absent from the ledger still fails the gate
    assert main(["lint", str(FIXTURES / "bad_nd005.py"),
                 "--baseline", str(ledger)]) == 1
    out = capsys.readouterr().out
    assert "ND005" in out


def test_baseline_reports_resolved_entries(tmp_path, capsys):
    ledger = tmp_path / "baseline.json"
    assert main(["lint", str(FIXTURES / "bad_nd005.py"),
                 "--update-baseline", "--baseline", str(ledger)]) == 0
    capsys.readouterr()
    # the "fixed" tree no longer produces the baselined finding: the
    # run stays green but nudges the author to re-record the ledger
    assert main(["lint", str(FIXTURES / "good_clean.py"),
                 "--baseline", str(ledger)]) == 0
    assert "resolved" in capsys.readouterr().err
