"""ND006 fixture: a conservation law broken three different ways."""


@conserves("offered == admitted + shed")  # noqa: F821 — parsed, not run
class LeakyLedger:
    def __init__(self):
        self.offered = 0
        self.admitted = 0
        self.shed = 0

    def offer(self, ok):
        self.offered += 1
        if ok:
            self.admitted += 1
        return ok  # the shed branch never settles: offered leaks

    def reset_books(self):
        self.offered = 0  # rebind outside __init__ defeats the proof

    def bulk_admit(self, n):
        self.offered += n  # non-constant delta defeats the proof
        self.admitted += n
