"""ND009 fixture: accounting inside a try body skipped by a caught fault."""


@conserves("offered == done + failed")  # noqa: F821 — parsed, not run
class FragileBooks:
    def __init__(self, metrics):
        self.offered = 0
        self.done = 0
        self.failed = 0
        self.m = metrics

    def settle(self, work):
        self.offered += 1
        try:
            work()
            self.done += 1        # conserved counter inside try: flagged
            self.m.settled.inc()  # metric update inside try: flagged
        except RuntimeError:
            self.failed += 1      # handler, not try body: fine
