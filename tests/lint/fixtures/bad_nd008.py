"""ND008 fixture: blocking work reachable inside a lock region."""

import threading
import time


class BadCritical:
    def __init__(self):
        self._lock = threading.Lock()
        self.flushed = 0

    def direct(self):
        with self._lock:
            time.sleep(0.1)  # blocking primitive under the lock

    def transitive(self):
        with self._lock:
            self._flush()  # reaches time.sleep through the call graph

    def unlocked(self):
        self._flush()  # fine: no lock held

    def _flush(self):
        time.sleep(0.2)
        self.flushed += 1
