"""ND002 fixture: raw object reads that bypass workload accounting."""


def read_raw(store, key):
    return store.objects.peek(key)


def walk(store):
    return list(store.objects.iter_items())
