"""Clean fixture: every ndlint invariant honoured."""

import threading

from repro.lint import guarded_by


@guarded_by("_lock", "entries")
class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []

    def add(self, entry):
        with self._lock:
            self.entries.append(entry)


def replicate(network, retry, call_with_retry):
    call_with_retry(lambda: network.send("a", "b", 64, "replica"), retry)
