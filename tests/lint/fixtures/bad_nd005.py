"""ND005 fixture: a fabric transfer with no retry protection."""


def announce(network, src, dst):
    network.send(src, dst, 128, "model-full")
