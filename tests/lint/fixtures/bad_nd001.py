"""ND001 fixture: direct wall-clock and entropy reads."""

import os
import random
import time


def stamp():
    return time.time()


def jitter():
    return random.random()


def token():
    return os.urandom(8)
