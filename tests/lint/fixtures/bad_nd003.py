"""ND003 fixture: guarded attrs touched outside their lock."""

import threading

from repro.lint import guarded_by


@guarded_by("_lock", "items")
class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []
        self.hits = 0  # guarded by: _lock

    def add_locked(self, item):
        with self._lock:
            self.items.append(item)

    def add_unlocked(self, item):
        self.items.append(item)

    def bump(self):
        self.hits += 1
