"""ND004 fixture: bad metric family names and duplicate registration."""


def register_all(metrics, suffix):
    metrics.counter("BadCamelName", "not snake case")
    metrics.counter("dup_family_total", "first site")
    metrics.counter("dup_family_total", "second site")
    metrics.gauge("prefix_" + suffix, "computed name")
