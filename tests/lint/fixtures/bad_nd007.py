"""ND007 fixture: fenced state mutated with no dominating fence check."""


@fenced_by("_fence", "model", "version")  # noqa: F821 — parsed, not run
class BadStore:
    def __init__(self):
        self.model = None
        self.version = 0
        self.accepted_epoch = -1

    def _fence(self, epoch):
        if epoch < self.accepted_epoch:
            raise ValueError("stale epoch")
        self.accepted_epoch = epoch

    def install(self, epoch, model):
        self.model = model  # mutation precedes the fence: flagged
        self._fence(epoch)
        self.version += 1   # dominated by the fence: fine

    def hot_swap(self, model):
        if model is None:
            return
        self.model = model  # no fence on any path: flagged
