"""Tests for the perf-trajectory harness and its regression gate."""

import json

import numpy as np
import pytest

from repro.bench.gate import (
    GateError,
    compare_payloads,
    gate_directories,
    render_findings,
)
from repro.bench.harness import (
    SCALES,
    SCENARIOS,
    HarnessScale,
    bless_harness,
    machine_calibration_s,
    run_harness,
    serving_payload,
    serving_stream_payload,
    write_results,
)
from repro.obs.benchjson import BenchResult, bench_payload

MICRO = HarnessScale("smoke", stores=1, photos=12, image_size=16,
                     chunks=3, epochs=1, finetune_repeats=2,
                     relabel_repeats=2)


def _payload(values, config=None, bench="BENCH_x"):
    """values: list of (metric, value, direction) or (metric, value,
    direction, labels)."""
    results = [
        BenchResult(v[0], v[1], "u", dict(v[3]) if len(v) > 3 else {},
                    direction=v[2])
        for v in values
    ]
    return bench_payload(bench, results, config=config or {"scale": "smoke"})


class TestGateComparisons:
    def test_within_tolerance_passes(self):
        old = _payload([("ops", 100.0, "higher_is_better")])
        new = _payload([("ops", 90.0, "higher_is_better")])
        findings = compare_payloads(old, new, tolerance=0.15)
        assert [f.status for f in findings] == ["ok"]

    def test_higher_is_better_regression(self):
        old = _payload([("ops", 100.0, "higher_is_better")])
        new = _payload([("ops", 80.0, "higher_is_better")])
        (finding,) = compare_payloads(old, new, tolerance=0.15)
        assert finding.status == "regression"
        assert "20.0%" in finding.detail

    def test_lower_is_better_regression(self):
        old = _payload([("lat", 1.0, "lower_is_better")])
        assert compare_payloads(
            old, _payload([("lat", 1.14, "lower_is_better")]))[0].ok
        assert not compare_payloads(
            old, _payload([("lat", 1.2, "lower_is_better")]))[0].ok

    def test_improvement_always_passes(self):
        old = _payload([("ops", 100.0, "higher_is_better"),
                        ("lat", 1.0, "lower_is_better")])
        new = _payload([("ops", 500.0, "higher_is_better"),
                        ("lat", 0.1, "lower_is_better")])
        assert all(f.ok for f in compare_payloads(old, new))

    def test_exact_fails_on_any_difference(self):
        old = _payload([("bytes", 1000, "exact")])
        assert compare_payloads(old, _payload([("bytes", 1000, "exact")]))[0].ok
        (finding,) = compare_payloads(old, _payload([("bytes", 1001, "exact")]))
        assert finding.status == "mismatch"

    def test_informational_metric_never_fails_on_value(self):
        old = _payload([("wall_s", 1.0, None)])
        new = _payload([("wall_s", 99.0, None)])
        assert compare_payloads(old, new)[0].ok

    def test_missing_metric_fails(self):
        old = _payload([("ops", 100.0, "higher_is_better"),
                        ("lat", 1.0, "lower_is_better")])
        new = _payload([("ops", 100.0, "higher_is_better")])
        statuses = {f.metric: f.status for f in compare_payloads(old, new)}
        assert statuses == {"ops": "ok", "lat": "missing"}

    def test_unexpected_metric_fails(self):
        old = _payload([("ops", 100.0, "higher_is_better")])
        new = _payload([("ops", 100.0, "higher_is_better"),
                        ("extra", 1.0, None)])
        statuses = {f.metric: f.status for f in compare_payloads(old, new)}
        assert statuses["extra"] == "unexpected"

    def test_labels_distinguish_metrics(self):
        old = _payload([("rps", 100.0, "higher_is_better", {"f": "a"}),
                        ("rps", 10.0, "higher_is_better", {"f": "b"})])
        new = _payload([("rps", 100.0, "higher_is_better", {"f": "a"}),
                        ("rps", 5.0, "higher_is_better", {"f": "b"})])
        by_labels = {f.labels: f.status for f in compare_payloads(old, new)}
        assert by_labels[(("f", "a"),)] == "ok"
        assert by_labels[(("f", "b"),)] == "regression"

    def test_config_mismatch_is_a_hard_error(self):
        old = _payload([("ops", 1.0, "exact")], config={"scale": "smoke"})
        new = _payload([("ops", 1.0, "exact")], config={"scale": "fast"})
        with pytest.raises(GateError, match="config mismatch"):
            compare_payloads(old, new)

    def test_direction_change_is_a_hard_error(self):
        old = _payload([("ops", 1.0, "higher_is_better")])
        new = _payload([("ops", 1.0, "lower_is_better")])
        with pytest.raises(GateError, match="changed direction"):
            compare_payloads(old, new)

    def test_bench_name_mismatch_is_a_hard_error(self):
        with pytest.raises(GateError, match="bench name"):
            compare_payloads(_payload([], bench="BENCH_a"),
                             _payload([], bench="BENCH_b"))

    def test_render_findings_lists_failures(self):
        old = _payload([("ops", 100.0, "higher_is_better")])
        new = _payload([("ops", 10.0, "higher_is_better")])
        text = render_findings(compare_payloads(old, new))
        assert "perf gate" in text and "regression" in text


class TestGateDirectories:
    def _write(self, directory, payload):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{payload['bench']}.json"
        path.write_text(json.dumps(payload))

    def test_round_trip_directories(self, tmp_path):
        old = _payload([("ops", 100.0, "higher_is_better")])
        new = _payload([("ops", 99.0, "higher_is_better")])
        self._write(tmp_path / "base", old)
        self._write(tmp_path / "cur", new)
        findings = gate_directories(tmp_path / "base", tmp_path / "cur",
                                    ["BENCH_x"])
        assert all(f.ok for f in findings)

    def test_missing_baseline_file_is_a_hard_error(self, tmp_path):
        self._write(tmp_path / "cur", _payload([]))
        with pytest.raises(GateError, match="no committed baseline"):
            gate_directories(tmp_path / "base", tmp_path / "cur", ["BENCH_x"])

    def test_missing_fresh_file_is_a_hard_error(self, tmp_path):
        self._write(tmp_path / "base", _payload([]))
        with pytest.raises(GateError, match="fresh results missing"):
            gate_directories(tmp_path / "base", tmp_path / "cur", ["BENCH_x"])


class TestHarnessLifecycle:
    @pytest.fixture(scope="class")
    def payloads(self):
        return run_harness(MICRO, seed=0,
                           scenarios=("ingest", "finetune", "relabel"))

    def test_expected_benches_and_metrics(self, payloads):
        assert set(payloads) == {"BENCH_ingest", "BENCH_finetune",
                                 "BENCH_relabel"}
        for bench, payload in payloads.items():
            prefix = bench.replace("BENCH_", "")
            metrics = {e["metric"] for e in payload["results"]}
            for suffix in ("ops_per_s", "p50_latency_s", "p99_latency_s",
                           "wall_s", "speed_factor", "p50_latency_cal",
                           "bytes_moved", "work"):
                assert f"{prefix}_{suffix}" in metrics, (bench, suffix)
            assert "machine_calibration_s" in metrics
            assert payload["schema_version"] == 2
            assert payload["config"]["scale"] == "smoke"

    def test_directions_partition_gated_vs_informational(self, payloads):
        for payload in payloads.values():
            by_metric = {e["metric"]: e.get("direction")
                         for e in payload["results"]}
            for metric, direction in by_metric.items():
                if metric.endswith("speed_factor"):
                    assert direction == "higher_is_better"
                elif metric.endswith(("bytes_moved", "_work")):
                    assert direction == "exact"
                else:  # raw seconds + few-sample medians: informational
                    assert direction is None, metric

    def test_deterministic_metrics_reproduce(self, payloads):
        """bytes/work counters must be identical run to run — that is
        what lets the gate demand exactness on them."""
        again = run_harness(MICRO, seed=0,
                            scenarios=("ingest", "finetune", "relabel"))
        for bench in payloads:
            exact = {
                e["metric"]: e["value"] for e in payloads[bench]["results"]
                if e.get("direction") == "exact"
            }
            exact_again = {
                e["metric"]: e["value"] for e in again[bench]["results"]
                if e.get("direction") == "exact"
            }
            assert exact == exact_again
            assert exact, bench

    def test_fresh_run_passes_its_own_gate(self, payloads, tmp_path):
        write_results(payloads, tmp_path / "base")
        again = run_harness(MICRO, seed=0,
                            scenarios=("ingest", "finetune", "relabel"))
        write_results(again, tmp_path / "cur")
        findings = gate_directories(tmp_path / "base", tmp_path / "cur",
                                    sorted(payloads), tolerance=0.5)
        assert all(f.ok for f in findings), render_findings(findings)

    def test_write_results_round_trips(self, payloads, tmp_path):
        written = write_results(payloads, tmp_path)
        assert {bench for bench, _ in written} == set(payloads)
        for bench, path in written:
            assert json.loads(path.read_text()) == payloads[bench]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_harness(MICRO, scenarios=("ingest", "turbo"))

    def test_bless_harness_medians_runs(self, payloads):
        blessed = bless_harness(MICRO, seed=0,
                                scenarios=("ingest",), reps=2)
        assert set(blessed) == {"BENCH_ingest"}
        by_metric = {e["metric"]: e for e in blessed["BENCH_ingest"]["results"]}
        single = {e["metric"]: e for e in payloads["BENCH_ingest"]["results"]}
        assert set(by_metric) == set(single)
        # deterministic counters keep their exact single-run values (and
        # integer type); only noisy timing metrics get the median
        for metric, entry in by_metric.items():
            if entry.get("direction") == "exact":
                assert entry["value"] == single[metric]["value"]
                assert type(entry["value"]) is type(single[metric]["value"])

    def test_bless_harness_rejects_zero_reps(self):
        with pytest.raises(ValueError, match="reps"):
            bless_harness(MICRO, reps=0)


class TestHarnessPieces:
    def test_calibration_is_positive_and_stable(self):
        a, b = machine_calibration_s(), machine_calibration_s()
        assert a > 0 and b > 0
        assert abs(a - b) / min(a, b) < 1.0  # min-of-N keeps noise bounded

    def test_scales_registry(self):
        assert set(SCALES) == {"smoke", "fast", "paper"}
        assert SCENARIOS == ("ingest", "finetune", "relabel", "serving",
                             "serving_stream", "sharding")
        assert SCALES["smoke"].photos < SCALES["fast"].photos
        assert SCALES["fast"].photos < SCALES["paper"].photos

    def test_serving_payload_shape(self):
        """serving_payload builds the canonical file from a comparison
        result without rerunning the (slower) simulation."""
        frontend = {
            "throughput_rps": 100.0, "p50_latency_s": 0.01,
            "p99_latency_s": 0.05, "completed": 90, "shed": {"full": 10},
            "mean_batch": 4.0, "cache_hits": 50, "cache_misses": 40,
        }
        result = {
            "seed": 0, "latency_budget_s": 0.1, "speedup": 2.0,
            "adaptive": dict(frontend), "baseline": dict(frontend),
            "config": {"model": "ResNet50", "accelerator": "Tesla V100",
                       "replicas": 1},
        }
        payload = serving_payload(result)
        assert payload["bench"] == "BENCH_serving"
        metrics = {(e["metric"], tuple(sorted(e.get("labels", {}).items())))
                   for e in payload["results"]}
        assert ("serving_throughput_rps", (("frontend", "adaptive"),)) in metrics
        assert ("serving_speedup", ()) in metrics
        # deterministic logical-clock numbers gate with real directions
        directions = {e["metric"]: e.get("direction")
                      for e in payload["results"]}
        assert directions["serving_speedup"] == "higher_is_better"
        assert directions["serving_mean_batch"] is None

    def test_serving_stream_payload_shape(self):
        """serving_stream_payload pins the protocol guarantees as exact
        gate metrics — queue_full must stay zero forever."""
        stream_report = {
            "throughput_rps": 1300.0, "p50_latency_s": 0.1,
            "p99_latency_s": 0.8, "p99_credit_wait_s": 0.7,
            "completed": 3000, "cancelled": 0, "expired": 0,
            "queue_full": 0, "out_of_order": 79, "redispatches": 0,
            "scale_ups": 5, "scale_downs": 0, "peak_replicas": 6,
            "mean_batch": 1.6,
        }
        sync_report = {
            "completed": 1644, "shed": {"queue_full": 1356, "deadline": 0,
                                        "dispatch_failed": 0},
            "throughput_rps": 728.0,
        }
        result = {
            "seed": 0, "trace": "flash", "latency_budget_s": 1.0,
            "streaming": stream_report, "sync": sync_report,
            "config": {"model": "ResNet50", "accelerator": "Tesla V100",
                       "replicas": 1},
            "stream_config": {"credits": 256, "min_replicas": 1,
                              "max_replicas": 6},
        }
        payload = serving_stream_payload(result)
        assert payload["bench"] == "BENCH_serving_stream"
        directions = {e["metric"]: e.get("direction")
                      for e in payload["results"]}
        assert directions["stream_queue_full"] == "exact"
        assert directions["stream_out_of_order"] == "exact"
        assert directions["stream_throughput_rps"] == "higher_is_better"
        assert directions["stream_p99_credit_wait_s"] == "lower_is_better"
        assert directions["sync_queue_full"] == "exact"
        assert payload["config"]["trace"] == "flash"
        assert payload["config"]["credits"] == 256

    def test_percentiles_match_numpy(self):
        from repro.bench.harness import _percentile

        samples = [0.5, 0.1, 0.9, 0.3]
        assert _percentile(samples, 50) == float(np.percentile(samples, 50))
