"""Tests for the continuous-operation production loop."""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.driftdetect import NeverPolicy, ScheduledPolicy
from repro.data.loader import normalize_images
from repro.models.registry import tiny_model
from repro.train.fulltrain import full_train
from repro.workloads.continuous import run_continuous_operation


@pytest.fixture(scope="module")
def trained_cluster_factory(small_world=None):
    from repro.data.drift import DriftingPhotoWorld, WorldConfig

    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))
    base = tiny_model("ResNet50", num_classes=8, width=8, seed=4)
    x, y = world.sample(180, 0, rng=np.random.default_rng(1))
    full_train(base, normalize_images(x), y, epochs=2, seed=0)
    state = base.state_dict()

    def make():
        def factory():
            model = tiny_model("ResNet50", num_classes=8, width=8, seed=4)
            model.load_state_dict(state)
            return model

        return NDPipeCluster(factory, num_stores=2, nominal_raw_bytes=4096,
                             lr=5e-3), world

    return make


class TestContinuousOperation:
    def test_scheduled_policy_updates_and_relabels(self, trained_cluster_factory):
        cluster, world = trained_cluster_factory()
        log = run_continuous_operation(
            cluster, world, ScheduledPolicy(period_days=2),
            horizon_days=4, uploads_per_day=16, eval_size=60,
        )
        assert log.updates == 2
        assert [d.day for d in log.days] == [1, 2, 3, 4]
        updated_days = [d for d in log.days if d.fine_tuned]
        assert all(d.labels_refreshed > 0 for d in updated_days)
        # after a relabel, no stale labels remain that day
        assert all(d.stale_labels == 0 for d in updated_days)

    def test_never_policy_accumulates_stale_labels(self, trained_cluster_factory):
        cluster, world = trained_cluster_factory()
        log = run_continuous_operation(
            cluster, world, NeverPolicy(), horizon_days=3,
            uploads_per_day=12, eval_size=40,
        )
        assert log.updates == 0
        # no model update ever happened, so nothing is stale relative to v0
        assert log.final_stale_labels == 0
        assert 0.0 <= log.mean_top1 <= 1.0

    def test_stale_labels_grow_without_relabel(self, trained_cluster_factory):
        cluster, world = trained_cluster_factory()
        log = run_continuous_operation(
            cluster, world, ScheduledPolicy(period_days=1),
            horizon_days=3, uploads_per_day=10, eval_size=40,
            relabel_after_update=False,
        )
        # each day's uploads were labelled by the previous model version
        assert log.final_stale_labels > 0

    def test_traffic_summary_captured(self, trained_cluster_factory):
        cluster, world = trained_cluster_factory()
        log = run_continuous_operation(
            cluster, world, ScheduledPolicy(period_days=2),
            horizon_days=2, uploads_per_day=10, eval_size=30,
        )
        assert log.traffic_by_kind.get("ingest", 0) > 0
        assert log.traffic_by_kind.get("features", 0) > 0

    def test_validation(self, trained_cluster_factory):
        cluster, world = trained_cluster_factory()
        with pytest.raises(ValueError):
            run_continuous_operation(cluster, world, NeverPolicy(),
                                     horizon_days=0)
        with pytest.raises(ValueError):
            run_continuous_operation(cluster, world, NeverPolicy(),
                                     uploads_per_day=0)
