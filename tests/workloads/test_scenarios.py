"""Tests for the drift-scenario workload runner."""

import numpy as np
import pytest

from repro.models.registry import tiny_model
from repro.workloads.scenarios import (
    DriftScenarioConfig,
    evaluate_model,
    run_drift_scenario,
    train_base_model,
    uploads_for_day,
)

CONFIG = DriftScenarioConfig(horizon_days=4, eval_every_days=2, train_size=160,
                             test_size=120, base_epochs=2, finetune_epochs=2,
                             finetune_size=100)


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=0)


class TestScenario:
    def test_unknown_strategy(self, small_world):
        with pytest.raises(ValueError):
            run_drift_scenario(small_world, factory, "hope", CONFIG)

    def test_outdated_strategy_never_trains_after_base(self, small_world):
        base = train_base_model(small_world, factory, CONFIG)
        snapshot = base.state_dict()
        result = run_drift_scenario(small_world, factory, "outdated", CONFIG,
                                    base_model=base)
        after = base.state_dict()
        assert all(np.array_equal(snapshot[k], after[k]) for k in snapshot)
        assert [p.day for p in result.points] == [0, 2, 4]

    def test_finetune_strategy_records_points(self, small_world):
        result = run_drift_scenario(small_world, factory, "finetune", CONFIG)
        assert result.strategy == "finetune"
        assert all(0.0 <= p.top1 <= p.top5 <= 1.0 for p in result.points)

    def test_shared_base_model_gives_same_day0(self, small_world):
        base = train_base_model(small_world, factory, CONFIG)
        a = run_drift_scenario(small_world, factory, "outdated", CONFIG,
                               base_model=base)

        base2 = train_base_model(small_world, factory, CONFIG)
        b = run_drift_scenario(small_world, factory, "finetune", CONFIG,
                               base_model=base2)
        assert a.points[0].top1 == pytest.approx(b.points[0].top1)

    def test_drop_from_base_property(self, small_world):
        result = run_drift_scenario(small_world, factory, "outdated", CONFIG)
        assert result.drop_from_base == pytest.approx(
            result.points[0].top1 - result.final_top1)


class TestHelpers:
    def test_evaluate_model_range(self, small_world):
        model = factory().eval()
        x, y = small_world.sample(64, 0)
        top1, top5 = evaluate_model(model, x, y)
        assert 0.0 <= top1 <= top5 <= 1.0

    def test_uploads_for_day_growth(self, small_world):
        x1, y1 = uploads_for_day(small_world, 1, 10_000)
        assert len(x1) == len(y1)
        assert len(x1) == pytest.approx(178, abs=5)  # 1.78% of 10k

    def test_uploads_day_zero(self, small_world):
        x, _ = uploads_for_day(small_world, 0, 1000)
        assert len(x) >= 1
