"""Smoke tests that the shipped examples actually run.

Only the fast examples run here (the training-heavy ones are exercised by
the benchmarks at scale); each must complete and print its headline table.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"example missing: {path}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_media_extensions(self, capsys):
        out = run_example("media_extensions.py", capsys)
        assert "video" in out and "audio" in out and "document" in out
        assert "key frames" in out

    def test_apo_planning(self, capsys):
        out = run_example("apo_planning.py", capsys)
        assert "APO plans" in out
        assert "ResNet50" in out and "+Conv5" in out
        assert "Inferentia" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "NDPipe quickstart results" in out
        assert "network traffic by kind" in out

    @pytest.mark.slow
    def test_offline_relabel(self, capsys):
        out = run_example("offline_relabel.py", capsys)
        assert "runnable relabel campaign" in out
        assert "relabelling 1B photos" in out
