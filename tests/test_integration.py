"""End-to-end integration: the full NDPipe lifecycle on one cluster.

Reproduces the paper's operational story at laptop scale: ingest photos
with online inference, drift the world, fine-tune with pipelined FT-DMP,
redistribute via Check-N-Run, and refresh labels with near-data offline
inference — asserting the headline system invariants along the way.
"""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.data.loader import normalize_images
from repro.models.registry import tiny_model
from repro.train.fulltrain import full_train


@pytest.fixture(scope="module")
def lifecycle():
    """Run the full lifecycle once; tests assert on the outcome."""
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))

    def factory():
        return tiny_model("ResNet50", num_classes=8, width=8, seed=11)

    # pre-train a base model (the training server's biweekly full train)
    base = factory()
    x0, y0 = world.sample(240, 0, rng=np.random.default_rng(1))
    full_train(base, normalize_images(x0), y0, epochs=3, seed=0)
    base_state = base.state_dict()

    def trained_factory():
        model = factory()
        model.load_state_dict(base_state)
        return model

    cluster = NDPipeCluster(trained_factory, num_stores=4,
                            nominal_raw_bytes=16384, lr=5e-3)

    # day-0 uploads
    x_up, y_up = world.sample(120, 0, rng=np.random.default_rng(2))
    cluster.ingest(x_up, train_labels=y_up)
    baseline_labels = cluster.database.snapshot_labels()

    # two weeks later: drifted uploads arrive
    x_new, y_new = world.sample(120, 14, rng=np.random.default_rng(3))
    cluster.ingest(x_new, train_labels=y_new)

    # accuracy before maintenance
    x_test, y_test = world.sample(240, 14, rng=np.random.default_rng(4))
    before = cluster.evaluate(x_test, y_test)

    # continuous training: pipelined FT-DMP + Check-N-Run distribution
    report = cluster.finetune(epochs=3, num_runs=2)
    after = cluster.evaluate(x_test, y_test)

    # offline relabel campaign near the data
    relabel = cluster.offline_relabel()

    return {
        "cluster": cluster,
        "world": world,
        "report": report,
        "before": before,
        "after": after,
        "relabel": relabel,
        "baseline_labels": baseline_labels,
    }


class TestLifecycle:
    def test_finetune_recovers_accuracy(self, lifecycle):
        assert lifecycle["after"][0] >= lifecycle["before"][0]

    def test_all_photos_relabelled_once(self, lifecycle):
        assert lifecycle["relabel"].photos_processed == 240
        versions = lifecycle["cluster"].database.version_counts()
        assert set(versions) == {1}

    def test_some_labels_fixed(self, lifecycle):
        """The outdated-label phenomenon: the new model changes labels."""
        cluster = lifecycle["cluster"]
        changed = cluster.database.fraction_changed_since(
            lifecycle["baseline_labels"])
        assert changed > 0.0

    def test_feature_traffic_far_below_image_traffic(self, lifecycle):
        kinds = lifecycle["cluster"].traffic_summary()
        assert kinds["features"] < 0.05 * kinds["ingest"]

    def test_delta_distribution_beats_full_models(self, lifecycle):
        tuner = lifecycle["cluster"].tuner
        assert tuner.distributions[-1].reduction_factor > 3
        kinds = lifecycle["cluster"].traffic_summary()
        assert kinds["model-delta"] < kinds["model-full"]

    def test_label_traffic_tiny(self, lifecycle):
        kinds = lifecycle["cluster"].traffic_summary()
        assert kinds["labels"] <= 240 * 64

    def test_replicas_consistent(self, lifecycle):
        cluster = lifecycle["cluster"]
        tuner_state = cluster.tuner.model.state_dict()
        for store in cluster.stores:
            state = store.model.state_dict()
            for key in tuner_state:
                assert np.allclose(state[key], tuner_state[key], atol=1e-12)

    def test_report_covers_all_labelled_photos(self, lifecycle):
        assert lifecycle["report"].images_extracted == 240

    def test_database_search_serves_queries(self, lifecycle):
        db = lifecycle["cluster"].database
        hits = [db.search(label) for label in range(8)]
        assert sum(len(h) for h in hits) == len(db)


class TestSimulatedScaleStory:
    """The headline numbers at full (simulated) scale."""

    def test_inference_scaling_story(self):
        from repro.analysis import perf

        out = perf.fig13_inference_scaling(["ResNet50"])["ResNet50"]
        assert out["per_store_ips"] == pytest.approx(2129, rel=0.02)
        assert out["crossovers"]["P3"] in (5, 6, 7)

    def test_training_energy_story(self):
        """Paper: higher training energy efficiency at BEST (they measure
        up to 2.64x; our linear power model lands lower but the direction
        and ordering hold — see EXPERIMENTS.md)."""
        from repro.analysis import perf

        rows = perf.fig16_training_energy()
        best_gains = [r["gain"] for r in rows if r["point"] == "BEST"]
        assert max(best_gains) > 1.15
        assert all(g > 0.9 for g in best_gains)

    def test_finetune_vs_full_train_speedup(self):
        from repro.models.catalog import model_graph
        from repro.sim.specs import TESLA_V100

        graph = model_graph("ResNet50")
        full_time = 90 * 1.2e6 / (2 * TESLA_V100.full_train_ips(graph))
        tuned_time = 1.2e6 / TESLA_V100.tail_train_ips(graph, 5)
        assert full_time / tuned_time > 300
