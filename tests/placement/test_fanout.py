"""The Check-N-Run fan-out tree's array layout.

The load-bearing contract: processing stores in array order is a valid
BFS (every parent appears before its children in ``send_order``), the
Tuner pays exactly ``min(fanout, N)`` uplink sends, and the tree is as
shallow as a balanced d-ary tree can be.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import FanoutTree


def tree_of(n, fanout=2):
    return FanoutTree([f"store-{i}" for i in range(n)], fanout=fanout)


class TestLayout:
    def test_known_binary_layout(self):
        tree = tree_of(7)
        assert tree.roots() == ["store-0", "store-1"]
        assert tree.senders == {
            "store-2": "store-0", "store-3": "store-0",
            "store-4": "store-1", "store-5": "store-1",
            "store-6": "store-2",
        }
        assert tree.children("store-0") == ["store-2", "store-3"]
        assert tree.children("store-2") == ["store-6"]
        assert tree.children("store-6") == []
        assert tree.depth == 3

    @given(n=st.integers(1, 40), fanout=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_parents_precede_children_in_send_order(self, n, fanout):
        tree = tree_of(n, fanout)
        order = tree.send_order
        position = {sid: i for i, sid in enumerate(order)}
        for child, parent in tree.senders.items():
            assert position[parent] < position[child]

    @given(n=st.integers(1, 40), fanout=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_every_store_is_root_or_has_one_parent(self, n, fanout):
        tree = tree_of(n, fanout)
        senders = tree.senders
        roots = tree.roots()
        assert len(roots) == min(fanout, n)
        for sid in tree.store_ids:
            assert (sid in roots) != (sid in senders)
        # relay out-degree never exceeds the branching factor
        for sid in tree.store_ids:
            assert len(tree.children(sid)) <= fanout

    @given(n=st.integers(1, 64), fanout=st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_array_layout_is_balanced(self, n, fanout):
        tree = tree_of(n, fanout)
        assert tree.depth == FanoutTree.ideal_depth(n, fanout)

    def test_fanout_one_degenerates_to_a_chain(self):
        tree = tree_of(4, fanout=1)
        assert tree.roots() == ["store-0"]
        assert tree.senders == {
            "store-1": "store-0",
            "store-2": "store-1",
            "store-3": "store-2",
        }
        assert tree.depth == 4


class TestPlan:
    def test_plan_matches_distribute_update_kwargs(self):
        plan = tree_of(5).plan()
        assert set(plan) == {"send_order", "senders"}
        assert plan["send_order"] == [f"store-{i}" for i in range(5)]

    def test_plan_restricted_to_available_keeps_order(self):
        tree = tree_of(6)
        plan = tree.plan(available=["store-5", "store-1", "store-3"])
        # array order is preserved, the shrunken tree is rebuilt
        assert plan["send_order"] == ["store-1", "store-3", "store-5"]
        assert plan["senders"] == {"store-5": "store-1"}

    def test_plan_with_everyone_down_is_empty(self):
        plan = tree_of(3).plan(available=[])
        assert plan["send_order"] == []
        assert plan["senders"] == {}


class TestValidation:
    def test_fanout_must_be_positive(self):
        with pytest.raises(ValueError, match="fanout"):
            tree_of(3, fanout=0)

    def test_duplicate_store_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            FanoutTree(["a", "a"])
