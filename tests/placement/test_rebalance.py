"""Copy-first live migration and its exact ledger.

The MigrationLedger law is unit-tested first, then the rebalancer runs
against a real replicated fleet: a clean join converges, a dead
destination defers (never loses) photos, and a nemesis schedule that
drops rebalance traffic / crashes a shard mid-pass still leaves the
books balanced and every photo recoverable.
"""

import numpy as np
import pytest

from repro.faults import DropMessages, FaultInjector, StoreCrash
from repro.models.registry import tiny_model
from repro.placement import MigrationLedger, ShardConfig, ShardedCluster


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=11)


def make_fleet(num_shards=4, replication=2, photos=24, seed=3):
    fleet = ShardedCluster(
        factory, ShardConfig(num_shards=num_shards, vnodes=16,
                             replication=replication, ring_seed=seed))
    rng = np.random.default_rng(seed)
    shape = fleet.cluster.tuner.model.input_shape
    images = rng.random((photos,) + tuple(shape)).astype(np.float32)
    labels = rng.integers(0, 8, size=photos)
    ids, rejections = fleet.ingest(images, train_labels=labels)
    assert rejections == []
    return fleet, ids


class TestMigrationLedger:
    def test_begin_commit_balances(self):
        ledger = MigrationLedger()
        ledger.begin()
        ledger.commit()
        ledger.begin()
        ledger.abort()
        ledger.check()
        assert ledger.objects_moved == 2
        assert ledger.objects_received == 1
        assert ledger.objects_failed == 1
        assert ledger.objects_inflight == 0

    def test_commit_without_begin_is_loud(self):
        ledger = MigrationLedger()
        with pytest.raises(RuntimeError, match="without a begin"):
            ledger.commit()

    def test_abort_without_begin_is_loud(self):
        ledger = MigrationLedger()
        with pytest.raises(RuntimeError, match="without a begin"):
            ledger.abort()

    def test_tampering_is_caught(self):
        ledger = MigrationLedger()
        ledger.begin()
        ledger.objects_received += 1  # commit bookkeeping skipped
        with pytest.raises(RuntimeError, match="conservation violated"):
            ledger.check()

    def test_to_dict_snapshot(self):
        ledger = MigrationLedger()
        ledger.begin()
        ledger.commit()
        ledger.bytes_received += 512
        snapshot = ledger.to_dict()
        assert snapshot["objects_moved"] == 1
        assert snapshot["objects_received"] == 1
        assert snapshot["objects_inflight"] == 0
        assert snapshot["bytes_received"] == 512


class TestCleanJoin:
    def test_join_converges_and_balances(self):
        fleet, ids = make_fleet()
        summary = fleet.join_shard()
        ledger = fleet.ledger()
        assert summary["event"] == "join"
        assert ledger.objects_moved == ledger.objects_received
        assert ledger.objects_inflight == 0
        assert ledger.objects_failed == 0
        # converged: the ring and the holder sets agree on every photo
        assert fleet.rebalancer.plan().photos_affected == 0
        assert fleet.rebalancer.deferred == []
        # every photo is still recoverable at full replication
        scrub = fleet.scrub_and_repair()
        assert scrub.unrecoverable == []
        # the newcomer actually owns a slice of the keyspace
        holders = {h for pid in ids
                   for h in fleet.cluster.replicas.holders(pid)}
        assert summary["shard"] in holders

    def test_leave_drains_the_shard_completely(self):
        fleet, ids = make_fleet()
        leaver = fleet.cluster.stores[1].store_id
        summary = fleet.leave_shard(leaver)
        assert summary["event"] == "leave"
        assert leaver not in fleet.ring
        assert leaver not in [s.store_id for s in fleet.cluster.stores]
        for pid in ids:
            holders = fleet.cluster.replicas.holders(pid)
            assert leaver not in holders
            assert len(holders) == fleet.cluster.replication
        assert fleet.scrub_and_repair().unrecoverable == []

    def test_move_plan_counts(self):
        fleet, ids = make_fleet()
        fleet.ring.add_shard("late-shard")  # ring changed, fleet not yet
        plan = fleet.rebalancer.plan()
        assert plan.photos_affected == len(plan.moves)
        assert plan.copies_needed >= plan.photos_affected or \
            plan.photos_affected == 0
        fleet.ring.remove_shard("late-shard")


class TestDeferral:
    def test_dead_destination_defers_instead_of_losing(self):
        fleet, ids = make_fleet()
        # stage the join by hand so the newcomer can be crashed before
        # the rebalance pass runs
        from repro.core.pipestore import PipeStore
        store = PipeStore(
            "pipestore-late",
            nominal_raw_bytes=fleet.cluster.config.nominal_raw_bytes)
        store.bind_metrics(fleet.cluster.metrics)
        fleet.cluster.tuner.register(store, factory())
        fleet.cluster.stores.append(store)
        fleet.ring.add_shard("pipestore-late")
        store.fail()
        fleet.rebalancer.rebalance()
        ledger = fleet.ledger()
        # nothing was even attempted onto the dead shard: copy-first
        # means the sources stay authoritative and the photos defer
        assert fleet.rebalancer.deferred != []
        assert ledger.objects_inflight == 0
        for pid in ids:
            assert fleet.cluster.replicas.holders(pid)
        # repair + a later pass converges with zero loss
        store.repair()
        fleet.rebalancer.rebalance()
        assert fleet.rebalancer.plan().photos_affected == 0
        assert fleet.scrub_and_repair().unrecoverable == []


class TestNemesis:
    def test_dropped_rebalance_traffic_keeps_books_balanced(self):
        fleet, ids = make_fleet()
        injector = FaultInjector([
            DropMessages(at=1, count=200, kind="rebalance"),
        ]).attach_fabric(fleet.cluster.network)
        fleet.join_shard()
        ledger = fleet.ledger()
        # every failed copy was aborted, none left inflight or lost
        assert ledger.objects_failed > 0
        assert ledger.objects_inflight == 0
        assert ledger.objects_moved == (ledger.objects_received
                                        + ledger.objects_failed)
        assert int(fleet.metrics.move_failures.value()) \
            == ledger.objects_failed
        injector.detach()
        # once the network heals, the deferred slice migrates cleanly
        fleet.rebalancer.rebalance()
        assert fleet.rebalancer.plan().photos_affected == 0
        assert fleet.scrub_and_repair().unrecoverable == []

    def test_shard_evicted_mid_rebalance_converges_after_repair(self):
        fleet, ids = make_fleet(photos=32)
        victim = fleet.cluster.stores[0].store_id
        # the crash fires on a fabric tick partway through the migration
        # pass, so the victim dies while acting as donor/destination
        injector = FaultInjector([
            StoreCrash(at=6, store_id=victim),
        ]).attach(fleet.cluster)
        fleet.join_shard()
        ledger = fleet.ledger()
        assert ledger.objects_inflight == 0
        ledger.check()
        injector.detach()
        fleet.cluster._resolve_store(victim).repair()
        fleet.rebalancer.rebalance()
        assert fleet.rebalancer.plan().photos_affected == 0
        scrub = fleet.scrub_and_repair()
        assert scrub.unrecoverable == []
        for pid in ids:
            assert len(fleet.cluster.replicas.holders(pid)) \
                == fleet.cluster.replication
