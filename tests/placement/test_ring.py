"""Properties of the consistent-hash ring.

The three guarantees the docstring of :mod:`repro.placement.ring`
advertises, proven here: placement is a pure function of
``(seed, membership)`` regardless of join order; membership changes move
only the keyspace that changed owners (join: strictly onto the
newcomer, leave: strictly off the leaver); replica sets never co-locate
two copies on one shard.  Small cases are swept with hypothesis, the
movement *bound* is pinned on a fixed population.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import ConsistentHashRing, RingError

KEYS = st.lists(
    st.integers(0, 10**6).map(lambda i: f"photo-{i:07d}"),
    min_size=1, max_size=60, unique=True)
FLEETS = st.integers(2, 8).map(
    lambda n: [f"shard-{i}" for i in range(n)])


def ring_of(shards, vnodes=16, seed=0):
    return ConsistentHashRing(vnodes=vnodes, seed=seed, shards=shards)


class TestDeterminism:
    @given(keys=KEYS, shards=FLEETS, seed=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_placement_ignores_join_order(self, keys, shards, seed):
        forward = ring_of(shards, seed=seed)
        backward = ring_of(list(reversed(shards)), seed=seed)
        assert forward.placement_map(keys) == backward.placement_map(keys)
        assert forward.shards == backward.shards

    def test_two_processes_agree(self):
        # no dependence on PYTHONHASHSEED: the ring hash is keyed blake2b
        a = ring_of([f"s{i}" for i in range(5)], seed=7)
        b = ring_of([f"s{i}" for i in range(5)], seed=7)
        keys = [f"photo-{i}" for i in range(500)]
        assert a.placement_map(keys) == b.placement_map(keys)

    def test_different_seed_places_differently(self):
        keys = [f"photo-{i}" for i in range(200)]
        a = ring_of([f"s{i}" for i in range(6)], seed=0).placement_map(keys)
        b = ring_of([f"s{i}" for i in range(6)], seed=1).placement_map(keys)
        assert a != b


class TestMinimalMovement:
    @given(keys=KEYS, shards=FLEETS)
    @settings(max_examples=40, deadline=None)
    def test_join_moves_keys_only_onto_newcomer(self, keys, shards):
        ring = ring_of(shards)
        before = ring.placement_map(keys)
        ring.add_shard("shard-new")
        after = ring.placement_map(keys)
        for key in ConsistentHashRing.moved_keys(before, after):
            assert after[key] == "shard-new"

    @given(keys=KEYS, shards=FLEETS)
    @settings(max_examples=40, deadline=None)
    def test_leave_moves_keys_only_off_leaver(self, keys, shards):
        ring = ring_of(shards)
        before = ring.placement_map(keys)
        leaver = shards[0]
        ring.remove_shard(leaver)
        after = ring.placement_map(keys)
        for key in ConsistentHashRing.moved_keys(before, after):
            assert before[key] == leaver
            assert after[key] != leaver

    @given(keys=KEYS, shards=FLEETS)
    @settings(max_examples=25, deadline=None)
    def test_join_then_leave_is_identity(self, keys, shards):
        ring = ring_of(shards)
        before = ring.placement_map(keys)
        ring.add_shard("shard-new")
        ring.remove_shard("shard-new")
        assert ring.placement_map(keys) == before

    def test_join_movement_within_vnode_bound(self):
        # the ISSUE acceptance bound: <= 1/N + 10% of keys re-home
        keys = [f"photo-{i:06d}" for i in range(5000)]
        ring = ring_of([f"shard-{i}" for i in range(8)], vnodes=64)
        before = ring.placement_map(keys)
        ring.add_shard("shard-8")
        moved = ConsistentHashRing.moved_keys(
            before, ring.placement_map(keys))
        assert len(moved) / len(keys) <= 1 / 9 + 0.10


class TestReplicaSets:
    @given(keys=KEYS, shards=FLEETS, k=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_replicas_never_co_locate(self, keys, shards, k):
        ring = ring_of(shards)
        if k > len(shards):
            with pytest.raises(RingError, match="replicas"):
                ring.replica_set(keys[0], k)
            return
        for key in keys:
            replicas = ring.replica_set(key, k)
            assert len(replicas) == k
            assert len(set(replicas)) == k
            assert replicas[0] == ring.primary(key)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            ring_of(["a", "b"]).replica_set("x", 0)


class TestBoundedLoadPick:
    def test_without_load_is_primary(self):
        ring = ring_of([f"s{i}" for i in range(4)])
        assert ring.pick("photo-1") == ring.primary("photo-1")

    def test_overloaded_primary_sheds_to_successor(self):
        ring = ring_of([f"s{i}" for i in range(4)])
        primary = ring.primary("photo-1")
        loads = {s: (100.0 if s == primary else 1.0) for s in ring.shards}
        picked = ring.pick("photo-1", load_of=loads.__getitem__)
        assert picked != primary
        # the diversion target is the next *distinct* ring successor
        assert picked == ring.replica_set("photo-1", 2)[1]

    def test_all_overloaded_falls_back_to_least_loaded(self):
        ring = ring_of(["a", "b", "c"])
        loads = {"a": 90.0, "b": 80.0, "c": 70.0}
        assert ring.pick("photo-1", load_of=loads.__getitem__,
                         load_factor=1.0) in ring.shards
        # every shard is above a 1.0x-mean bound except the minimum
        lopsided = {"a": 500.0, "b": 400.0, "c": 3.0}
        assert ring.pick("photo-1", load_of=lopsided.__getitem__) == "c"

    def test_unavailable_primary_is_skipped(self):
        ring = ring_of([f"s{i}" for i in range(4)])
        primary = ring.primary("photo-1")
        picked = ring.pick("photo-1", available=lambda s: s != primary)
        assert picked == ring.replica_set("photo-1", 2)[1]

    def test_no_available_shard_raises(self):
        ring = ring_of(["a", "b"])
        with pytest.raises(RingError, match="no available shard"):
            ring.pick("photo-1", available=lambda s: False)

    def test_load_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="load_factor"):
            ring_of(["a"]).pick("x", load_of=lambda s: 0.0,
                                load_factor=0.5)


class TestMembershipErrors:
    def test_duplicate_join_is_loud(self):
        ring = ring_of(["a"])
        with pytest.raises(RingError, match="already on the ring"):
            ring.add_shard("a")

    def test_unknown_leave_is_loud(self):
        with pytest.raises(RingError, match="not on the ring"):
            ring_of(["a"]).remove_shard("b")

    def test_empty_ring_cannot_place(self):
        with pytest.raises(RingError, match="no shards"):
            ConsistentHashRing().primary("photo-1")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError, match="vnodes"):
            ConsistentHashRing(vnodes=0)

    def test_membership_dunder_views(self):
        ring = ring_of(["b", "a"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.shards == ["a", "b"]


class TestBulkViews:
    def test_assignments_cover_every_shard_and_key(self):
        ring = ring_of([f"s{i}" for i in range(5)])
        keys = [f"photo-{i}" for i in range(123)]
        groups = ring.assignments(keys)
        assert sorted(groups) == ring.shards
        assert sum(len(v) for v in groups.values()) == len(keys)
        for shard, members in groups.items():
            for key in members:
                assert ring.primary(key) == shard
