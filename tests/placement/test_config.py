"""ShardConfig / TenantConfig: frozen, validated, strict round-trips."""

import dataclasses

import pytest

from repro.placement import ShardConfig, TenantConfig


class TestShardConfig:
    def test_defaults_valid(self):
        assert ShardConfig().validated() is not None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ShardConfig().num_shards = 4

    @pytest.mark.parametrize("field,value,match", [
        ("num_shards", 0, "at least one shard"),
        ("vnodes", 0, "vnodes must be >= 1"),
        ("replication", 0, "replication 0 must be in"),
        ("replication", 9, "replication 9 must be in"),
        ("fanout", 0, "fanout must be >= 1"),
        ("load_factor", 0.5, "load_factor"),
        ("load_factor", float("nan"), "load_factor"),
        ("load_factor", float("inf"), "load_factor"),
        ("rebalance_batch", 0, "rebalance_batch"),
    ])
    def test_bad_field_rejected(self, field, value, match):
        config = ShardConfig(**{field: value})
        with pytest.raises(ValueError, match=match):
            config.validated()

    def test_roundtrip(self):
        config = ShardConfig(num_shards=4, replication=2, ring_seed=9)
        assert ShardConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ShardConfig fields"):
            ShardConfig.from_dict({"num_shards": 4, "shards": 4})

    def test_from_dict_validates(self):
        with pytest.raises(ValueError, match="fanout"):
            ShardConfig.from_dict({"fanout": 0})

    def test_field_names(self):
        assert "num_shards" in ShardConfig.field_names()
        assert "vnodes" in ShardConfig.field_names()


class TestTenantConfig:
    def test_defaults_valid(self):
        assert TenantConfig().validated().name == "default"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TenantConfig().weight = 2.0

    @pytest.mark.parametrize("field,value,match", [
        ("name", "", "tenant name"),
        ("name", "a/b", "tenant name"),
        ("name", " padded", "tenant name"),
        ("byte_quota", 0, "byte_quota"),
        ("request_quota", 0, "request_quota"),
        ("weight", 0.0, "weight"),
        ("weight", -1.0, "weight"),
        ("weight", float("nan"), "weight"),
    ])
    def test_bad_field_rejected(self, field, value, match):
        config = TenantConfig(**{field: value})
        with pytest.raises(ValueError, match=match):
            config.validated()

    def test_unmetered_quotas_are_none(self):
        config = TenantConfig(name="acme").validated()
        assert config.byte_quota is None
        assert config.request_quota is None

    def test_roundtrip(self):
        config = TenantConfig(name="acme", byte_quota=1 << 20, weight=2.5)
        assert TenantConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown TenantConfig fields"):
            TenantConfig.from_dict({"name": "acme", "quota": 1})
