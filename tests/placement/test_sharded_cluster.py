"""ShardedCluster end-to-end: the fleet behind the familiar cluster API.

Covers the façade's own surface (multi-tenant ingest, fan-out
distribution, membership) plus the two regressions the ISSUE calls out:
fresh ingest routes around a store whose link went slow (the
``_next_available_store`` queue-depth fix, driven by an ``AddLatency``
budget pinned to one destination), and the ``repro.placement`` package
serves deprecated aliases with exactly one warning.
"""

import warnings

import numpy as np
import pytest

from repro.faults import AddLatency, FaultInjector
from repro.models.registry import tiny_model
from repro.placement import (
    ShardConfig,
    ShardedCluster,
    TenantConfig,
    UnknownTenantError,
    split_key,
)

SEED = 5


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=7)


def make_fleet(num_shards=4, replication=1, tenants=(), **shard_kwargs):
    return ShardedCluster(
        factory,
        ShardConfig(num_shards=num_shards, vnodes=16,
                    replication=replication, ring_seed=SEED,
                    **shard_kwargs),
        tenants=tenants)


def images_of(n, fleet, seed=SEED):
    rng = np.random.default_rng(seed)
    shape = tuple(fleet.cluster.tuner.model.input_shape)
    return (rng.random((n,) + shape).astype(np.float32),
            rng.integers(0, 8, size=n))


class TestMultiTenantIngest:
    def test_ids_are_tenant_qualified(self):
        fleet = make_fleet(tenants=[TenantConfig(name="acme")])
        images, labels = images_of(6, fleet)
        ids, rejections = fleet.ingest(images, tenant="acme",
                                       train_labels=labels)
        assert rejections == []
        assert len(ids) == 6
        for pid in ids:
            tenant, _rest = split_key(pid)
            assert tenant == "acme"
            assert fleet.cluster.database.lookup(pid).location \
                in fleet.ring.shards

    def test_quota_rejections_do_not_consume_ids(self):
        images, _ = images_of(4, make_fleet())
        per_image = int(images[0].nbytes)
        fleet = make_fleet(tenants=[
            TenantConfig(name="acme", byte_quota=2 * per_image)])
        ids, rejections = fleet.ingest(images, tenant="acme")
        assert len(ids) == 2
        assert rejections == ["byte-quota", "byte-quota"]
        assert len(fleet.cluster.database) == 2
        books = fleet.tenants.to_dict()["acme"]
        assert books["offered"] == 4
        assert books["admitted"] == 2
        assert books["rejected"] == 2

    def test_unknown_tenant_is_loud(self):
        fleet = make_fleet(tenants=[TenantConfig(name="acme")])
        images, _ = images_of(1, fleet)
        with pytest.raises(UnknownTenantError):
            fleet.ingest(images, tenant="globex")

    def test_bad_shapes_rejected(self):
        fleet = make_fleet()
        with pytest.raises(ValueError, match="expected"):
            fleet.ingest(np.zeros((3, 16, 16), dtype=np.float32))
        images, _ = images_of(2, fleet)
        with pytest.raises(ValueError, match="train_labels"):
            fleet.ingest(images, train_labels=[1])

    def test_placement_summary_accounts_every_photo(self):
        fleet = make_fleet()
        images, labels = images_of(20, fleet)
        ids, _ = fleet.ingest(images, train_labels=labels)
        summary = fleet.placement_summary()
        assert sum(summary.values()) == len(ids)
        assert int(fleet.metrics.placements.total()) == len(ids)


class TestFanoutDistribution:
    def test_fanout_moves_fewer_tuner_bytes_at_equal_freshness(self):
        egress, versions = {}, {}
        for strategy in ("unicast", "fanout"):
            fleet = make_fleet(num_shards=8)
            images, labels = images_of(16, fleet)
            fleet.ingest(images, train_labels=labels)
            net, tuner = fleet.cluster.network, fleet.cluster.tuner.name
            before = sum(net.bytes_between(tuner, s.store_id)
                         for s in fleet.cluster.stores)
            fleet.finetune(epochs=1, num_runs=1,
                           fanout=(strategy == "fanout"))
            egress[strategy] = sum(
                net.bytes_between(tuner, s.store_id)
                for s in fleet.cluster.stores) - before
            versions[strategy] = sorted(
                {s.model_version for s in fleet.cluster.stores})
        assert egress["fanout"] < egress["unicast"]
        assert versions["fanout"] == versions["unicast"]
        assert len(versions["fanout"]) == 1

    def test_fanout_metrics_split_uplink_and_relay(self):
        fleet = make_fleet(num_shards=8, fanout=2)
        images, labels = images_of(16, fleet)
        fleet.ingest(images, train_labels=labels)
        fleet.finetune(epochs=1, num_runs=1)
        uplinks = int(fleet.metrics.fanout_sends.value(hop="uplink"))
        relays = int(fleet.metrics.fanout_sends.value(hop="relay"))
        assert uplinks == 2  # the Tuner pays min(fanout, N) sends
        assert uplinks + relays == len(fleet.cluster.stores)
        assert int(fleet.metrics.fanout_rounds.value()) == 1

    def test_unicast_fallback_is_plain_distribute(self):
        fleet = make_fleet(num_shards=3)
        images, labels = images_of(6, fleet)
        fleet.ingest(images, train_labels=labels)
        fleet.finetune(epochs=1, num_runs=1, fanout=False)
        assert int(fleet.metrics.fanout_rounds.value()) == 0
        assert {s.model_version for s in fleet.cluster.stores} \
            == {fleet.cluster.tuner.version}

    def test_fanout_routes_around_a_down_store(self):
        fleet = make_fleet(num_shards=6)
        images, labels = images_of(12, fleet)
        fleet.ingest(images, train_labels=labels)
        down = fleet.cluster.stores[0]
        down.fail()
        stats = fleet.distribute()
        assert down.store_id in stats.stores_missed
        alive = [s for s in fleet.cluster.stores if s is not down]
        assert {s.model_version for s in alive} \
            == {fleet.cluster.tuner.version}


class TestLoadAwarePlacement:
    def test_slowed_store_receives_fewer_placements(self):
        """Regression for the queue-depth blind spot: a store whose link
        is slow used to keep receiving its full round-robin share."""
        def run(slow_store=None):
            fleet = make_fleet()
            if slow_store is not None:
                FaultInjector([
                    AddLatency(at=1, seconds=1.0, count=10_000,
                               kind="ingest", dst=slow_store),
                ]).attach_fabric(fleet.cluster.network)
            images, labels = images_of(40, fleet)
            fleet.ingest(images, train_labels=labels)
            return fleet, fleet.placement_summary()

        baseline_fleet, baseline = run()
        slow = max(baseline, key=baseline.get)
        slowed_fleet, slowed = run(slow_store=slow)
        # the slowed store sheds most of its keyspace to ring successors
        assert slowed[slow] < baseline[slow]
        assert sum(slowed.values()) == sum(baseline.values()) == 40
        # the slow link forces strictly more bound-exceeded diversions
        # than the organic imbalance of an unperturbed fleet
        assert int(slowed_fleet.metrics.load_skips.value()) \
            > int(baseline_fleet.metrics.load_skips.value())
        # the diversion is visible in the observed queue depths
        loads = slowed_fleet.cluster.dataplane.loads()
        assert loads[slow] == max(loads.values())


class TestMembershipAccounting:
    def test_join_summary_is_exact(self):
        fleet = make_fleet(replication=2)
        images, labels = images_of(24, fleet)
        fleet.ingest(images, train_labels=labels)
        summary = fleet.join_shard()
        assert summary["num_shards"] == 5
        assert summary["photos_total"] == 24
        assert summary["objects_total"] == 48
        copies = summary["copies"]
        assert copies["objects_moved"] == copies["objects_received"]
        assert copies["objects_inflight"] == 0
        assert summary["moved_fraction"] == \
            copies["objects_moved"] / summary["objects_total"]
        assert int(fleet.metrics.shard_count.value()) == 5

    def test_leave_shrinks_the_fleet_everywhere(self):
        fleet = make_fleet(replication=2)
        images, labels = images_of(12, fleet)
        fleet.ingest(images, train_labels=labels)
        leaver = fleet.cluster.stores[-1].store_id
        fleet.leave_shard(leaver)
        assert leaver not in fleet.ring
        assert leaver not in [s.store_id for s in fleet.cluster.stores]
        assert leaver not in [s.store_id
                              for s in fleet.cluster.tuner.stores]
        assert int(fleet.metrics.shard_count.value()) == 3

    def test_joined_store_receives_future_model_updates(self):
        fleet = make_fleet(num_shards=3)
        images, labels = images_of(9, fleet)
        fleet.ingest(images, train_labels=labels)
        summary = fleet.join_shard()
        fleet.finetune(epochs=1, num_runs=1)
        newcomer = fleet.cluster._resolve_store(summary["shard"])
        assert newcomer.model_version == fleet.cluster.tuner.version


class TestFacade:
    def test_everything_else_delegates_to_the_cluster(self):
        fleet = make_fleet()
        assert fleet.stores is fleet.cluster.stores
        assert fleet.database is fleet.cluster.database
        assert fleet.config.num_stores == 4
        assert fleet.replication == 1
        with pytest.raises(AttributeError):
            fleet.no_such_attribute

    def test_shard_config_is_validated(self):
        with pytest.raises(ValueError, match="replication"):
            ShardedCluster(factory,
                           ShardConfig(num_shards=2, replication=3))


class TestDeprecatedAliases:
    @pytest.mark.parametrize("name", ["RingPlacement",
                                      "RoundRobinPlacement",
                                      "IngestDataPlane"])
    def test_alias_warns_once_and_resolves(self, name):
        import repro.core.dataplane as dataplane
        import repro.placement as placement

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            alias = getattr(placement, name)
        assert alias is getattr(dataplane, name)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.core.dataplane" in str(deprecations[0].message)

    def test_unknown_attribute_still_raises(self):
        import repro.placement as placement

        with pytest.raises(AttributeError, match="NoSuchThing"):
            placement.NoSuchThing

    def test_dir_lists_curated_api_and_aliases(self):
        import repro.placement as placement

        listing = dir(placement)
        assert "ShardedCluster" in listing
        assert "RingPlacement" in listing

    def test_top_level_exports(self):
        import repro

        assert repro.ShardedCluster is ShardedCluster
        assert "ShardConfig" in repro.__all__
