"""Quota ledgers and tenant namespaces.

The two conservation laws (``offered == admitted + rejected``,
``charged == resident + released``) are exercised directly, then swept
with hypothesis over arbitrary offer/release interleavings — the laws
must hold after *every* step, not just at quiescence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.placement import (
    PlacementMetrics,
    QuotaLedger,
    TenantConfig,
    TenantNamespace,
    TenantRegistry,
    UnknownTenantError,
    split_key,
)


class TestQuotaLedger:
    def test_unmetered_admits_everything(self):
        ledger = QuotaLedger()
        assert all(ledger.offer(100) is None for _ in range(50))
        assert ledger.admitted == 50
        assert ledger.rejected == 0
        assert ledger.resident_bytes == 5000

    def test_byte_quota_rejection_names_the_limit(self):
        ledger = QuotaLedger(byte_quota=250)
        assert ledger.offer(100) is None
        assert ledger.offer(100) is None
        assert ledger.offer(100) == "byte-quota"
        # headroom freed by a release admits again
        ledger.release(100)
        assert ledger.offer(100) is None
        assert ledger.offered == ledger.admitted + ledger.rejected == 4

    def test_request_quota_rejection(self):
        ledger = QuotaLedger(request_quota=2)
        assert ledger.offer(1) is None
        assert ledger.offer(1) is None
        assert ledger.offer(1) == "request-quota"
        # request quota is lifetime: releasing does not re-admit
        ledger.release(1)
        assert ledger.offer(1) == "request-quota"

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="nbytes"):
            QuotaLedger().offer(-1)

    def test_release_without_admit_is_loud(self):
        with pytest.raises(RuntimeError, match="without a matching"):
            QuotaLedger().release(0)

    def test_release_more_bytes_than_resident_is_loud(self):
        ledger = QuotaLedger()
        ledger.offer(10)
        with pytest.raises(ValueError, match="cannot release"):
            ledger.release(11)

    def test_check_catches_tampering(self):
        ledger = QuotaLedger()
        ledger.offer(1)
        ledger.admitted += 1  # skew the books
        with pytest.raises(RuntimeError, match="conservation violated"):
            ledger.check()

    def test_to_dict_snapshot(self):
        ledger = QuotaLedger(byte_quota=10)
        ledger.offer(8)
        ledger.offer(8)
        snapshot = ledger.to_dict()
        assert snapshot["offered"] == 2
        assert snapshot["admitted"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["resident_bytes"] == 8

    @given(ops=st.lists(
        st.one_of(st.integers(0, 64), st.just("release")), max_size=60),
        byte_quota=st.one_of(st.none(), st.integers(1, 256)),
        request_quota=st.one_of(st.none(), st.integers(1, 20)))
    @settings(max_examples=60, deadline=None)
    def test_laws_hold_under_any_interleaving(self, ops, byte_quota,
                                              request_quota):
        ledger = QuotaLedger(byte_quota=byte_quota,
                             request_quota=request_quota)
        resident_sizes = []
        for op in ops:
            if op == "release":
                if resident_sizes:
                    ledger.release(resident_sizes.pop())
            elif ledger.offer(op) is None:
                resident_sizes.append(op)
            # both laws settle after every step (offer/release call
            # check() themselves; this re-checks from the outside)
            ledger.check()
            assert ledger.resident == len(resident_sizes)
            assert ledger.resident_bytes == sum(resident_sizes)
            if byte_quota is not None:
                assert ledger.resident_bytes <= byte_quota
            if request_quota is not None:
                assert ledger.admitted <= request_quota


class TestNamespacesAndKeys:
    def test_qualify_and_owns(self):
        namespace = TenantNamespace(TenantConfig(name="acme"))
        key = namespace.qualify("photo-0001")
        assert key == "acme/photo-0001"
        assert namespace.owns(key)
        assert not namespace.owns("globex/photo-0001")

    def test_split_key_roundtrip(self):
        assert split_key("acme/photo-0001") == ("acme", "photo-0001")
        assert split_key("acme/u1/p2") == ("acme", "u1/p2")

    @pytest.mark.parametrize("bad", ["photo-0001", "/photo", "acme/", ""])
    def test_split_key_rejects_unqualified(self, bad):
        with pytest.raises(ValueError, match="tenant-qualified"):
            split_key(bad)


class TestTenantRegistry:
    def test_empty_registry_gets_default_tenant(self):
        registry = TenantRegistry()
        assert registry.names == ["default"]
        assert registry.admit("default", 10) is None

    def test_duplicate_tenant_rejected(self):
        registry = TenantRegistry([TenantConfig(name="acme")])
        with pytest.raises(ValueError, match="already registered"):
            registry.add(TenantConfig(name="acme"))

    def test_unknown_tenant_is_typed_error(self):
        registry = TenantRegistry([TenantConfig(name="acme")])
        with pytest.raises(UnknownTenantError):
            registry.admit("globex", 10)

    def test_admission_is_metric_accounted(self):
        metrics = PlacementMetrics(MetricsRegistry())
        registry = TenantRegistry(
            [TenantConfig(name="acme", byte_quota=100)], metrics=metrics)
        assert registry.admit("acme", 80) is None
        assert registry.admit("acme", 80) == "byte-quota"
        assert metrics.tenant_admitted.value(tenant="acme") == 1
        assert metrics.tenant_rejected.value(
            tenant="acme", reason="byte-quota") == 1
        assert metrics.tenant_bytes.value(tenant="acme") == 80
        registry.release("acme", 80)
        assert metrics.tenant_bytes.value(tenant="acme") == 0

    def test_check_settles_every_namespace(self):
        registry = TenantRegistry([TenantConfig(name="acme"),
                                   TenantConfig(name="globex")])
        registry.admit("acme", 5)
        registry.admit("globex", 7)
        registry.check()
        books = registry.to_dict()
        assert books["acme"]["resident_bytes"] == 5
        assert books["globex"]["resident_bytes"] == 7
        assert len(registry) == 2
        assert "acme" in registry
