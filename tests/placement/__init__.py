"""Tests for the geo-sharded placement layer (repro.placement)."""
