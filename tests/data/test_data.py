"""Tests for the drifting photo world, dataset profiles, and loaders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.datasets import PROFILES, profile, train_test_split
from repro.data.drift import (
    DAILY_GROWTH_RATE,
    NEW_CLASS_FRACTION,
    DriftingPhotoWorld,
    WorldConfig,
)
from repro.data.loader import batch_iter, normalize_images, split_rounds


class TestWorldConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(initial_classes=1)
        with pytest.raises(ValueError):
            WorldConfig(initial_classes=10, max_classes=5)


class TestDriftingWorld:
    def test_sample_shapes_and_ranges(self, small_world):
        x, y = small_world.sample(32, 0)
        assert x.shape == (32, 3, 16, 16)
        assert x.dtype == np.float32
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert y.dtype == np.int64

    def test_labels_only_from_available_classes(self, small_world):
        _, y = small_world.sample(64, 0)
        assert set(np.unique(y)) <= set(small_world.classes_at(0))

    def test_new_classes_appear_over_time(self, small_world):
        assert small_world.num_classes_at(0) == 6
        assert small_world.num_classes_at(30) == 8

    def test_negative_day_rejected(self, small_world):
        with pytest.raises(ValueError):
            small_world.classes_at(-1)

    def test_prototypes_drift_monotonically(self, small_world):
        p0 = small_world.prototypes_at(0)
        p5 = small_world.prototypes_at(5)
        p10 = small_world.prototypes_at(10)
        d5 = np.linalg.norm(p5 - p0)
        d10 = np.linalg.norm(p10 - p0)
        assert 0 < d5 < d10

    def test_same_seed_same_samples(self):
        cfg = WorldConfig(seed=7)
        a = DriftingPhotoWorld(cfg).sample(8, 3)
        b = DriftingPhotoWorld(cfg).sample(8, 3)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_distribution_shift_is_detectable(self, small_world):
        """Same classes, different days -> visibly different image stats."""
        x0, _ = small_world.sample(128, 0, rng=np.random.default_rng(1))
        x20, _ = small_world.sample(128, 20, rng=np.random.default_rng(1))
        assert np.abs(x0.mean(axis=0) - x20.mean(axis=0)).mean() > 1e-3

    def test_growth_model(self, small_world):
        assert small_world.dataset_size_at(0, 1000) == 1000
        one_day = small_world.dataset_size_at(1, 1000)
        assert one_day == pytest.approx(1000 * (1 + DAILY_GROWTH_RATE), abs=1)
        assert small_world.dataset_size_at(14, 1000) > one_day

    def test_sample_validation(self, small_world):
        with pytest.raises(ValueError):
            small_world.sample(0, 0)
        with pytest.raises(ValueError):
            small_world.sample(4, 0, classes=[])

    def test_class_restriction(self, small_world):
        _, y = small_world.sample(32, 0, classes=[0, 1])
        assert set(np.unique(y)) <= {0, 1}

    def test_new_class_fraction_roughly_5pct(self):
        world = DriftingPhotoWorld(WorldConfig(
            initial_classes=6, max_classes=12, new_class_interval_days=1,
        ))
        # day 3: classes 6..8 are 'recent'
        _, y = world.sample(4000, 3, rng=np.random.default_rng(0))
        recent = np.isin(y, [6, 7, 8]).mean()
        assert recent == pytest.approx(NEW_CLASS_FRACTION, abs=0.02)

    @settings(max_examples=10, deadline=None)
    @given(day=st.integers(0, 40), n=st.integers(1, 64))
    def test_property_samples_always_valid(self, day, n):
        world = DriftingPhotoWorld(WorldConfig(
            initial_classes=6, max_classes=8, image_size=16, noise=0.3,
        ))
        x, y = world.sample(n, day)
        assert len(x) == len(y) == n
        assert np.isfinite(x).all()


class TestProfiles:
    def test_three_paper_datasets(self):
        assert set(PROFILES) == {"CIFAR100", "ImageNet-1K", "ImageNet-21K"}

    def test_difficulty_ordering(self):
        assert (PROFILES["CIFAR100"].noise < PROFILES["ImageNet-1K"].noise
                < PROFILES["ImageNet-21K"].noise)
        assert (PROFILES["CIFAR100"].max_classes
                < PROFILES["ImageNet-21K"].max_classes)

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile("MNIST")

    def test_train_test_split_disjoint_seeds(self, small_world):
        x_tr, y_tr, x_te, y_te = train_test_split(small_world, 0, 32, 16)
        assert len(x_tr) == 32 and len(x_te) == 16
        # distinct draws (overwhelmingly likely to differ)
        assert not np.array_equal(x_tr[:16], x_te)


class TestLoader:
    def test_batch_iter_covers_dataset_once(self, rng):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        seen = []
        for xb, yb in batch_iter(x, y, 3, rng):
            assert len(xb) == len(yb)
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_iter_respects_order_without_shuffle(self):
        x = np.arange(6).reshape(6, 1)
        y = np.arange(6)
        batches = list(batch_iter(x, y, 4, shuffle=False))
        assert batches[0][1].tolist() == [0, 1, 2, 3]

    def test_batch_iter_validation(self, rng):
        with pytest.raises(ValueError):
            list(batch_iter(np.zeros(3), np.zeros(2), 1, rng))
        with pytest.raises(ValueError):
            list(batch_iter(np.zeros(3), np.zeros(3), 0, rng))

    def test_split_rounds_partitions_in_order(self):
        x = np.arange(10)
        y = np.arange(10)
        rounds = split_rounds(x, y, 3)
        assert len(rounds) == 3
        assert np.concatenate([r[0] for r in rounds]).tolist() == list(range(10))

    def test_split_rounds_validation(self):
        with pytest.raises(ValueError):
            split_rounds(np.zeros(2), np.zeros(2), 0)
        with pytest.raises(ValueError):
            split_rounds(np.zeros(2), np.zeros(2), 3)

    def test_normalize_images_centres(self):
        x = np.full((2, 3, 2, 2), 0.5, dtype=np.float32)
        assert np.allclose(normalize_images(x), 0.0)
