"""Unit tests for the deterministic FaultInjector."""

import pytest

from repro.core.fabric import NetworkFabric
from repro.core.npe import ThreadedPipeline
from repro.core.pipestore import PipeStore
from repro.faults import (
    AddLatency,
    DropMessages,
    FaultConfigError,
    FaultInjector,
    MessageDroppedError,
    SlowAccelerator,
    SlowStage,
    StoreCrash,
    StoreRecover,
    TunerCrash,
    TunerCrashError,
    TunerRecover,
)


def make_fleet(n=3):
    return [PipeStore(f"pipestore-{i}") for i in range(n)]


class FakeTuner:
    def __init__(self, name="tuner"):
        self.name = name
        self.up = True

    def fail(self):
        self.up = False

    def repair(self):
        self.up = True


class TestScheduleFiring:
    def test_events_fire_at_their_tick(self):
        stores = make_fleet()
        injector = FaultInjector([
            StoreCrash(at=2, store_id="pipestore-1"),
            StoreRecover(at=4, store_id="pipestore-1"),
        ])
        for store in stores:
            injector.register_store(store)
        injector.advance()  # t=1
        assert stores[1].is_available
        injector.advance()  # t=2: crash fires
        assert not stores[1].is_available
        assert injector.crashed_stores() == ["pipestore-1"]
        injector.advance(2)  # t=4: recover fires
        assert stores[1].is_available
        assert injector.pending == []

    def test_unknown_store_in_schedule_is_loud(self):
        injector = FaultInjector([StoreCrash(at=1, store_id="nope")])
        with pytest.raises(FaultConfigError, match="nope"):
            injector.advance()

    def test_slow_accelerator_sets_factor(self):
        stores = make_fleet(1)
        injector = FaultInjector([
            SlowAccelerator(at=1, store_id="pipestore-0", factor=3.0)])
        injector.register_store(stores[0])
        injector.advance()
        assert stores[0].slowdown == 3.0

    def test_describe_lists_fired_and_pending(self):
        injector = FaultInjector([
            DropMessages(at=1), DropMessages(at=99)])
        injector.advance()
        text = injector.describe()
        assert "t=1 drop" in text
        assert "(pending) t=99 drop" in text
        assert FaultInjector([]).describe() == "(empty schedule)"


class TestFabricHook:
    def test_messages_advance_clock_and_drop(self):
        fabric = NetworkFabric()
        injector = FaultInjector([
            DropMessages(at=2, count=1)]).attach_fabric(fabric)
        fabric.send("a", "b", 10, "x")  # tick 1: fine
        with pytest.raises(MessageDroppedError):
            fabric.send("a", "b", 20, "x")  # tick 2: dropped
        fabric.send("a", "b", 30, "x")  # budget exhausted
        assert injector.clock == 3
        assert fabric.dropped_count == 1
        assert fabric.dropped_bytes == 20
        # the dropped transfer was never accounted as delivered
        assert fabric.total_bytes == 40
        assert len(injector.dropped) == 1
        assert injector.dropped[0].num_bytes == 20

    def test_kind_filtered_drop_passes_other_traffic(self):
        fabric = NetworkFabric()
        FaultInjector([
            DropMessages(at=1, count=5, kind="features")]
        ).attach_fabric(fabric)
        fabric.send("a", "b", 10, "labels")  # not matched
        with pytest.raises(MessageDroppedError):
            fabric.send("a", "b", 10, "features")

    def test_injected_latency_charged_to_wire_time(self):
        fabric = NetworkFabric()
        injector = FaultInjector([
            AddLatency(at=1, seconds=0.5, count=2)]).attach_fabric(fabric)
        base = fabric.transfer_seconds()
        fabric.send("a", "b", 8, "x")
        fabric.send("a", "b", 8, "x")
        fabric.send("a", "b", 8, "x")  # budget spent, no extra charge
        assert injector.injected_latency_s == pytest.approx(1.0)
        assert fabric.transfer_seconds() - base > 1.0

    def test_local_handoffs_do_not_tick_the_clock(self):
        fabric = NetworkFabric()
        injector = FaultInjector([]).attach_fabric(fabric)
        fabric.send("a", "a", 10, "x")
        assert injector.clock == 0

    def test_detach_unhooks_fabric(self):
        fabric = NetworkFabric()
        injector = FaultInjector([
            DropMessages(at=1, count=99)]).attach_fabric(fabric)
        injector.detach()
        fabric.send("a", "b", 10, "x")  # no drop, no tick
        assert injector.clock == 0
        assert fabric.fault_filter is None


class TestPipelineHook:
    def test_stage_hook_ticks_per_item(self):
        pipe = ThreadedPipeline([("noop", lambda x: x)])
        injector = FaultInjector([]).attach_pipeline(pipe)
        pipe.run(range(5))
        assert injector.clock == 5

    def test_slow_stage_adds_wall_time(self):
        import time

        pipe = ThreadedPipeline([("work", lambda x: x)])
        FaultInjector([
            SlowStage(at=1, stage="work", seconds=0.02)]
        ).attach_pipeline(pipe)
        start = time.perf_counter()
        pipe.run(range(5))
        elapsed = time.perf_counter() - start
        # first item ticks the clock to 1 and arms the slowdown; at least
        # the remaining 4 items pay 20ms each
        assert elapsed >= 0.95 * 4 * 0.02
        assert pipe.stats[0].busy_seconds >= 0.95 * 4 * 0.02


class TestTunerEvents:
    def test_targeted_crash_blocks_only_tuner_traffic(self):
        fabric = NetworkFabric()
        tuner = FakeTuner()
        injector = FaultInjector([
            TunerCrash(at=1, tuner_id="tuner"),
            TunerRecover(at=3, tuner_id="tuner"),
        ])
        injector.register_tuner(tuner)
        injector.attach_fabric(fabric)
        with pytest.raises(TunerCrashError):
            fabric.send("tuner", "pipestore-0", 8, "x")  # t=1: crash fires
        assert not tuner.up
        assert injector.crashed_tuners() == ["tuner"]
        fabric.send("a", "b", 8, "x")  # t=2: unrelated traffic flows
        fabric.send("a", "b", 8, "x")  # t=3: recover fires
        assert tuner.up
        assert injector.crashed_tuners() == []
        fabric.send("tuner", "pipestore-0", 8, "x")

    def test_traffic_to_a_crashed_tuner_also_fails(self):
        fabric = NetworkFabric()
        injector = FaultInjector([TunerCrash(at=1, tuner_id="tuner")])
        injector.attach_fabric(fabric)
        fabric.send("a", "b", 8, "x")  # t=1 arms the crash
        with pytest.raises(TunerCrashError):
            fabric.send("pipestore-0", "tuner", 8, "features")

    def test_legacy_global_crash_raises_on_everything(self):
        fabric = NetworkFabric()
        injector = FaultInjector([TunerCrash(at=1)]).attach_fabric(fabric)
        with pytest.raises(TunerCrashError):
            fabric.send("a", "b", 8, "x")
        assert injector.tuner_crashed
        with pytest.raises(TunerCrashError):
            fabric.send("c", "d", 8, "y")  # even traffic far from the tuner

    def test_detach_clears_targeted_crashes(self):
        fabric = NetworkFabric()
        injector = FaultInjector([
            TunerCrash(at=1, tuner_id="tuner")]).attach_fabric(fabric)
        fabric.send("a", "b", 8, "x")
        injector.detach()
        assert injector.crashed_tuners() == []


class TestRandomSchedule:
    IDS = ["pipestore-0", "pipestore-1", "pipestore-2"]

    def test_same_seed_same_schedule(self):
        a = FaultInjector.random_schedule(self.IDS, horizon=50, seed=7)
        b = FaultInjector.random_schedule(self.IDS, horizon=50, seed=7)
        assert a == b
        c = FaultInjector.random_schedule(self.IDS, horizon=50, seed=8)
        assert a != c

    def test_events_within_horizon_and_sorted(self):
        for seed in range(10):
            schedule = FaultInjector.random_schedule(
                self.IDS, horizon=30, seed=seed)
            assert all(1 <= e.at for e in schedule)
            assert [e.at for e in schedule] == sorted(e.at for e in schedule)
            crashes = [e for e in schedule if isinstance(e, StoreCrash)]
            assert all(e.at <= 30 for e in crashes)

    def test_never_takes_whole_fleet_down(self):
        """Replaying any generated schedule leaves >= 1 store up at every
        tick (max_concurrent_crashes defaults to n - 1)."""
        for seed in range(25):
            schedule = FaultInjector.random_schedule(
                self.IDS, horizon=40, seed=seed)
            down = set()
            for event in schedule:
                if isinstance(event, StoreCrash):
                    down.add(event.store_id)
                elif isinstance(event, StoreRecover):
                    down.discard(event.store_id)
                assert len(down) < len(self.IDS), (seed, schedule)

    def test_crash_cap_zero_generates_no_crashes(self):
        for seed in range(10):
            schedule = FaultInjector.random_schedule(
                self.IDS, horizon=40, seed=seed, num_events=12,
                max_concurrent_crashes=0)
            assert not any(isinstance(e, StoreCrash) for e in schedule)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector.random_schedule([], horizon=10, seed=0)
        with pytest.raises(ValueError):
            FaultInjector.random_schedule(self.IDS, horizon=0, seed=0)

    def test_tuner_band_generates_paired_events(self):
        saw_tuner = False
        for seed in range(25):
            schedule = FaultInjector.random_schedule(
                self.IDS, horizon=40, seed=seed, num_events=12,
                tuner_id="tuner")
            crashes = sorted((e.at for e in schedule
                              if isinstance(e, TunerCrash)))
            recovers = sorted((e.at for e in schedule
                               if isinstance(e, TunerRecover)))
            # every crash is paired with a later recover, and outages
            # never overlap (at most one outstanding)
            assert len(crashes) == len(recovers)
            saw_tuner = saw_tuner or bool(crashes)
            for crash_at, recover_at in zip(crashes, recovers):
                assert crash_at < recover_at
            for recover_at, next_crash_at in zip(recovers, crashes[1:]):
                assert recover_at <= next_crash_at
            for event in schedule:
                if isinstance(event, (TunerCrash, TunerRecover)):
                    assert event.tuner_id == "tuner"
        assert saw_tuner  # the ~15% band fired somewhere in 25 seeds

    def test_default_tuner_id_generates_no_tuner_events(self):
        for seed in range(25):
            schedule = FaultInjector.random_schedule(
                self.IDS, horizon=40, seed=seed, num_events=12)
            assert not any(isinstance(e, (TunerCrash, TunerRecover))
                           for e in schedule)

    def test_tuner_schedule_is_deterministic(self):
        a = FaultInjector.random_schedule(self.IDS, horizon=40, seed=5,
                                          tuner_id="tuner")
        b = FaultInjector.random_schedule(self.IDS, horizon=40, seed=5,
                                          tuner_id="tuner")
        assert a == b

    def test_replay_is_deterministic_against_a_fabric(self):
        """Same schedule + same message sequence => identical drops."""
        def run():
            fabric = NetworkFabric()
            injector = FaultInjector(FaultInjector.random_schedule(
                self.IDS, horizon=20, seed=3, num_events=8))
            for sid in self.IDS:
                injector.register_store(PipeStore(sid))
            injector.attach_fabric(fabric)
            outcomes = []
            for i in range(30):
                try:
                    fabric.send("a", "b", 10 + i, "x")
                    outcomes.append("ok")
                except MessageDroppedError:
                    outcomes.append("drop")
            return outcomes, injector.injected_latency_s

        first, second = run(), run()
        assert first == second
