"""Unit tests for the retry policy and ``call_with_retry``."""

import pytest

from repro.faults import RetryPolicy, TransientFaultError, call_with_retry


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, error=TransientFaultError):
        self.failures = failures
        self.calls = 0
        self.error = error

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"attempt {self.calls} failed")
        return "ok"


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0,
                             max_delay_s=0.05)
        assert policy.delay_for(1) == pytest.approx(0.01)
        assert policy.delay_for(2) == pytest.approx(0.02)
        assert policy.delay_for(3) == pytest.approx(0.04)
        assert policy.delay_for(4) == pytest.approx(0.05)  # capped
        assert policy.delay_for(10) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)

    def test_backoff_is_accounted_not_slept_by_default(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=10.0,
                             max_delay_s=60.0)
        flaky = Flaky(2)
        import time

        start = time.perf_counter()
        assert call_with_retry(flaky, policy) == "ok"
        # 10s + 20s of nominal backoff were *recorded*, not spent
        assert time.perf_counter() - start < 1.0
        assert policy.backoff_s == pytest.approx(10.0 + 20.0)

    def test_sleep_callable_used_when_given(self):
        slept = []
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.25,
                             sleep=slept.append)
        call_with_retry(Flaky(1), policy)
        assert slept == [0.25]


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_attempts=4)
        flaky = Flaky(3)
        assert call_with_retry(flaky, policy) == "ok"
        assert flaky.calls == 4
        assert policy.retries == 3
        assert policy.giveups == 0

    def test_gives_up_and_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3)
        flaky = Flaky(99)
        with pytest.raises(TransientFaultError, match="attempt 3"):
            call_with_retry(flaky, policy)
        assert flaky.calls == 3
        assert policy.giveups == 1

    def test_non_retryable_error_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        flaky = Flaky(99, error=KeyError)
        with pytest.raises(KeyError):
            call_with_retry(flaky, policy)
        assert flaky.calls == 1
        assert policy.retries == 0

    def test_custom_retryable_tuple(self):
        policy = RetryPolicy(max_attempts=3)
        flaky = Flaky(1, error=TimeoutError)
        assert call_with_retry(flaky, policy,
                               retryable=(TimeoutError,)) == "ok"

    def test_on_retry_callback_sees_each_failure(self):
        policy = RetryPolicy(max_attempts=4)
        seen = []
        call_with_retry(Flaky(2), policy,
                        on_retry=lambda k, e: seen.append((k, str(e))))
        assert [k for k, _ in seen] == [1, 2]
        assert "failed" in seen[0][1]

    def test_single_attempt_policy_never_retries(self):
        policy = RetryPolicy(max_attempts=1)
        flaky = Flaky(1)
        with pytest.raises(TransientFaultError):
            call_with_retry(flaky, policy)
        assert flaky.calls == 1

    def test_accounting_accumulates_across_calls(self):
        policy = RetryPolicy(max_attempts=2)
        call_with_retry(Flaky(0), policy)
        call_with_retry(Flaky(1), policy)
        assert policy.calls == 2
        assert policy.attempts == 3
        assert policy.retries == 1
