"""Targeted tests for the fault-tolerance machinery in ``repro.core``:
retrying dispatch, version-aware distribution, delta integrity, orphan
re-ingest, and reconciliation after repair."""

import numpy as np
import pytest

from repro.core import checknrun
from repro.core.cluster import NDPipeCluster
from repro.faults import (
    DropMessages,
    FaultInjector,
    RetryPolicy,
    StoreCrash,
    StoreRecover,
)
from repro.models.registry import tiny_model


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


@pytest.fixture
def loaded(small_world):
    cluster = NDPipeCluster(factory, num_stores=3, nominal_raw_bytes=2048)
    x, y = small_world.sample(45, 0, rng=np.random.default_rng(2))
    ids = cluster.ingest(x, train_labels=y)
    return cluster, ids


class TestRetriedDispatch:
    def test_dropped_inference_trigger_is_retried(self, loaded):
        cluster, _ = loaded
        cluster.finetune(epochs=1)
        FaultInjector([
            DropMessages(at=1, count=2, kind="inference-request"),
        ]).attach(cluster)
        stats = cluster.offline_relabel()
        assert stats.photos_processed == 45
        assert not stats.degraded
        assert cluster.retry.retries >= 2

    def test_store_recovering_between_attempts_is_reached(self, loaded):
        """Crash on the first dispatch tick, recover one tick later: the
        retry loop reaches the store on its second attempt."""
        cluster, _ = loaded
        cluster.finetune(epochs=1)
        FaultInjector([
            StoreCrash(at=1, store_id="pipestore-0"),
            StoreRecover(at=2, store_id="pipestore-0"),
        ]).attach(cluster)
        stats = cluster.offline_relabel()
        assert stats.photos_processed == 45
        assert not stats.degraded

    def test_dropped_delta_send_is_retried(self, loaded):
        cluster, _ = loaded
        FaultInjector([
            DropMessages(at=1, count=1, kind="model-delta"),
        ]).attach(cluster)
        report = cluster.finetune(epochs=1)
        assert not report.degraded
        dist = cluster.tuner.distributions[-1]
        assert dist.stores_missed == []
        assert all(s.model_version == 1 for s in cluster.stores)

    def test_ingest_rides_out_dropped_transfers(self, small_world):
        cluster = NDPipeCluster(factory, num_stores=3,
                                nominal_raw_bytes=2048)
        FaultInjector([
            DropMessages(at=3, count=2, kind="ingest"),
        ]).attach(cluster)
        x, y = small_world.sample(9, 0, rng=np.random.default_rng(1))
        ids = cluster.ingest(x, train_labels=y)
        assert len(ids) == 9
        assert len(cluster.database) == 9
        assert cluster.network.dropped_count == 2

    def test_custom_retry_policy_is_threaded_through(self, small_world):
        policy = RetryPolicy(max_attempts=7, base_delay_s=0.001)
        cluster = NDPipeCluster(factory, num_stores=2,
                                retry_policy=policy)
        assert cluster.tuner.retry is policy
        x, y = small_world.sample(6, 0, rng=np.random.default_rng(1))
        FaultInjector([
            DropMessages(at=1, count=5, kind="ingest"),
        ]).attach(cluster)
        cluster.ingest(x, train_labels=y)
        # 5 consecutive drops would exhaust the default 4-attempt policy;
        # the 7-attempt policy placed every photo without evictions
        assert policy.retries >= 5
        assert len(cluster.database) == 6


class TestVersionAwareDistribution:
    def test_stale_store_gets_full_resync_not_delta(self, loaded):
        """A store that missed round 1 must not have round 2's delta
        (encoded against base v1) applied to its v0 replica."""
        cluster, _ = loaded
        behind = cluster.stores[2]
        behind.fail()
        cluster.finetune(epochs=1)  # round 1: behind misses v1
        behind.repair()
        report = cluster.finetune(epochs=1)  # round 2: behind is at v0
        assert not report.skipped_stores
        dist = cluster.tuner.distributions[-1]
        assert dist.stores_resynced == ["pipestore-2"]
        assert dist.stores_missed == []
        assert behind.model_version == 2
        tuner_state = cluster.tuner.model.state_dict()
        for key, value in behind.model.state_dict().items():
            assert np.allclose(value, tuner_state[key], atol=1e-12), key

    def test_distribution_stats_degraded_flag(self):
        from repro.core.tuner import DistributionStats

        clean = DistributionStats(version=1, full_model_bytes=10,
                                  bytes_per_store=5, used_delta=True)
        assert not clean.degraded
        clean.stores_missed.append("s0")
        assert clean.degraded


class TestDeltaIntegrity:
    def _states(self):
        old = {"w": np.arange(64, dtype=np.float64).reshape(8, 8),
               "b": np.zeros(8)}
        new = {"w": old["w"] + 0.5, "b": old["b"] - 1.0}
        return old, new

    def test_roundtrip_still_exact(self):
        old, new = self._states()
        blob = checknrun.encode_delta(old, new)
        out = checknrun.apply_delta(old, blob)
        for key in new:
            assert np.array_equal(out[key], new[key])

    def test_corrupt_blob_raises_loudly(self):
        old, new = self._states()
        blob = bytearray(checknrun.encode_delta(old, new))
        blob[-1] ^= 0xFF  # flip a bit in the compressed body
        with pytest.raises(checknrun.DeltaError, match="checksum"):
            checknrun.apply_delta(old, bytes(blob))

    def test_corrupt_checksum_field_raises(self):
        old, new = self._states()
        blob = bytearray(checknrun.encode_delta(old, new))
        blob[9] ^= 0x01  # the stored crc32 itself
        with pytest.raises(checknrun.DeltaError, match="checksum"):
            checknrun.apply_delta(old, bytes(blob))

    def test_truncated_blob_raises(self):
        with pytest.raises(checknrun.DeltaError, match="truncated"):
            checknrun.apply_delta({}, b"CNR2\x00\x00\x00")

    def test_old_wire_version_rejected(self):
        # CNR1 blobs (float64 arithmetic diffs) must fail loudly, not be
        # misparsed by the CNR2 reader
        with pytest.raises(checknrun.DeltaError, match="magic"):
            checknrun.apply_delta({}, b"CNR1" + b"\x00" * 16)


class TestOrphanReingest:
    def test_reingest_moves_journalled_photos(self, loaded):
        cluster, ids = loaded
        dead = cluster.stores[0]
        orphans = cluster.database.ids_at("pipestore-0")
        dead.fail()
        moved = cluster.reingest_orphans("pipestore-0")
        assert sorted(moved) == orphans
        for pid in moved:
            record = cluster.database.lookup(pid)
            assert record.location != "pipestore-0"
            new_store = next(s for s in cluster.stores
                             if s.store_id == record.location)
            assert new_store.objects.exists(new_store.objects.raw_key(pid))
            assert new_store.has_train_label(pid)

    def test_reingest_is_idempotent(self, loaded):
        cluster, _ = loaded
        cluster.stores[0].fail()
        first = cluster.reingest_orphans("pipestore-0")
        assert first
        assert cluster.reingest_orphans("pipestore-0") == []

    def test_reingest_without_journal_moves_nothing(self, small_world):
        cluster = NDPipeCluster(factory, num_stores=3,
                                journal_uploads=False)
        x, y = small_world.sample(9, 0, rng=np.random.default_rng(3))
        cluster.ingest(x, train_labels=y)
        cluster.stores[0].fail()
        assert cluster.reingest_orphans("pipestore-0") == []
        # photos stay addressed to the dead store, awaiting repair
        assert cluster.database.ids_at("pipestore-0")

    def test_recover_reconciles_moved_photos(self, loaded):
        cluster, ids = loaded
        dead = cluster.stores[0]
        stranded = set(cluster.database.ids_at("pipestore-0"))
        dead.fail()
        cluster.reingest_orphans("pipestore-0")
        cluster.finetune(epochs=1)
        cluster.recover("pipestore-0")
        # the stale copies were evicted: no photo is trainable twice
        assert not (set(dead.photo_ids()) & stranded)
        assert not any(dead.has_train_label(pid) for pid in stranded)
        assert dead.model_version == cluster.tuner.version
        # fleet-wide label accounting is still exact
        total = sum(len(cluster.database.ids_at(s.store_id))
                    for s in cluster.stores)
        assert total == len(ids)

    def test_recover_unknown_store_raises(self, loaded):
        cluster, _ = loaded
        with pytest.raises(KeyError):
            cluster.recover("pipestore-9")


class TestRelabelSkipAccounting:
    """Regression for the silent-skip bug: ``offline_relabel`` used to
    drop unavailable stores from the campaign without a trace."""

    def test_skip_is_visible_in_stats(self, loaded):
        cluster, _ = loaded
        cluster.finetune(epochs=1)
        cluster.stores[1].fail()
        stats = cluster.offline_relabel()
        assert stats.stores_skipped == ["pipestore-1"]
        assert stats.photos_deferred == 15
        assert stats.degraded
        assert stats.photos_processed == 30

    def test_healthy_campaign_reports_clean(self, loaded):
        cluster, _ = loaded
        cluster.finetune(epochs=1)
        stats = cluster.offline_relabel()
        assert stats.stores_skipped == []
        assert stats.photos_deferred == 0
        assert not stats.degraded

    def test_deferred_photos_relabel_after_repair(self, loaded):
        cluster, _ = loaded
        cluster.finetune(epochs=1)
        cluster.stores[1].fail()
        cluster.offline_relabel()
        cluster.recover("pipestore-1")
        stats = cluster.offline_relabel()
        assert stats.photos_processed == 15
        assert not stats.degraded
        assert cluster.database.outdated_ids(cluster.tuner.version) == []


class TestAccountedCompute:
    def test_slowdown_scales_busy_seconds(self, loaded):
        cluster, _ = loaded
        store = cluster.stores[0]
        ids = store.photo_ids()[:10]
        store.busy_seconds = 0.0
        store.offline_infer(ids)
        healthy = store.busy_seconds
        store.slowdown = 3.0
        store.busy_seconds = 0.0
        store.offline_infer(ids)
        assert store.busy_seconds == pytest.approx(3.0 * healthy)

    def test_recover_resets_slowdown(self, loaded):
        cluster, _ = loaded
        store = cluster.stores[0]
        store.slowdown = 4.0
        store.fail()
        cluster.recover(store)
        assert store.slowdown == 1.0
