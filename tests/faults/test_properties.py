"""Property-style tests for ingest placement under arbitrary failures.

The central claim: for *every* subset of failed stores,
``_next_available_store`` either returns an available store or raises
``StoreUnavailableError`` — and it raises only when the whole fleet is
down.  With 4 stores the subset space is tiny, so the test enumerates it
exhaustively rather than sampling; a hypothesis sweep then drives random
fail/repair/place interleavings against a model of round-robin fairness.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import NDPipeCluster
from repro.core.pipestore import StoreUnavailableError
from repro.models.registry import tiny_model

NUM_STORES = 4


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


@pytest.fixture(scope="module")
def cluster():
    return NDPipeCluster(factory, num_stores=NUM_STORES,
                         nominal_raw_bytes=2048)


def all_subsets(ids):
    for r in range(len(ids) + 1):
        yield from itertools.combinations(ids, r)


class TestEverySubsetOfFailures:
    def test_succeeds_or_raises_exactly_when_all_down(self, cluster):
        for failed in all_subsets(range(NUM_STORES)):
            for i, store in enumerate(cluster.stores):
                store.repair() if i not in failed else store.fail()
            if len(failed) == NUM_STORES:
                with pytest.raises(StoreUnavailableError):
                    cluster._next_available_store()
            else:
                for _ in range(2 * NUM_STORES):  # any rotation offset
                    chosen = cluster._next_available_store()
                    assert chosen.is_available
                    assert cluster.stores.index(chosen) not in failed
        for store in cluster.stores:
            store.repair()

    def test_total_outage_does_not_corrupt_rotation(self, cluster):
        """After an all-down raise, the next pick still works post-repair."""
        for store in cluster.stores:
            store.fail()
        for _ in range(3):
            with pytest.raises(StoreUnavailableError):
                cluster._next_available_store()
        for store in cluster.stores:
            store.repair()
        picks = {cluster._next_available_store().store_id
                 for _ in range(NUM_STORES)}
        assert len(picks) == NUM_STORES


class TestRoundRobinFairness:
    def test_survivors_share_equally_under_any_failure_subset(self, cluster):
        for failed in all_subsets(range(NUM_STORES)):
            if len(failed) == NUM_STORES:
                continue
            for i, store in enumerate(cluster.stores):
                store.repair() if i not in failed else store.fail()
            survivors = NUM_STORES - len(failed)
            counts = {s.store_id: 0 for s in cluster.stores}
            for _ in range(3 * survivors):
                counts[cluster._next_available_store().store_id] += 1
            live = [c for i, (sid, c) in enumerate(sorted(counts.items()))
                    if i not in failed]
            assert all(c == 3 for c in live), (failed, counts)
        for store in cluster.stores:
            store.repair()

    def test_recovered_store_rejoins_rotation(self, cluster):
        cluster.stores[1].fail()
        for _ in range(6):
            cluster._next_available_store()
        cluster.stores[1].repair()
        picks = [cluster._next_available_store().store_id
                 for _ in range(2 * NUM_STORES)]
        assert picks.count("pipestore-1") == 2


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("fail"), st.integers(0, NUM_STORES - 1)),
        st.tuples(st.just("repair"), st.integers(0, NUM_STORES - 1)),
        st.tuples(st.just("pick"), st.just(0)),
    ),
    min_size=1, max_size=40,
))
def test_interleaved_fail_repair_pick_matches_model(ops):
    """Under any interleaving, picks cycle the available stores in ring
    order starting from the rotation cursor — a pure-Python model predicts
    every choice exactly."""
    cluster = NDPipeCluster(factory, num_stores=NUM_STORES,
                            nominal_raw_bytes=2048)
    up = [True] * NUM_STORES
    cursor = 0
    for op, arg in ops:
        if op == "fail":
            cluster.stores[arg].fail()
            up[arg] = False
        elif op == "repair":
            cluster.stores[arg].repair()
            up[arg] = True
        else:
            if not any(up):
                with pytest.raises(StoreUnavailableError):
                    cluster._next_available_store()
                # model: cursor wraps all the way around
                cursor = (cursor + NUM_STORES) % NUM_STORES
                continue
            expected = None
            probe = cursor
            for _ in range(NUM_STORES):
                candidate = probe
                probe = (probe + 1) % NUM_STORES
                if up[candidate]:
                    expected = candidate
                    break
            cursor = probe
            chosen = cluster._next_available_store()
            assert chosen is cluster.stores[expected]
