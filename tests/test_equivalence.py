"""Distributed-equals-centralised: the deepest FT-DMP correctness property.

The paper's §5.1 claim is that FT-DMP changes *where* fine-tuning runs,
not *what* is learned: extracting features on PipeStores and training the
classifier on the Tuner performs the same update sequence a single host
would.  These tests verify that end to end — the cluster's distributed
fine-tune produces the same classifier weights as a single-host
fine-tune on the same data, to floating-point equality.
"""

import zlib

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.ftdmp import FTDMPTrainer
from repro.data.loader import normalize_images
from repro.fastpath import overrides, scalar_mode
from repro.models.registry import tiny_model
from repro.storage.imageformat import preprocess
from repro.train.fulltrain import full_train


SEED = 21
LR = 4e-3
BATCH = 32


def base_state(small_world):
    model = tiny_model("ResNet50", num_classes=8, width=8, seed=SEED)
    x, y = small_world.sample(120, 0, rng=np.random.default_rng(3))
    full_train(model, normalize_images(x), y, epochs=2, seed=0)
    return model.state_dict()


@pytest.fixture(scope="module")
def setup(small_world=None):
    from repro.data.drift import DriftingPhotoWorld, WorldConfig

    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))
    state = base_state(world)
    x, y = world.sample(96, 5, rng=np.random.default_rng(8))
    return world, state, x, y


def make_model(state):
    model = tiny_model("ResNet50", num_classes=8, width=8, seed=SEED)
    model.load_state_dict(state)
    return model


class TestDistributedEqualsCentralised:
    def _distributed(self, state, x, y, num_stores, epochs):
        cluster = NDPipeCluster(lambda: make_model(state),
                                num_stores=num_stores,
                                nominal_raw_bytes=4096, lr=LR,
                                batch_size=BATCH, seed=SEED)
        cluster.ingest(x, train_labels=y)
        cluster.finetune(epochs=epochs)
        return cluster

    def _centralised(self, state, x, y, order, epochs):
        """Single-host fine-tune over the same photos in cluster order.

        The cluster's quantised storage path (photo codec + fp32
        preprocessing) is applied so inputs are bit-identical.
        """
        model = make_model(state)
        # mirror the storage path exactly: float32 pixels preprocessed in
        # float32, as the inference server does at ingest
        stored = np.stack([preprocess(pixels) for pixels in x])
        trainer = FTDMPTrainer(model, lr=LR, batch_size=BATCH, seed=SEED)
        trainer.finetune(stored[order], y[order], epochs=epochs)
        return model

    def test_single_store_matches_single_host(self, setup):
        world, state, x, y = setup
        cluster = self._distributed(state, x, y, num_stores=1, epochs=2)
        # cluster order: one store, ids sorted == ingest order
        order = np.arange(len(x))
        host = self._centralised(state, x, y, order, epochs=2)

        tuner_clf = cluster.tuner.model.classifier.state_dict()
        host_clf = host.classifier.state_dict()
        for key in tuner_clf:
            np.testing.assert_allclose(tuner_clf[key], host_clf[key],
                                       rtol=0, atol=1e-12, err_msg=key)

    def test_multi_store_matches_single_host_with_matching_order(self, setup):
        """With 2 stores the Tuner concatenates per-store features; the
        same permutation fed to the single host yields identical weights."""
        world, state, x, y = setup
        cluster = self._distributed(state, x, y, num_stores=2, epochs=1)
        # round-robin placement: store-0 gets even indices, store-1 odd;
        # the Tuner concatenates store-0's photos then store-1's
        order = np.concatenate([np.arange(0, len(x), 2),
                                np.arange(1, len(x), 2)])
        host = self._centralised(state, x, y, order, epochs=1)

        tuner_clf = cluster.tuner.model.classifier.state_dict()
        host_clf = host.classifier.state_dict()
        for key in tuner_clf:
            np.testing.assert_allclose(tuner_clf[key], host_clf[key],
                                       rtol=0, atol=1e-12, err_msg=key)

    def test_store_count_does_not_change_learning(self, setup):
        """2-store and 4-store clusters see the same photos; their final
        eval accuracy agrees closely (update order differs only through
        the per-store concatenation permutation)."""
        world, state, x, y = setup
        results = []
        for stores in (2, 4):
            cluster = self._distributed(state, x, y, stores, epochs=2)
            x_test, y_test = world.sample(200, 5,
                                          rng=np.random.default_rng(99))
            results.append(cluster.evaluate(x_test, y_test)[0])
        assert abs(results[0] - results[1]) < 0.08

    def _fastpath_lifecycle(self, state, x, y):
        """One seeded ingest + finetune under whatever flags are active."""
        cluster = NDPipeCluster(lambda: make_model(state), num_stores=2,
                                nominal_raw_bytes=4096, lr=LR,
                                batch_size=BATCH, seed=SEED)
        cluster.ingest(x, train_labels=y)
        cluster.finetune(epochs=2)
        return cluster

    def test_vectorized_lifecycle_matches_scalar_weights(self, setup):
        """ISSUE 6 lockdown: the fully vectorized ingest + finetune learns
        the exact same classifier the historical scalar paths learned."""
        world, state, x, y = setup
        with scalar_mode():
            scalar = self._fastpath_lifecycle(state, x, y)
        with overrides():  # all fast paths on (the defaults)
            vector = self._fastpath_lifecycle(state, x, y)
        s_clf = scalar.tuner.model.classifier.state_dict()
        v_clf = vector.tuner.model.classifier.state_dict()
        for key in s_clf:
            np.testing.assert_array_equal(s_clf[key], v_clf[key],
                                          err_msg=key)
        # the byte accounting is identical too: vectorization moves the
        # same photos, features, and deltas over the fabric
        assert scalar.traffic_summary() == vector.traffic_summary()

    def test_golden_checkpoint_crc_survives_vectorization(self, setup):
        """Golden-output test: with the ingest *schedule* held fixed
        (``batched_ingest`` on in both runs), toggling every bit-neutral
        fast path — vectorized preprocess/autograd, batch decode,
        zero-copy — yields a byte-identical cluster checkpoint.  CRCs of
        the blobs are compared first for a readable failure, then the
        full bytes."""
        world, state, x, y = setup
        with overrides(vectorized_preprocess=False,
                       vectorized_autograd=False, batch_decode=False,
                       zero_copy=False):
            reference = self._fastpath_lifecycle(state, x, y).checkpoint()
        with overrides():
            vectorized = self._fastpath_lifecycle(state, x, y).checkpoint()
        assert zlib.crc32(reference) == zlib.crc32(vectorized)
        assert reference == vectorized

    def test_batched_ingest_same_labels_close_confidences(self, setup):
        """``batched_ingest`` is a scheduling change, not bit-neutral:
        labels (argmax) must agree exactly, confidences only to float
        tolerance (batch-N GEMM reduces differently than N batch-1)."""
        world, state, x, y = setup
        with overrides(batched_ingest=False):
            single = self._fastpath_lifecycle(state, x, y)
        with overrides(batched_ingest=True):
            batched = self._fastpath_lifecycle(state, x, y)
        ids = sorted(single.database._records)
        assert ids == sorted(batched.database._records)
        for pid in ids:
            a, b = single.database.lookup(pid), batched.database.lookup(pid)
            assert a.label == b.label, pid
            assert a.location == b.location, pid
            np.testing.assert_allclose(a.confidence, b.confidence,
                                       rtol=1e-9, atol=1e-12)

    def test_features_are_deterministic_across_replicas(self, setup):
        world, state, x, y = setup
        cluster = self._distributed(state, x, y, num_stores=2, epochs=1)
        store = cluster.stores[0]
        ids = store.photo_ids()[:6]
        feats_store = store.extract_features(ids)
        # the Tuner's own frozen front computes identical features
        from repro.nn.tensor import Tensor

        inputs = np.stack([store.load_preprocessed(p) for p in ids])
        cluster.tuner.model.eval()
        feats_tuner = cluster.tuner.model.forward_until(
            Tensor(inputs), cluster.tuner.split).data
        np.testing.assert_array_equal(feats_store, feats_tuner)
