"""Smoke-scale tests for the runnable accuracy drivers and table rendering."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    SMOKE,
    fig04_drift_study,
    fig17_pipelined_training,
    make_model,
    tab01_label_refresh,
    tab02_accuracy_matrix,
)
from repro.analysis.tables import format_bytes, format_table


class TestMakeModel:
    @pytest.mark.parametrize("name", ["ResNet50", "ViT", "ShuffleNetV2"])
    def test_builds_with_unified_width(self, name):
        model = make_model(name, 6, SMOKE)
        assert model.num_stages >= 5


@pytest.mark.slow
class TestFig04:
    def test_structure(self):
        out = fig04_drift_study(scale=SMOKE, horizon_days=4, eval_every=2)
        assert set(out["trajectories"]) == {"outdated", "finetune", "full"}
        assert out["days"] == [0, 2, 4]
        for trajectory in out["trajectories"].values():
            assert len(trajectory) == 3
            for day, top1, top5 in trajectory:
                assert 0.0 <= top1 <= top5 <= 1.0
        assert len(out["size_sweep"]) >= 3


@pytest.mark.slow
class TestTab01:
    def test_fixed_fraction_monotone_scale(self):
        rows = tab01_label_refresh(scale=SMOKE, num_refreshes=2)
        assert rows[0]["model"] == "M0"
        assert rows[0]["pct_fixed"] == 0.0
        for row in rows[1:]:
            assert 0.0 <= row["pct_fixed"] <= 100.0


@pytest.mark.slow
class TestFig17:
    def test_time_reductions_match_pipeline_model(self):
        out = fig17_pipelined_training(scale=SMOKE, num_runs_list=(1, 2, 3))
        assert out[1]["time_reduction_pct"] == 0.0
        assert 15 < out[2]["time_reduction_pct"] < 30
        assert 25 < out[3]["time_reduction_pct"] < 40
        for entry in out.values():
            assert 0.0 <= entry["final_top1"] <= 1.0
            assert entry["losses_by_run"]


@pytest.mark.slow
class TestTab02:
    def test_single_cell(self):
        rows = tab02_accuracy_matrix(models=["ResNet50"],
                                     profiles=["CIFAR100"], scale=SMOKE)
        assert len(rows) == 1
        row = rows[0]
        for key in ("base_top1", "outdated_top1", "ndpipe_top1", "full_top1"):
            assert 0.0 <= row[key] <= 1.0

    def test_skip_full_produces_nan(self):
        rows = tab02_accuracy_matrix(
            models=["ResNet50"], profiles=["CIFAR100"], scale=SMOKE,
            skip_full=(("ResNet50", "CIFAR100"),),
        )
        assert np.isnan(rows[0]["full_top1"])


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "--" in lines[1]
        assert "-" in lines[3]  # None cell

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_table_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2_500_000) == "2.50 MB"
        assert format_bytes(3.2e12) == "3.20 TB"
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_float_rendering(self):
        text = format_table(["v"], [[123456.789]])
        assert "123,457" in text
