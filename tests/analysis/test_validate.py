"""Tests for the calibration self-check."""

import pytest

from repro.analysis.validate import (
    Anchor,
    calibration_report,
    validate_calibration,
)


class TestAnchors:
    def test_all_anchors_hold(self):
        anchors = validate_calibration()
        failing = [a.name for a in anchors if not a.ok]
        assert not failing, f"calibration drifted: {failing}"

    def test_anchor_count_covers_the_headlines(self):
        anchors = validate_calibration()
        assert len(anchors) >= 10
        names = " ".join(a.name for a in anchors)
        assert "APO" in names
        assert "FE throughput" in names
        assert "speedup" in names

    def test_error_pct(self):
        anchor = Anchor("x", 100.0, 105.0, 0.1, "test")
        assert anchor.error_pct == pytest.approx(5.0)
        assert anchor.ok
        assert not Anchor("x", 100.0, 120.0, 0.1, "test").ok

    def test_exact_anchor(self):
        assert Anchor("pick", 8, 8.0, 0.0, "t").ok
        assert not Anchor("pick", 8, 9.0, 0.0, "t").ok

    def test_report_renders(self):
        report = calibration_report()
        assert "anchors hold" in report
        assert "DRIFTED" not in report
