"""Tests for the per-figure performance drivers (shape assertions)."""

import pytest

from repro.analysis import perf


class TestFig05:
    def test_typical_slower_both_tasks(self):
        out = perf.fig05_bottleneck()
        ft = out["finetune_time_min"]
        inf = out["inference_ips"]
        assert ft["Typical"] > 3 * ft["Ideal"]
        assert inf["Typical"] < inf["Ideal"]


class TestFig06:
    def test_finetune_rows_complete(self):
        rows = perf.fig06_breakdown()["finetune"]
        assert [r["task"] for r in rows] == ["Read", "Data Trans.", "FE&CT",
                                             "Weight Sync."]
        by_task = {r["task"]: r for r in rows}
        assert by_task["Data Trans."]["ndp_s_per_img"] == 0.0
        assert by_task["Weight Sync."]["ndp_over_typical"] > 20

    def test_inference_rows_complete(self):
        rows = perf.fig06_breakdown()["inference"]
        by_task = {r["task"]: r for r in rows}
        assert by_task["Preproc."]["ndp_over_typical"] > 1.4
        assert 1.0 < by_task["FE&Cl"]["ndp_over_typical"] < 1.7


class TestFig09:
    def test_conv5_minimises_training_time(self):
        rows = perf.fig09_partition_sweep()
        best = min(rows, key=lambda r: r["training_time_s"])
        assert best["cut"] == "+Conv5"

    def test_fc_offload_traffic_surge(self):
        rows = {r["cut"]: r for r in perf.fig09_partition_sweep()}
        assert rows["+FC"]["sync_traffic_gb"] > 50
        assert rows["+Conv5"]["sync_traffic_gb"] == 0.0

    def test_conv5_feature_traffic_near_9_16_gb(self):
        rows = {r["cut"]: r for r in perf.fig09_partition_sweep()}
        assert rows["+Conv5"]["feature_traffic_gb"] == pytest.approx(9.8,
                                                                     rel=0.1)


class TestFig11:
    def test_apo_pick_and_sweep(self):
        out = perf.fig11_apo_sweep()
        assert out["apo_pick"] == 8
        assert out["cut"] == "+Conv5"
        assert len(out["rows"]) == 20
        t = {r["stores"]: r["training_time_s"] for r in out["rows"]}
        assert t[8] < t[1] / 4  # near-linear scaling up to the pick
        assert t[20] > 0.8 * t[8]  # flattens past the pick


class TestFig12:
    def test_ablation_monotone_improvement(self):
        out = perf.fig12_npe_ablation()
        inf = {r["level"]: r for r in out["inference"]}
        assert inf["Naive"]["Preproc_ms"] > 10
        assert inf["+Offload"]["Preproc_ms"] == 0.0
        assert inf["+Batch"]["FE&Cl_ms"] < inf["+Comp"]["FE&Cl_ms"]
        ft = {r["level"]: r for r in out["finetune"]}
        assert ft["Naive"]["FE_ms"] == max(
            v for k, v in ft["Naive"].items() if k.endswith("_ms"))


class TestFig13:
    def test_scaling_and_crossovers(self):
        out = perf.fig13_inference_scaling(["ResNet50"])
        data = out["ResNet50"]
        nd = data["ndpipe_ips"]
        assert nd[20] == pytest.approx(20 * nd[1], rel=0.01)
        assert data["crossovers"]["P3"] is not None
        assert data["srv_ips"]["SRV-I"] > data["srv_ips"]["SRV-P"]


class TestFig14:
    def test_rows_pair_srv_with_ndpipe(self):
        rows = perf.fig14_power_breakdown()
        assert len(rows) == 6  # 3 operating points x 2 systems
        for i in range(0, 6, 2):
            srv, nd = rows[i], rows[i + 1]
            assert srv["operating_point"] == nd["operating_point"]
            # matched throughput by construction
            assert nd["ips"] >= srv["ips"] * 0.99

    def test_ndpipe_beats_srv_c_power_efficiency(self):
        rows = perf.fig14_power_breakdown()
        p2 = [r for r in rows if r["operating_point"] == "P2"]
        assert p2[1]["ips_per_w"] > 1.2 * p2[0]["ips_per_w"]


class TestFig15Fig16:
    def test_training_crossovers(self):
        out = perf.fig15_training_scaling(["ResNet50", "ResNeXt101"])
        assert out["ResNet50"]["p1_stores"] <= 4
        assert out["ResNeXt101"]["p1_stores"] >= 5
        assert out["ResNet50"]["apo_pick"] == 8

    def test_energy_rows_have_gains(self):
        rows = perf.fig16_training_energy(["ResNet50"])
        assert {r["point"] for r in rows} == {"P1", "BEST"}
        best = next(r for r in rows if r["point"] == "BEST")
        assert best["gain"] > 1.0


class TestFig18Fig19:
    def test_bandwidth_sweep_gain_shrinks(self):
        rows = perf.fig18_bandwidth_sweep(["ResNet50"])
        gains = [r["gain"] for r in rows]
        assert gains[0] > gains[-1] > 0.9
        assert rows[0]["gbps"] == 1

    def test_batch_sweep_vit_oom(self):
        rows = perf.fig19_batch_sweep(["ViT"])
        by_batch = {r["batch"]: r for r in rows}
        assert by_batch[512]["oom"]
        assert not by_batch[128]["oom"]
        assert by_batch[128]["ips"] > by_batch[1]["ips"]

    def test_batch_sweep_inception_decomp_wall(self):
        rows = perf.fig19_batch_sweep(["InceptionV3"],
                                      batch_sizes=(128, 256, 512))
        by_batch = {r["batch"]: r for r in rows}
        assert by_batch[512]["bottleneck"] == "Decomp."
        assert by_batch[512]["ips"] == pytest.approx(by_batch[256]["ips"],
                                                     rel=0.05)


class TestFig20Fig21:
    def test_inferentia_needs_more_stores(self):
        out = perf.fig20_inferentia()
        for model, data in out.items():
            assert data["inference_stores_to_match_srv_c"] >= 10
            assert data["inference_power_gain"] > 1.0

    def test_cost_sweep_ndpipe_cheaper_at_scale(self):
        rows = perf.fig21_cost_sweep()
        at_10 = next(r for r in rows if r["stores"] == 10)
        assert at_10["ndpipe_cost_usd"] < at_10["srv_c_cost_usd"]
        # Inf1 cheapest per the paper's 2.5x claim at adequate store counts
        at_20 = rows[-1]
        assert at_20["ndpipe_inf1_cost_usd"] < at_20["srv_c_cost_usd"]

    def test_cost_decreases_with_stores_then_flattens(self):
        rows = perf.fig21_cost_sweep()
        costs = [r["ndpipe_cost_usd"] for r in rows]
        assert costs[0] > costs[7]
