"""Streaming front end: determinism, cancellation, credits, chaos."""

import numpy as np
import pytest

from repro.core.cluster import InferenceServer
from repro.faults import DropMessages, FaultInjector
from repro.models.registry import tiny_model
from repro.serving import (
    CANCELLED,
    COMPLETED,
    EXPIRED,
    ServingConfig,
    StreamConfig,
    StreamingFrontend,
)
from repro.serving.admission import ServeRequest
from repro.serving.bench import run_streaming_bench
from repro.workloads.continuous import (
    diurnal_requests,
    flash_crowd_requests,
    open_loop_requests,
)

SLO_S = 0.1


def _factory(config, seed=0):
    def make(index):
        return InferenceServer(tiny_model(config.model, seed=seed + index),
                               name=f"stream-replica-{index}")
    return make


def _stream(config=None, stream=None, seed=0):
    config = (config if config is not None
              else ServingConfig(replicas=2)).validated()
    if stream is None:
        stream = StreamConfig(min_replicas=config.replicas,
                              max_replicas=config.replicas, autoscale=False)
    return StreamingFrontend(_factory(config, seed), config, stream)


def _trace(num_requests=200, rate_rps=1500.0, seed=0, **kwargs):
    return open_loop_requests(num_requests=num_requests, rate_rps=rate_rps,
                              seed=seed, **kwargs)


_PIXELS = np.random.default_rng(7).random((3, 16, 16))


def _req(rid, arrival_s, deadline_s=None):
    return ServeRequest(request_id=rid, arrival_s=arrival_s, pixels=_PIXELS,
                        deadline_s=deadline_s)


def test_conservation_and_zero_queue_full_under_flash():
    """Overload degrades to credit_wait delay, never queue_full drops."""
    frontend = _stream(stream=StreamConfig(credits=64, min_replicas=2,
                                           max_replicas=2, autoscale=False))
    trace = flash_crowd_requests(num_requests=600, base_rps=400.0,
                                 flash_rps=4000.0, flash_start_s=0.5,
                                 flash_duration_s=0.3)
    report = frontend.serve(trace)
    assert report.offered == 600
    assert report.queue_full == 0
    assert report.conserved
    assert report.offered == (report.completed + report.cancelled
                              + report.expired)
    # the flash actually exhausted the credit window: some requests waited
    assert max(report.credit_waits_s) > 0.0
    assert len(report.credit_waits_s) >= report.completed
    # metrics mirror the report (the ND004 families)
    metrics = frontend.metrics
    assert (metrics.get("serving_stream_requests_total")
            .value(status=COMPLETED) == report.completed)
    assert metrics.get("serving_stream_inflight").value() == 0
    assert (metrics.get("serving_stream_credits_available").value()
            == frontend.stream.credits)


def test_out_of_order_completion_across_replicas():
    frontend = _stream()
    trace = _trace(num_requests=300, rate_rps=2500.0)
    report = frontend.serve(trace)
    assert report.completed == 300
    # completions are reassembled per request id, and provably land out
    # of submission order once two replicas race
    assert report.out_of_order > 0
    assert sorted(report.completion_order) == \
           sorted(r.request_id for r in trace)
    assert report.completion_order != [r.request_id for r in trace]
    assert len(report.latencies_s) == report.completed


def test_identical_runs_are_bit_identical():
    trace = _trace(num_requests=250, rate_rps=2000.0)
    cancels = {trace[10].request_id: 0.05, trace[50].request_id: 0.01,
               trace[200].request_id: trace[200].arrival_s + 0.001}
    first = _stream().serve(_trace(num_requests=250, rate_rps=2000.0),
                            cancels)
    second = _stream().serve(_trace(num_requests=250, rate_rps=2000.0),
                             cancels)
    assert first.to_dict() == second.to_dict()
    assert first.completion_order == second.completion_order
    assert [o.request_id for o in first.outcomes] == \
           [o.request_id for o in second.outcomes]


def test_cancellation_in_every_phase():
    """One cancel each against a backlog, pending, and in-flight request."""
    config = ServingConfig(replicas=1, min_batch=1, max_batch=1,
                           initial_batch=1)
    frontend = _stream(config,
                       StreamConfig(credits=2, min_replicas=1,
                                    max_replicas=1, autoscale=False))
    # r0 dispatches immediately (in flight), r1 holds the second credit
    # (pending), r2 finds no credit (backlog)
    trace = [_req("r0", 0.0), _req("r1", 0.0), _req("r2", 0.0)]
    tick = frontend.dispatcher.min_service_s() / 8
    cancels = {"r2": tick, "r1": 2 * tick, "r0": 3 * tick}
    report = frontend.serve(trace, cancels)
    assert report.completed == 0
    assert report.cancelled == 3
    assert report.conserved
    by_id = {o.request_id: o for o in report.outcomes}
    assert all(o.status == CANCELLED for o in by_id.values())
    # the in-flight cancel latched: it resolved only when its batch
    # finished, on a real replica
    assert by_id["r0"].replica is not None
    assert by_id["r0"].t_resolved_s > 3 * tick
    # backlog/pending cancels resolved at the cancel instant
    assert by_id["r2"].t_resolved_s == pytest.approx(tick)
    assert by_id["r1"].t_resolved_s == pytest.approx(2 * tick)


def test_cancel_after_completion_is_noop():
    frontend = _stream(ServingConfig(replicas=1))
    report = frontend.serve([_req("r0", 0.0)], {"r0": 10.0})
    assert report.completed == 1 and report.cancelled == 0
    assert report.conserved


def test_unknown_cancellation_id_rejected():
    frontend = _stream(ServingConfig(replicas=1))
    with pytest.raises(ValueError, match="unknown request ids"):
        frontend.serve([_req("r0", 0.0)], {"ghost": 1.0})


def test_duplicate_request_ids_rejected():
    frontend = _stream(ServingConfig(replicas=1))
    with pytest.raises(ValueError, match="duplicate request_id"):
        frontend.serve([_req("r0", 0.0), _req("r0", 0.1)])


def test_deadline_expiry_is_conserved():
    config = ServingConfig(replicas=1, max_batch=4)
    probe = _stream(config)
    deadline = 4 * probe.dispatcher.min_service_s()
    frontend = _stream(config)
    trace = [_req(f"r{i}", 0.0, deadline_s=deadline) for i in range(60)]
    report = frontend.serve(trace)
    assert report.expired > 0
    assert report.completed > 0
    assert report.conserved
    assert report.queue_full == 0
    statuses = {o.status for o in report.outcomes}
    assert statuses == {COMPLETED, EXPIRED}


def test_dropped_dispatch_redispatches_instead_of_shedding():
    """Chaos: every retry of one batch transfer drops; the batch is
    re-queued (delayed), not dropped, and conservation stays exact."""
    frontend = _stream(ServingConfig(replicas=1))
    FaultInjector([
        DropMessages(at=1, count=4, kind="serve"),
    ]).attach_fabric(frontend.network)
    report = frontend.serve(_trace(num_requests=80, rate_rps=2000.0))
    assert report.redispatches > 0
    assert report.completed == 80
    assert report.queue_full == 0 and report.expired == 0
    assert report.conserved
    assert (frontend.metrics.get("serving_stream_redispatches_total").value()
            == report.redispatches)
    assert frontend.dispatcher.batches_failed == 1
    # the lost retry time is stall, not useful work
    assert frontend.dispatcher.stalled_s > 0.0


def test_autoscaler_grows_the_replica_set_under_flash():
    config = ServingConfig(replicas=1, deadline_s=1.0)
    frontend = _stream(config,
                       StreamConfig(min_replicas=1, max_replicas=4,
                                    window=4, cooldown=4))
    trace = flash_crowd_requests(num_requests=800, base_rps=500.0,
                                 flash_rps=6000.0, flash_start_s=0.2,
                                 flash_duration_s=0.5)
    report = frontend.serve(trace)
    assert report.scale_ups >= 1
    assert report.peak_replicas > 1
    assert report.peak_replicas <= 4
    assert report.conserved
    assert (frontend.metrics.get("serving_scale_events_total")
            .value(direction="up") == report.scale_ups)


def test_autoscaler_retires_replicas_when_calm_returns():
    """A flash followed by a long calm tail scales up then back down."""
    config = ServingConfig(replicas=1, deadline_s=2.0)
    frontend = _stream(config,
                       StreamConfig(min_replicas=1, max_replicas=4,
                                    window=4, cooldown=4))
    trace = flash_crowd_requests(num_requests=900, base_rps=150.0,
                                 flash_rps=6000.0, flash_start_s=0.2,
                                 flash_duration_s=0.1)
    report = frontend.serve(trace)
    assert report.scale_ups >= 1
    assert report.scale_downs >= 1
    assert report.final_replicas < report.peak_replicas
    assert report.conserved


def test_makespan_is_last_completion_time():
    frontend = _stream(ServingConfig(replicas=1))
    report = frontend.serve(_trace(num_requests=50, rate_rps=1000.0))
    completed = [o for o in report.outcomes if o.status == COMPLETED]
    assert report.makespan_s == max(o.t_resolved_s for o in completed)
    assert report.makespan_s > max(o.t_resolved_s - o.latency_s
                                   for o in completed)


def test_streaming_beats_sync_shedding_on_the_same_trace():
    result = run_streaming_bench(seed=0, num_requests=1500)
    s, sync = result["streaming"], result["sync"]
    assert s["queue_full"] == 0 and s["conserved"]
    assert sync["shed"]["queue_full"] > 0
    assert s["completed"] > sync["completed"]
    assert s["out_of_order"] > 0


class TestTraces:
    def test_flash_crowd_shape(self):
        trace = flash_crowd_requests(num_requests=400, base_rps=200.0,
                                     flash_rps=4000.0, flash_start_s=0.5,
                                     flash_duration_s=0.25)
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        assert len({r.request_id for r in trace}) == 400
        assert all(r.request_id.startswith("flash-") for r in trace)
        assert trace[0].pixels.shape == (3, 16, 16)
        in_flash = sum(1 for t in times if 0.5 <= t < 0.75)
        before = sum(1 for t in times if 0.25 <= t < 0.5)
        assert in_flash > 4 * max(before, 1)

    def test_diurnal_shape(self):
        trace = diurnal_requests(num_requests=800, base_rps=100.0,
                                 peak_rps=2000.0, period_s=0.5)
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        assert all(r.request_id.startswith("diurnal-") for r in trace)
        # the rate peaks mid-period: the middle half of the first period
        # carries far more arrivals than the trough edge
        mid = sum(1 for t in times if 0.125 <= t < 0.375)
        edge = sum(1 for t in times if t < 0.125)
        assert mid > 2 * max(edge, 1)

    def test_traces_share_the_photo_pool(self):
        from repro.serving.cache import content_key

        flash = flash_crowd_requests(num_requests=100, base_rps=500.0,
                                     flash_rps=1000.0, flash_start_s=0.1,
                                     flash_duration_s=0.1, pool_size=16)
        diurnal = diurnal_requests(num_requests=100, base_rps=500.0,
                                   peak_rps=1000.0, period_s=1.0,
                                   pool_size=16)
        open_loop = open_loop_requests(num_requests=100, rate_rps=500.0,
                                       pool_size=16)
        keys = {content_key(r.pixels)
                for r in flash + diurnal + open_loop}
        assert len(keys) <= 16

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_requests(num_requests=10, base_rps=100.0,
                                 flash_rps=50.0, flash_start_s=0.0,
                                 flash_duration_s=1.0)
        with pytest.raises(ValueError):
            diurnal_requests(num_requests=10, base_rps=0.0,
                             peak_rps=100.0, period_s=1.0)
        with pytest.raises(ValueError):
            flash_crowd_requests(num_requests=10, base_rps=100.0,
                                 flash_rps=200.0, flash_start_s=-1.0,
                                 flash_duration_s=1.0)
