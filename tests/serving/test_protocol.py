"""Streaming protocol pieces: credits, outcomes, configs."""

import pytest

from repro.serving import StreamConfig
from repro.serving.protocol import (
    CANCELLED,
    COMPLETED,
    EXPIRED,
    TERMINAL_STATUSES,
    CreditWindow,
    StreamOutcome,
    StreamingReport,
    exact_percentile,
)


class TestCreditWindow:
    def test_acquire_release_round_trip(self):
        window = CreditWindow(2)
        assert window.acquire() and window.acquire()
        assert window.available == 0 and window.in_flight == 2
        assert not window.acquire()  # exhausted, no side effect
        assert window.in_flight == 2
        window.release()
        assert window.available == 1 and window.in_flight == 1
        assert window.acquire()

    def test_invariant_holds_through_any_sequence(self):
        window = CreditWindow(3)
        for step in (1, 1, -1, 1, 1, -1, -1, -1):
            if step > 0:
                window.acquire()
            else:
                window.release()
            assert window.granted == window.in_flight + window.available

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError, match="without a matching acquire"):
            CreditWindow(1).release()

    def test_corrupted_books_are_caught(self):
        window = CreditWindow(2)
        window.available = 5  # simulate a lost-credit bug
        with pytest.raises(RuntimeError, match="credit conservation"):
            window.check()

    def test_zero_credits_rejected(self):
        with pytest.raises(ValueError, match="credits"):
            CreditWindow(0)


class TestOutcomesAndReport:
    def test_terminal_statuses_are_closed(self):
        assert set(TERMINAL_STATUSES) == {COMPLETED, CANCELLED, EXPIRED}
        with pytest.raises(ValueError, match="terminal status"):
            StreamOutcome("r-0", "shed", 0.0)

    def test_report_conservation_property(self):
        report = StreamingReport(offered=10, completed=7, cancelled=2,
                                 expired=1)
        assert report.resolved == 10 and report.conserved
        report.expired = 0
        assert not report.conserved

    def test_throughput_guards_zero_makespan(self):
        assert StreamingReport(offered=0).throughput_rps == 0.0

    def test_to_dict_round_trips_counts(self):
        report = StreamingReport(offered=3, completed=3,
                                 latencies_s=[0.01, 0.02, 0.03],
                                 makespan_s=0.5)
        d = report.to_dict()
        assert d["offered"] == 3 and d["conserved"]
        assert d["throughput_rps"] == pytest.approx(6.0)
        assert d["p99_latency_s"] == 0.03

    def test_exact_percentile_is_order_statistic(self):
        values = [0.4, 0.1, 0.3, 0.2]
        assert exact_percentile(values, 50) == 0.2
        assert exact_percentile(values, 99) == 0.4
        assert exact_percentile([], 99) == 0.0


class TestStreamConfig:
    def test_defaults_validate(self):
        config = StreamConfig().validated()
        assert config.credits >= 1
        assert config.min_replicas <= config.max_replicas

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown StreamConfig"):
            StreamConfig.from_dict({"credits": 8, "queue_capacity": 4})

    def test_round_trip(self):
        config = StreamConfig(credits=32, min_replicas=2, max_replicas=4)
        assert StreamConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("bad", [
        {"credits": 0},
        {"min_replicas": 0},
        {"min_replicas": 4, "max_replicas": 2},
        {"scale_down_headroom": 0.0},
        {"scale_down_headroom": 1.5, "scale_up_headroom": 1.0},
        {"window": 0},
        {"cooldown": -1},
    ])
    def test_invalid_fields_raise(self, bad):
        with pytest.raises(ValueError):
            StreamConfig(**bad).validated()
