"""Content-addressed tensor cache: hits, LRU eviction, determinism."""

import numpy as np
import pytest

from repro.serving.cache import TensorCache, content_key


def _pixels(seed, shape=(3, 8, 8)):
    return np.random.default_rng(seed).random(shape).astype(np.float64)


def test_content_key_depends_on_bytes_dtype_shape():
    a = _pixels(0)
    assert content_key(a) == content_key(a.copy())
    assert content_key(a) != content_key(_pixels(1))
    assert content_key(a) != content_key(a.astype(np.float32))
    assert content_key(a) != content_key(a.reshape(3, 4, 16))
    # content addressing ignores memory layout
    assert content_key(a) == content_key(
        np.asfortranarray(a).copy(order="F"))


def test_hit_round_trip_is_bit_exact():
    cache = TensorCache(capacity_bytes=1 << 20)
    pixels = _pixels(0)
    tensor = np.random.default_rng(1).random((3, 8, 8)).astype(np.float32)
    key, missed, blob_bytes = cache.lookup(pixels)
    assert missed is None and blob_bytes == 0
    inserted_bytes = cache.insert(key, tensor)
    assert inserted_bytes > 0 and key in cache
    key2, hit, hit_bytes = cache.lookup(pixels)
    assert key2 == key and hit_bytes == inserted_bytes
    np.testing.assert_array_equal(hit, tensor)
    assert hit.dtype == tensor.dtype
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["resident_bytes"] == inserted_bytes


def test_lru_evicts_oldest_first():
    tensors = {i: np.random.default_rng(i).random((3, 8, 8))
               .astype(np.float32) for i in range(3)}
    keys = {}
    probe = TensorCache(capacity_bytes=1 << 20)
    for i, t in tensors.items():
        keys[i] = content_key(_pixels(i))
        probe.insert(keys[i], t)
    blob_size = probe.resident_bytes // 3

    cache = TensorCache(capacity_bytes=2 * blob_size + blob_size // 2)
    cache.insert(keys[0], tensors[0])
    cache.insert(keys[1], tensors[1])
    cache.insert(keys[2], tensors[2])  # evicts 0, the oldest
    assert keys[0] not in cache
    assert keys[1] in cache and keys[2] in cache
    assert cache.stats()["evictions"] == 1


def test_hit_renews_lru_position():
    tensors = {i: np.random.default_rng(i).random((3, 8, 8))
               .astype(np.float32) for i in range(3)}
    probe = TensorCache(capacity_bytes=1 << 20)
    for i, t in tensors.items():
        probe.insert(content_key(_pixels(i)), t)
    blob_size = probe.resident_bytes // 3

    cache = TensorCache(capacity_bytes=2 * blob_size + blob_size // 2)
    cache.insert(content_key(_pixels(0)), tensors[0])
    cache.insert(content_key(_pixels(1)), tensors[1])
    cache.lookup(_pixels(0))  # renew 0; now 1 is the LRU victim
    cache.insert(content_key(_pixels(2)), tensors[2])
    assert content_key(_pixels(0)) in cache
    assert content_key(_pixels(1)) not in cache


def test_oversized_blob_is_not_inserted():
    cache = TensorCache(capacity_bytes=8)
    tensor = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
    blob_bytes = cache.insert("key", tensor)
    assert blob_bytes > 8
    assert "key" not in cache and len(cache) == 0
    assert cache.resident_bytes == 0


def test_reinsert_same_key_does_not_double_count():
    cache = TensorCache(capacity_bytes=1 << 20)
    tensor = np.random.default_rng(0).random((3, 8, 8)).astype(np.float32)
    size = cache.insert("key", tensor)
    assert cache.insert("key", tensor) == size
    assert cache.resident_bytes == size and len(cache) == 1


@pytest.mark.parametrize("kwargs", [
    {"capacity_bytes": -1},
    {"capacity_bytes": 10, "compression_level": 10},
])
def test_constructor_validation(kwargs):
    with pytest.raises(ValueError):
        TensorCache(**kwargs)


def test_oversize_insert_is_rejected_and_counted():
    cache = TensorCache(capacity_bytes=8)
    tensor = np.random.default_rng(1).random((3, 8, 8)).astype(np.float32)
    key, missed, _ = cache.lookup(_pixels(0))
    assert missed is None
    blob_bytes = cache.insert(key, tensor)
    assert blob_bytes > 8       # the caller still learns the wire size
    assert key not in cache     # ...but nothing was cached
    stats = cache.stats()
    assert stats["rejected_oversize"] == 1
    assert stats["entries"] == 0 and stats["resident_bytes"] == 0
    assert stats["evictions"] == 0  # rejection never evicts residents
    # the next lookup of the same pixels is an honest miss again
    _, again, _ = cache.lookup(_pixels(0))
    assert again is None
    assert cache.stats()["misses"] == 2
