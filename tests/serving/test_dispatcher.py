"""Dispatcher accounting: the attempted/dispatched/failed ledger."""

import numpy as np
import pytest

from repro.core.cluster import InferenceServer
from repro.core.fabric import NetworkFabric
from repro.faults.errors import MessageDroppedError, TransientFaultError
from repro.faults.retry import RetryPolicy
from repro.models.registry import tiny_model
from repro.serving import ReplicaDispatcher, ServingConfig


def make_dispatcher(network=None, num=2):
    replicas = [
        InferenceServer(tiny_model("ResNet50", num_classes=8, width=8,
                                   seed=i), name=f"replica-{i}")
        for i in range(num)
    ]
    return ReplicaDispatcher(
        replicas, ServingConfig(replicas=num).validated(),
        network or NetworkFabric(), RetryPolicy(max_attempts=2))


def _ledger(disp):
    return (disp.batches_attempted, disp.batches_dispatched,
            disp.batches_failed)


def test_successful_dispatch_settles_the_ledger():
    disp = make_dispatcher()
    batch = np.random.default_rng(0).random((2, 3, 16, 16))
    results, t_done, replica = disp.dispatch(
        batch, payload_bytes=1024, t_start=0.0, num_misses=2, hit_bytes=0)
    assert len(results) == 2 and t_done > 0.0
    assert _ledger(disp) == (1, 1, 0)


def test_failed_dispatch_still_settles_the_ledger():
    def drop_everything(record):
        raise MessageDroppedError(record.kind)

    disp = make_dispatcher(NetworkFabric(fault_filter=drop_everything))
    batch = np.random.default_rng(0).random((2, 3, 16, 16))
    with pytest.raises(TransientFaultError):
        disp.dispatch(batch, payload_bytes=1024, t_start=0.0,
                      num_misses=2, hit_bytes=0)
    assert _ledger(disp) == (1, 0, 1)
    assert disp.stalled_s > 0.0


def test_ledger_conserves_across_mixed_outcomes():
    """The @conserves law holds at every quiescent point: every attempt
    lands in exactly one of dispatched or failed."""
    dropping = {"on": False}

    def flaky(record):
        if dropping["on"]:
            raise MessageDroppedError(record.kind)
        return 0.0

    disp = make_dispatcher(NetworkFabric(fault_filter=flaky))
    batch = np.random.default_rng(1).random((2, 3, 16, 16))
    for i in range(6):
        dropping["on"] = i % 3 == 0
        try:
            disp.dispatch(batch, payload_bytes=512, t_start=float(i),
                          num_misses=1, hit_bytes=64)
        except TransientFaultError:
            pass
        attempted, dispatched, failed = _ledger(disp)
        assert attempted == dispatched + failed == i + 1
    assert _ledger(disp) == (6, 4, 2)
