"""NPE-seeded batch sizing and the AIMD SLO controller."""

import pytest

from repro.models.catalog import model_graph
from repro.serving.batcher import SloController, slo_batch_size
from repro.sim.specs import TESLA_V100


def test_slo_batch_size_monotone_in_slo():
    graph = model_graph("ResNet50")
    sizes = [slo_batch_size(graph, TESLA_V100, slo)
             for slo in (0.01, 0.05, 0.1, 0.5)]
    assert sizes == sorted(sizes)
    assert all(1 <= b <= 256 for b in sizes)


def test_slo_batch_size_respects_bounds():
    graph = model_graph("ResNet50")
    assert slo_batch_size(graph, TESLA_V100, 10.0, max_batch=8) <= 8
    assert slo_batch_size(graph, TESLA_V100, 1e-6) == 1
    assert slo_batch_size(graph, TESLA_V100, 1e-6, min_batch=4) == 4


def test_slo_batch_size_validation():
    graph = model_graph("ResNet50")
    with pytest.raises(ValueError):
        slo_batch_size(graph, TESLA_V100, 0.0)
    with pytest.raises(ValueError):
        slo_batch_size(graph, TESLA_V100, 0.1, fraction=0.0)
    with pytest.raises(ValueError):
        slo_batch_size(graph, TESLA_V100, 0.1, min_batch=8, max_batch=4)


def test_controller_aimd_asymmetry():
    ctl = SloController(slo_s=0.1, min_batch=1, max_batch=256,
                        initial_batch=64, additive_step=4)
    assert ctl.observe(0.2) == 32       # violation: halve
    assert ctl.observe(0.2) == 16
    assert ctl.observe(0.01) == 20      # comfortable: +step
    assert ctl.decreases == 2 and ctl.increases == 1
    # inside the [headroom*slo, slo] band: hold
    assert ctl.observe(0.09) == 20


def test_controller_clamps_to_bounds():
    ctl = SloController(slo_s=0.1, min_batch=2, max_batch=8,
                        initial_batch=8, additive_step=4)
    for _ in range(6):
        ctl.observe(1.0)
    assert ctl.batch_size == 2          # never below min_batch
    for _ in range(6):
        ctl.observe(0.0)
    assert ctl.batch_size == 8          # never above max_batch


def test_controller_converges_to_slo_feasible_batch():
    """Against a linear latency model, AIMD settles in a narrow band."""
    per_item_s = 0.1 / 42               # 42 items fill the SLO exactly
    ctl = SloController(slo_s=0.1, min_batch=1, max_batch=256,
                        initial_batch=256, additive_step=4)
    trajectory = []
    for _ in range(200):
        trajectory.append(ctl.observe(ctl.batch_size * per_item_s))
    tail = trajectory[-50:]
    # multiplicative decreases pull the oversized start under the
    # 42-item ceiling fast; additive increases then climb back into the
    # [headroom * slo, slo] comfort band and hold there
    assert max(tail) <= 42
    assert min(tail) >= 21
    assert ctl.decreases > 0 and ctl.increases > 0


def test_controller_validation():
    with pytest.raises(ValueError):
        SloController(slo_s=0.0, min_batch=1, max_batch=8, initial_batch=4)
    with pytest.raises(ValueError):
        SloController(slo_s=0.1, min_batch=4, max_batch=8, initial_batch=2)
    with pytest.raises(ValueError):
        SloController(slo_s=0.1, min_batch=1, max_batch=8, initial_batch=4,
                      headroom=1.5)
    with pytest.raises(ValueError):
        SloController(slo_s=0.1, min_batch=1, max_batch=8, initial_batch=4,
                      additive_step=0)
    ctl = SloController(slo_s=0.1, min_batch=1, max_batch=8, initial_batch=4)
    with pytest.raises(ValueError):
        ctl.observe(-1.0)


def test_controller_counters_do_not_drift_when_clamped():
    """At min_batch a violation cannot shrink and must not count as a
    decrease; at max_batch headroom cannot grow and must not count as an
    increase — the counters record *actions*, not intents."""
    ctl = SloController(slo_s=0.1, min_batch=4, max_batch=64,
                        initial_batch=4)
    for _ in range(5):
        assert ctl.observe(1.0) == 4
    assert ctl.decreases == 0 and ctl.increases == 0

    ctl = SloController(slo_s=0.1, min_batch=1, max_batch=8,
                        initial_batch=8, additive_step=4)
    for _ in range(5):
        assert ctl.observe(0.001) == 8
    assert ctl.increases == 0 and ctl.decreases == 0

    # one step off the clamp and the counters move again
    ctl = SloController(slo_s=0.1, min_batch=4, max_batch=64,
                        initial_batch=8, additive_step=4)
    assert ctl.observe(1.0) == 4 and ctl.decreases == 1
    assert ctl.observe(0.001) == 8 and ctl.increases == 1
