"""ElasticityController: SLO-headroom replica-count policy."""

import pytest

from repro.serving import ElasticityController


def _controller(**kwargs):
    defaults = dict(slo_s=0.1, min_replicas=1, max_replicas=4,
                    scale_up_headroom=1.0, scale_down_headroom=0.4,
                    window=4, cooldown=0)
    defaults.update(kwargs)
    return ElasticityController(**defaults)


class TestValidation:
    @pytest.mark.parametrize("bad", [
        {"slo_s": 0.0},
        {"slo_s": float("inf")},
        {"min_replicas": 0},
        {"min_replicas": 3, "max_replicas": 2},
        {"scale_down_headroom": 0.0},
        {"scale_down_headroom": 1.0, "scale_up_headroom": 1.0},
        {"window": 0},
        {"cooldown": -1},
    ])
    def test_constructor_rejects(self, bad):
        with pytest.raises(ValueError):
            _controller(**bad)

    def test_observe_rejects_bad_inputs(self):
        controller = _controller()
        with pytest.raises(ValueError, match="worst_latency_s"):
            controller.observe(-0.1, 1)
        with pytest.raises(ValueError, match="replicas"):
            controller.observe(0.1, 0)


class TestPolicy:
    def test_silent_until_window_fills(self):
        controller = _controller(window=4)
        for _ in range(3):
            assert controller.observe(1.0, 1) == 0
        assert controller.observe(1.0, 1) == 1

    def test_scale_up_needs_violated_median_not_one_spike(self):
        controller = _controller(window=4)
        # one bad batch among comfortable ones: the batcher's problem
        for worst in (0.01, 0.01, 5.0, 0.01):
            delta = controller.observe(worst, 1)
        assert delta == 0 and controller.scale_ups == 0

    def test_scale_down_needs_whole_window_comfortable(self):
        controller = _controller(window=4)
        # slo*down_headroom = 0.04; a single 0.05 blocks the shrink
        for worst in (0.01, 0.01, 0.05, 0.01):
            delta = controller.observe(worst, 2)
        assert delta == 0
        controller2 = _controller(window=4)
        for worst in (0.01, 0.01, 0.03, 0.01):
            delta = controller2.observe(worst, 2)
        assert delta == -1 and controller2.scale_downs == 1

    def test_bounds_respected(self):
        controller = _controller(max_replicas=2)
        for _ in range(4):
            delta = controller.observe(1.0, 2)  # already at max
        assert delta == 0 and controller.scale_ups == 0
        controller = _controller(min_replicas=1)
        for _ in range(4):
            delta = controller.observe(0.001, 1)  # already at min
        assert delta == 0 and controller.scale_downs == 0

    def test_window_resets_after_action(self):
        controller = _controller(window=4)
        for _ in range(4):
            controller.observe(1.0, 1)
        assert controller.scale_ups == 1
        # the burst that triggered the action cannot staircase: a fresh
        # window must fill before the next decision
        for _ in range(3):
            assert controller.observe(1.0, 2) == 0
        assert controller.observe(1.0, 2) == 1

    def test_cooldown_separates_actions(self):
        controller = _controller(window=2, cooldown=6)
        assert controller.observe(1.0, 1) == 0
        assert controller.observe(1.0, 1) == 1  # first window may act
        deltas = [controller.observe(1.0, 2) for _ in range(5)]
        assert deltas == [0, 0, 0, 0, 0]  # window full but cooling down
        assert controller.observe(1.0, 2) == 1
        assert controller.scale_ups == 2
