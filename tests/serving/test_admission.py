"""Bounded admission queue: shedding, deadlines, FIFO order."""

import numpy as np
import pytest

from repro.serving.admission import AdmissionQueue, ServeRequest


def _request(i, arrival_s, deadline_s=None):
    return ServeRequest(request_id=f"req-{i:03d}", arrival_s=arrival_s,
                        pixels=np.full((3, 4, 4), i / 100.0),
                        deadline_s=deadline_s)


def test_offer_sheds_at_capacity():
    queue = AdmissionQueue(capacity=2, deadline_s=1.0)
    assert queue.offer(_request(0, 0.0))
    assert queue.offer(_request(1, 0.0))
    assert not queue.offer(_request(2, 0.0))
    assert queue.depth() == 2
    assert queue.shed_full_count() == 1
    stats = queue.stats()
    assert stats == {"depth": 2, "offered": 3, "admitted": 2,
                     "shed_full": 1}
    # the @conserves ledger: every arrival accounted exactly once
    assert stats["offered"] == stats["admitted"] + stats["shed_full"]


def test_take_is_fifo_and_bounded():
    queue = AdmissionQueue(capacity=8, deadline_s=10.0)
    for i in range(5):
        queue.offer(_request(i, 0.0))
    ready, expired = queue.take(3, now_s=0.0, min_service_s=0.0)
    assert [r.request_id for r in ready] == ["req-000", "req-001", "req-002"]
    assert expired == []
    assert queue.depth() == 2


def test_take_expires_requests_past_their_deadline():
    queue = AdmissionQueue(capacity=8, deadline_s=1.0)
    queue.offer(_request(0, arrival_s=0.0))   # waited 2s: expired
    queue.offer(_request(1, arrival_s=1.9))   # waited 0.1s: fine
    ready, expired = queue.take(4, now_s=2.0, min_service_s=0.05)
    assert [r.request_id for r in expired] == ["req-000"]
    assert [r.request_id for r in ready] == ["req-001"]


def test_per_request_deadline_overrides_config():
    queue = AdmissionQueue(capacity=8, deadline_s=10.0)
    queue.offer(_request(0, arrival_s=0.0, deadline_s=0.5))
    ready, expired = queue.take(1, now_s=1.0, min_service_s=0.0)
    assert ready == [] and len(expired) == 1


def test_min_service_floor_tightens_expiry():
    # a request 0.9s old with a 1.0s deadline still fits alone, but not
    # if the cheapest possible service takes 0.2s
    queue = AdmissionQueue(capacity=8, deadline_s=1.0)
    queue.offer(_request(0, arrival_s=0.0))
    ready, expired = queue.take(1, now_s=0.9, min_service_s=0.2)
    assert ready == [] and len(expired) == 1


def test_drain_returns_leftovers_in_order():
    queue = AdmissionQueue(capacity=8, deadline_s=1.0)
    for i in range(3):
        queue.offer(_request(i, 0.0))
    leftovers = queue.drain()
    assert [r.request_id for r in leftovers] == [
        "req-000", "req-001", "req-002"]
    assert queue.depth() == 0


@pytest.mark.parametrize("kwargs", [
    {"capacity": 0, "deadline_s": 1.0},
    {"capacity": 4, "deadline_s": 0.0},
])
def test_constructor_validation(kwargs):
    with pytest.raises(ValueError):
        AdmissionQueue(**kwargs)


def test_take_rejects_nonpositive_max_items():
    queue = AdmissionQueue(capacity=4, deadline_s=1.0)
    with pytest.raises(ValueError):
        queue.take(0, now_s=0.0, min_service_s=0.0)


def test_expired_behind_a_full_batch_stay_queued_unscanned():
    """take() stops scanning once ready fills: an expired request that
    ends up at the head stays queued for the *next* take, it is not shed
    as a side effect of forming an unrelated batch."""
    queue = AdmissionQueue(capacity=8, deadline_s=1.0)
    queue.offer(_request(0, arrival_s=5.0))   # fresh
    queue.offer(_request(1, arrival_s=5.0))   # fresh
    queue.offer(_request(2, arrival_s=0.0))   # long expired, behind them
    ready, expired = queue.take(2, now_s=5.0, min_service_s=0.0)
    assert [r.request_id for r in ready] == ["req-000", "req-001"]
    assert expired == []
    assert queue.depth() == 1
    ready, expired = queue.take(2, now_s=5.0, min_service_s=0.0)
    assert ready == []
    assert [r.request_id for r in expired] == ["req-002"]
    assert queue.depth() == 0
