"""End-to-end serving front end: accounting, determinism, faults."""

import pytest

from repro.core.cluster import InferenceServer, NDPipeCluster
from repro.core.config import ClusterConfig
from repro.faults import AddLatency, DropMessages, FaultInjector
from repro.models.registry import tiny_model
from repro.serving import ServingConfig, ServingFrontend
from repro.serving.bench import run_serving_comparison
from repro.workloads.continuous import open_loop_requests

SLO_S = 0.1


def _frontend(config=None, seed=0):
    config = config if config is not None else ServingConfig()
    replicas = [
        InferenceServer(tiny_model(config.model, seed=seed + i),
                        name=f"replica-{i}")
        for i in range(config.replicas)
    ]
    return ServingFrontend(replicas, config)


def _trace(num_requests=200, rate_rps=1500.0, seed=0, **kwargs):
    return open_loop_requests(num_requests=num_requests, rate_rps=rate_rps,
                              seed=seed, **kwargs)


def test_accounting_invariant_and_report_consistency():
    frontend = _frontend()
    report = frontend.serve(_trace())
    assert report.offered == 200
    assert report.offered == report.completed + report.shed_total
    assert len(report.latencies_s) == report.completed
    assert sum(report.batch_sizes) == report.completed
    assert report.makespan_s > 0
    assert report.cache_hits + report.cache_misses == report.completed
    # metrics mirror the report exactly (the ND004 families)
    metrics = frontend.metrics
    assert metrics.get("serving_requests_offered_total").value() == 200
    assert (metrics.get("serving_requests_completed_total").value()
            == report.completed)
    assert (metrics.get("serving_cache_hits_total").value()
            == report.cache_hits)
    assert (metrics.get("serving_cache_misses_total").value()
            == report.cache_misses)


def test_identical_runs_are_bit_identical():
    first = _frontend().serve(_trace())
    second = _frontend().serve(_trace())
    assert first.to_dict() == second.to_dict()
    assert first.latencies_s == second.latencies_s
    assert [o.label for o in first.completed_requests] == \
           [o.label for o in second.completed_requests]


def test_adaptive_meets_slo_and_beats_baseline_3x():
    result = run_serving_comparison(seed=0, num_requests=600)
    budget = result["latency_budget_s"]
    assert result["adaptive"]["p99_latency_s"] <= budget + 1e-9
    assert result["baseline"]["p99_latency_s"] <= budget + 1e-9
    assert result["speedup"] >= 3.0
    # the controller actually batches: mean batch well above synchronous
    assert result["adaptive"]["mean_batch"] > 4.0
    assert result["baseline"]["mean_batch"] == 1.0


def test_cache_hits_deterministic_across_arrival_seeds():
    """Misses are a property of the photo pool, not the arrival order."""
    from repro.serving.cache import content_key

    pool = dict(pool_size=32, pool_seed=77)
    all_keys = set()
    for seed in (0, 1, 2):
        trace = _trace(num_requests=400, seed=seed, **pool)
        distinct = {content_key(r.pixels) for r in trace}
        all_keys |= distinct
        report = _frontend().serve(trace)
        # every distinct photo misses exactly once, whatever the order
        assert report.cache_misses == len(distinct)
        assert report.cache_hits == report.completed - len(distinct)
        assert report.cache_evictions == 0
    # every arrival seed draws from the same shared pool
    assert len(all_keys) <= pool["pool_size"]


def test_queue_full_sheds_under_tiny_queue():
    config = ServingConfig(queue_capacity=4, max_batch=4, initial_batch=4)
    report = _frontend(config).serve(_trace(num_requests=300,
                                            rate_rps=20000.0))
    assert report.shed["queue_full"] > 0
    assert report.offered == report.completed + report.shed_total


def test_deadline_sheds_when_baseline_saturates():
    config = ServingConfig(min_batch=1, max_batch=1, initial_batch=1)
    report = _frontend(config).serve(_trace(num_requests=300))
    assert report.shed["deadline"] > 0
    assert report.offered == report.completed + report.shed_total
    # nothing completed late: sheds, not SLO violations
    assert report.p99_latency_s <= SLO_S + 1e-9


def test_dropped_dispatch_sheds_whole_batch_exactly():
    frontend = _frontend()
    # the retry policy makes 4 attempts; drop them all for one batch
    FaultInjector([DropMessages(at=1, count=4, kind="serve")]) \
        .attach_fabric(frontend.network)
    report = frontend.serve(_trace())
    assert report.shed["dispatch_failed"] > 0
    assert frontend.dispatcher.batches_failed == 1
    # the failed batch is shed in full, everything else completes
    assert report.offered == report.completed + report.shed_total
    assert frontend.retry.giveups == 1


def test_injected_latency_is_charged_to_requests():
    calm = _frontend().serve(_trace())
    frontend = _frontend()
    FaultInjector([AddLatency(at=1, seconds=0.04, count=1, kind="serve")]) \
        .attach_fabric(frontend.network)
    slowed = frontend.serve(_trace())
    assert slowed.offered == slowed.completed + slowed.shed_total
    # the delayed batch's requests observe the extra 40 ms
    assert max(slowed.latencies_s) >= max(calm.latencies_s) + 0.039
    assert frontend.network.injected_latency_s == pytest.approx(0.04)


def test_shed_accounting_exact_under_mixed_faults():
    frontend = _frontend()
    FaultInjector([
        DropMessages(at=1, count=4, kind="serve"),
        AddLatency(at=8, seconds=0.02, count=2, kind="serve"),
    ]).attach_fabric(frontend.network)
    report = frontend.serve(_trace(num_requests=400))
    assert report.offered == 400
    assert report.offered == report.completed + report.shed_total
    assert (frontend.metrics.get("serving_requests_shed_total")
            .value(reason="dispatch_failed")
            == report.shed["dispatch_failed"])


def test_cluster_serve_uploads_lands_completed_requests():
    cluster = NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=10, width=8, seed=7),
        ClusterConfig(num_stores=3),
    )
    requests = _trace(num_requests=60, rate_rps=800.0)
    report, photo_ids = cluster.serve_uploads(
        requests, ServingConfig(replicas=2))
    assert len(photo_ids) == report.completed
    assert len(cluster.database) == report.completed
    assert len(set(photo_ids)) == len(photo_ids)
    # every landed label matches what the serving replicas answered
    for outcome, photo_id in zip(report.completed_requests, photo_ids):
        record = cluster.database.lookup(photo_id)
        assert record.label == outcome.label
    # serving traffic rode the cluster's accounted fabric
    assert cluster.traffic_summary().get("serve", 0) > 0


def test_multi_replica_spreads_batches():
    config = ServingConfig(replicas=3)
    frontend = _frontend(config)
    report = frontend.serve(_trace(num_requests=400, rate_rps=4000.0))
    batches = frontend.metrics.get("serving_batches_dispatched_total")
    per_replica = [batches.value(replica=f"replica-{i}") for i in range(3)]
    assert all(v > 0 for v in per_replica)
    assert sum(per_replica) == len(report.batch_sizes)


def test_makespan_is_the_last_batch_completion():
    """Regression: makespan_s was recorded off the last batch's t_start,
    which collapses to the arrival time on a one-request trace."""
    frontend = _frontend(ServingConfig(replicas=1))
    trace = _trace(num_requests=1, rate_rps=100.0)
    report = frontend.serve(trace)
    assert report.completed == 1
    arrival = trace[0].arrival_s
    assert report.makespan_s == pytest.approx(arrival
                                              + report.latencies_s[0])
    assert report.makespan_s > arrival


def test_dispatcher_splits_injected_stall_from_busy_time():
    frontend = _frontend(ServingConfig(replicas=1))
    FaultInjector([
        AddLatency(at=1, seconds=0.04, count=1, kind="serve"),
    ]).attach_fabric(frontend.network)
    frontend.serve(_trace(num_requests=100))
    dispatcher = frontend.dispatcher
    # the injected fault latency is stall, not useful work
    assert dispatcher.stalled_s == pytest.approx(0.04)
    assert dispatcher.busy_s > 0.0


def test_failed_dispatch_time_is_stalled_not_busy():
    frontend = _frontend(ServingConfig(replicas=1))
    FaultInjector([
        DropMessages(at=1, count=4, kind="serve"),
    ]).attach_fabric(frontend.network)
    frontend.serve(_trace(num_requests=100))
    dispatcher = frontend.dispatcher
    assert dispatcher.batches_failed == 1
    # every second the replica lost to retries/backoff is accounted as
    # stall; busy_s only ever counts delivered work
    assert dispatcher.stalled_s > 0.0
    assert dispatcher.stalled_s == pytest.approx(
        frontend.retry.backoff_s + frontend.network.injected_latency_s)


def test_frontend_surfaces_cache_rejections():
    # a capacity below any compressed blob rejects every insert: the
    # cache stays empty, every request is a miss, and the rejection
    # counter mirrors into serving_cache_rejected_total
    frontend = _frontend(ServingConfig(replicas=1,
                                       cache_capacity_bytes=64))
    report = frontend.serve(_trace(num_requests=50, pool_size=8))
    assert report.cache_hits == 0
    assert report.cache_misses == report.completed
    assert report.cache_rejected_oversize == report.cache_misses > 0
    assert (frontend.metrics.get("serving_cache_rejected_total").value()
            == report.cache_rejected_oversize)
