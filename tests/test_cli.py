"""Tests for the ``python -m repro.cli`` entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "ResNet50"
        assert args.gbps == 10.0


class TestCommands:
    def test_plan_prints_apo_result(self, capsys):
        assert main(["plan", "--model", "ResNet50"]) == 0
        out = capsys.readouterr().out
        assert "APO plan for ResNet50" in out
        assert "+Conv5" in out
        assert "8" in out  # the paper's pick

    def test_plan_inferentia(self, capsys):
        assert main(["plan", "--model", "ResNet50",
                     "--accelerator", "inferentia"]) == 0
        assert "NeuronCoreV1" in capsys.readouterr().out

    def test_plan_unknown_model_raises(self):
        with pytest.raises(KeyError):
            main(["plan", "--model", "AlexNet"])

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out and "Fig. 11" in out and "Fig. 13" in out

    def test_catalog_command(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "g4dn.4xlarge" in out
        assert "ResNet50" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "--stores", "2", "--photos", "24"]) == 0
        out = capsys.readouterr().out
        assert "photos ingested" in out
        assert "model delta" in out


class TestObservabilityCommands:
    def test_metrics_prometheus(self, capsys):
        assert main(["metrics", "--stores", "2", "--photos", "12"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE fabric_bytes_total counter" in out
        assert 'fabric_bytes_total{kind="ingest"' in out
        assert "# TYPE ftdmp_store_stage_seconds histogram" in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--format", "json",
                     "--stores", "2", "--photos", "12"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cluster_photos_ingested_total"]["value"] == 12

    def test_metrics_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(["metrics", "--stores", "2", "--photos", "12",
                     "--out", str(out_path)]) == 0
        assert "fabric_bytes_total" in out_path.read_text()
        assert str(out_path) in capsys.readouterr().out

    def test_trace_command(self, capsys):
        import json

        assert main(["trace", "--stores", "2", "--photos", "12"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"cluster.ingest", "cluster.finetune",
                "cluster.offline_relabel"} <= names


class TestShardBenchCommand:
    SMALL = ["--uploads", "2000", "--users", "5000", "--shards", "4"]

    def test_text_tables(self, capsys):
        assert main(["shard-bench"] + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "ring movement" in out
        assert "Check-N-Run distribution" in out
        assert "live join" in out
        assert "acme" in out  # per-tenant admission accounting

    def test_json_payload(self, capsys):
        import json

        assert main(["shard-bench", "--format", "json"] + self.SMALL) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["num_shards"] == 4
        assert payload["placement"]["keys"] == 2000
        fanout = payload["fanout"]
        assert fanout["fanout"]["tuner_egress_bytes"] \
            < fanout["unicast"]["tuner_egress_bytes"]
        assert payload["migration"]["unrecoverable"] == 0

    def test_out_file(self, tmp_path, capsys):
        out_path = tmp_path / "shard.txt"
        assert main(["shard-bench", "--out", str(out_path)]
                    + self.SMALL) == 0
        assert "ring movement" in out_path.read_text()

    def test_unknown_override_is_loud(self):
        with pytest.raises(ValueError, match="unknown overrides"):
            from repro.placement.bench import run_sharding_bench
            run_sharding_bench(overrides={"shards": 4})


class TestPerfCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.scale == "smoke"
        assert args.tolerance == 0.15
        assert args.attempts == 3
        assert args.baseline_dir == "benchmarks/results"
        assert not args.check and not args.bless

    def test_bless_and_check_are_exclusive(self, capsys):
        assert main(["perf", "--bless", "--check"]) == 2

    def test_bless_records_baselines(self, tmp_path, capsys):
        import json

        base = tmp_path / "results"
        assert main(["perf", "--scenario", "ingest", "--bless",
                     "--baseline-dir", str(base)]) == 0
        payload = json.loads((base / "BENCH_ingest.json").read_text())
        assert payload["schema_version"] == 2
        assert payload["config"]["scale"] == "smoke"
        out = capsys.readouterr().out
        assert "ingest_speed_factor" in out

    def test_check_gates_against_blessed_baselines(self, tmp_path, capsys):
        base = tmp_path / "results"
        assert main(["perf", "--scenario", "ingest", "--bless",
                     "--baseline-dir", str(base)]) == 0
        capsys.readouterr()
        # generous tolerance: this is a plumbing test, not a perf test
        assert main(["perf", "--scenario", "ingest", "--check",
                     "--tolerance", "2.0",
                     "--baseline-dir", str(base)]) == 0
        assert "perf gate" in capsys.readouterr().out

    def test_check_without_baselines_errors(self, tmp_path, capsys):
        assert main(["perf", "--scenario", "ingest", "--check",
                     "--baseline-dir", str(tmp_path / "void")]) == 2
        assert "no committed baseline" in capsys.readouterr().err
