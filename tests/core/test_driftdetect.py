"""Tests for drift detectors and maintenance policies."""

import numpy as np
import pytest

from repro.core.driftdetect import (
    AccuracyWindowDetector,
    DetectionPolicy,
    MaintenanceLog,
    NeverPolicy,
    PageHinkley,
    ScheduledPolicy,
)


class TestPageHinkley:
    def test_no_detection_on_stationary_stream(self):
        rng = np.random.default_rng(0)
        detector = PageHinkley(threshold=1.0)
        fired = [detector.update(v) for v in rng.normal(0.3, 0.02, 500)]
        assert not any(fired)

    def test_detects_mean_shift(self):
        rng = np.random.default_rng(1)
        detector = PageHinkley(threshold=1.0)
        for v in rng.normal(0.3, 0.02, 200):
            assert not detector.update(v)
        fired = [detector.update(v) for v in rng.normal(0.5, 0.02, 200)]
        assert any(fired)

    def test_min_samples_suppresses_early_alarms(self):
        detector = PageHinkley(threshold=0.001, min_samples=50)
        fired = [detector.update(10.0) for _ in range(49)]
        assert not any(fired)

    def test_reset(self):
        detector = PageHinkley(threshold=0.5)
        for _ in range(100):
            detector.update(1.0)
        detector.reset()
        assert detector.statistic == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_samples=0)


class TestAccuracyWindow:
    def test_no_alarm_while_filling(self):
        detector = AccuracyWindowDetector(window=20)
        assert not any(detector.update(True) for _ in range(19))

    def test_detects_accuracy_drop(self):
        detector = AccuracyWindowDetector(window=20, tolerance=0.1)
        for _ in range(40):
            detector.update(True)
        fired = [detector.update(False) for _ in range(20)]
        assert any(fired)

    def test_rearm_resets_baseline(self):
        detector = AccuracyWindowDetector(window=10, tolerance=0.05)
        for _ in range(20):
            detector.update(True)
        detector.rearm()
        assert detector.baseline is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyWindowDetector(window=0)
        with pytest.raises(ValueError):
            AccuracyWindowDetector(tolerance=0.0)


class TestPolicies:
    def test_scheduled_fires_on_period(self):
        policy = ScheduledPolicy(period_days=2)
        fired = []
        for day in range(7):
            if policy.should_update(day, 0.7):
                policy.notify_updated(day)
                fired.append(day)
        assert fired == [2, 4, 6]

    def test_detection_fires_only_on_drop(self):
        policy = DetectionPolicy(tolerance=0.05)
        assert not policy.should_update(0, 0.70)  # baseline set
        assert not policy.should_update(1, 0.68)
        assert policy.should_update(2, 0.60)
        policy.notify_updated(2)
        assert not policy.should_update(3, 0.66)  # re-baselined

    def test_never_policy(self):
        policy = NeverPolicy()
        assert not policy.should_update(10, 0.0)

    def test_scheduled_validation(self):
        with pytest.raises(ValueError):
            ScheduledPolicy(period_days=0)

    def test_maintenance_log(self):
        log = MaintenanceLog(policy="x", triggered_days=[2, 4],
                             accuracies=[0.7, 0.6])
        assert log.num_updates == 2
        assert log.mean_accuracy == pytest.approx(0.65)
        with pytest.raises(ValueError):
            MaintenanceLog(policy="y").mean_accuracy
