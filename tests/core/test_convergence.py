"""Tests for the Theorem 5.1 / Lemma 5.2 convergence calculators."""

import math

import numpy as np
import pytest

from repro.core.convergence import (
    check_pipelined_losses,
    delta_balancedness,
    inter_run_loss_gap,
    iterations_to_converge,
)


class TestLossGap:
    def test_gap_shrinks_with_more_samples(self):
        small = inter_run_loss_gap(10_000, 100)
        large = inter_run_loss_gap(10_000, 100_000)
        assert large < small

    def test_gap_grows_with_model_size(self):
        assert inter_run_loss_gap(10**8, 1000) > inter_run_loss_gap(10**4, 1000)

    def test_gap_grows_with_confidence(self):
        assert (inter_run_loss_gap(1000, 1000, confidence=0.01)
                > inter_run_loss_gap(1000, 1000, confidence=0.2))

    def test_closed_form(self):
        gap = inter_run_loss_gap(500, 2000, confidence=0.05)
        assert gap == pytest.approx(math.sqrt(math.log(2 * 500 / 0.05) / 4000))

    def test_validation(self):
        with pytest.raises(ValueError):
            inter_run_loss_gap(0, 10)
        with pytest.raises(ValueError):
            inter_run_loss_gap(10, 0)
        with pytest.raises(ValueError):
            inter_run_loss_gap(10, 10, confidence=1.5)


class TestIterationBound:
    def test_already_converged_needs_zero(self):
        assert iterations_to_converge(0.01, 0.0, 0.05, 0.1, 1.0, 3) == 0.0

    def test_bound_grows_for_tighter_targets(self):
        loose = iterations_to_converge(1.0, 0.1, 0.5, 0.01, 1.0, 3)
        tight = iterations_to_converge(1.0, 0.1, 0.05, 0.01, 1.0, 3)
        assert tight > loose

    def test_bound_shrinks_with_larger_lr(self):
        slow = iterations_to_converge(1.0, 0.1, 0.1, 0.001, 1.0, 3)
        fast = iterations_to_converge(1.0, 0.1, 0.1, 0.01, 1.0, 3)
        assert fast < slow

    def test_matches_theorem_formula(self):
        t2 = iterations_to_converge(0.8, 0.2, 0.1, 0.05, 2.0, 4)
        exponent = 2 * 3 / 4
        expected = math.log(1.0 / 0.1) / (0.05 * 2.0 ** exponent)
        assert t2 == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            iterations_to_converge(1.0, 0.0, 0.0, 0.1, 1.0, 3)
        with pytest.raises(ValueError):
            iterations_to_converge(1.0, 0.0, 0.1, -0.1, 1.0, 3)
        with pytest.raises(ValueError):
            iterations_to_converge(1.0, 0.0, 0.1, 0.1, 1.0, 1)


class TestDeltaBalance:
    def test_perfectly_balanced_orthogonal(self):
        # W2^T W2 == W1 W1^T when both are identity-like
        w1 = np.eye(4)
        w2 = np.eye(4)
        assert delta_balancedness([w1, w2]) == pytest.approx(0.0)

    def test_unbalanced_detected(self):
        w1 = np.eye(3)
        w2 = 10 * np.eye(3)
        assert delta_balancedness([w1, w2]) > 10

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            delta_balancedness([np.ones((3, 2)), np.ones((5, 4))])

    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            delta_balancedness([np.eye(2)])


class TestPipelinedAudit:
    def test_wellbehaved_runs_satisfy_lemma(self):
        losses = [[1.0, 0.6, 0.4], [0.45, 0.3], [0.32, 0.25]]
        verdicts = check_pipelined_losses(losses, num_weights=1000,
                                          samples_per_run=500)
        assert all(v.satisfies_lemma for v in verdicts)

    def test_big_jump_violates_lemma(self):
        losses = [[1.0, 0.2], [2.5, 0.3]]
        verdicts = check_pipelined_losses(losses, num_weights=100,
                                          samples_per_run=10_000)
        assert not verdicts[1].satisfies_lemma

    def test_first_run_always_passes(self):
        verdicts = check_pipelined_losses([[99.0, 1.0]], 100, 100)
        assert verdicts[0].satisfies_lemma

    def test_validation(self):
        with pytest.raises(ValueError):
            check_pipelined_losses([[1.0], []], 10, 10)
        with pytest.raises(ValueError):
            check_pipelined_losses([[1.0]], 10, 0)

    def test_real_pipelined_training_obeys_lemma(self, small_world):
        """Audit an actual pipelined FT-DMP job against Lemma 5.2."""
        from repro.core.ftdmp import FTDMPTrainer
        from repro.data.loader import normalize_images
        from repro.models.registry import tiny_model
        from repro.train.fulltrain import full_train

        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        x, y = small_world.sample(180, 0, rng=np.random.default_rng(1))
        full_train(model, normalize_images(x), y, epochs=2, seed=0)
        trainer = FTDMPTrainer(model, lr=3e-3)
        x_ft, y_ft = small_world.sample(180, 4, rng=np.random.default_rng(2))
        report = trainer.finetune(normalize_images(x_ft), y_ft, epochs=2,
                                  num_runs=3)
        by_run = {}
        for rec in report.epochs:
            by_run.setdefault(rec.run, []).append(rec.loss)
        runs = [by_run[k] for k in sorted(by_run)]
        clf_params = sum(p.size for p in model.classifier.parameters())
        verdicts = check_pipelined_losses(runs, clf_params, 60)
        assert all(v.satisfies_lemma for v in verdicts)
