"""End-to-end tests for PipeStore / Tuner / NDPipeCluster and the fabric."""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.fabric import NetworkFabric
from repro.core.pipestore import PipeStore, StoredPhoto
from repro.models.registry import tiny_model
from repro.storage.imageformat import preprocess
from repro.storage.objectstore import MissingObjectError


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


@pytest.fixture
def cluster(small_world):
    return NDPipeCluster(factory, num_stores=3, nominal_raw_bytes=4096)


@pytest.fixture
def loaded_cluster(cluster, small_world):
    x, y = small_world.sample(90, 0, rng=np.random.default_rng(2))
    ids = cluster.ingest(x, train_labels=y)
    return cluster, ids, (x, y)


class TestFabric:
    def test_accounts_bytes_by_edge_and_kind(self):
        net = NetworkFabric()
        net.send("a", "b", 100, "features")
        net.send("a", "b", 50, "features")
        net.send("b", "a", 10, "labels")
        assert net.bytes_between("a", "b") == 150
        assert net.bytes_of_kind("features") == 150
        assert net.total_bytes == 160
        assert net.transfer_count == 3

    def test_local_handoff_is_free(self):
        net = NetworkFabric()
        payload = object()
        assert net.send("a", "a", 10**9, "bulk", payload) is payload
        assert net.total_bytes == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkFabric().send("a", "b", -1, "x")

    def test_reset(self):
        net = NetworkFabric()
        net.send("a", "b", 5, "x")
        net.reset()
        assert net.total_bytes == 0 and net.kinds() == {}

    def test_transfer_seconds(self):
        net = NetworkFabric()
        net.send("a", "b", int(net.spec.bytes_per_s), "x")
        assert net.transfer_seconds() == pytest.approx(1.0)


class TestPipeStore:
    def test_store_and_reload_photo(self, rng):
        store = PipeStore("s0", nominal_raw_bytes=4096)
        pixels = rng.random((3, 16, 16))
        photo = StoredPhoto("p0", pixels, preprocess(pixels), train_label=3)
        stored = store.store_photo(photo)
        assert stored >= 4096
        out = store.load_preprocessed("p0")
        assert np.allclose(out, preprocess(pixels), atol=1e-6)
        assert store.photo_ids() == ["p0"]
        assert store.train_label("p0") == 3

    def test_missing_label(self, rng):
        store = PipeStore("s0")
        pixels = rng.random((3, 16, 16))
        store.store_photo(StoredPhoto("p0", pixels, preprocess(pixels)))
        with pytest.raises(MissingObjectError):
            store.train_label("p0")

    def test_jobs_require_model(self, rng):
        store = PipeStore("s0")
        pixels = rng.random((3, 16, 16))
        store.store_photo(StoredPhoto("p0", pixels, preprocess(pixels)))
        with pytest.raises(RuntimeError, match="no model"):
            store.extract_features(["p0"])
        with pytest.raises(RuntimeError, match="no model"):
            store.offline_infer(["p0"])

    def test_empty_id_list_rejected(self):
        store = PipeStore("s0")
        store.install_model(factory(), 5, 0)
        with pytest.raises(ValueError):
            store.extract_features([])

    def test_stale_delta_rejected(self):
        store = PipeStore("s0")
        store.install_model(factory(), 5, version=3)
        with pytest.raises(ValueError, match="not newer"):
            store.apply_model_delta(b"CNR1\x00\x00\x00\x00x\x9c\x03\x00\x00\x00\x00\x01",
                                    version=3)

    def test_preprocessed_overhead_below_raw(self, rng):
        store = PipeStore("s0", nominal_raw_bytes=8192)
        for i in range(5):
            pixels = rng.random((3, 16, 16))
            store.store_photo(StoredPhoto(f"p{i}", pixels, preprocess(pixels)))
        assert store.objects.preprocessed_overhead() < 0.5


class TestIngest:
    def test_ingest_places_round_robin(self, loaded_cluster):
        cluster, ids, _ = loaded_cluster
        counts = [len(s.photo_ids()) for s in cluster.stores]
        assert counts == [30, 30, 30]
        assert len(ids) == 90

    def test_ingest_indexes_labels(self, loaded_cluster):
        cluster, ids, _ = loaded_cluster
        assert len(cluster.database) == 90
        record = cluster.database.lookup(ids[0])
        assert record.model_version == 0
        assert record.location == "pipestore-0"

    def test_ingest_traffic_includes_preprocessed_offload(self, loaded_cluster):
        cluster, ids, _ = loaded_cluster
        kinds = cluster.traffic_summary()
        assert kinds["ingest"] > 90 * 4096  # raw photos + preproc binaries

    def test_ingest_validation(self, cluster, rng):
        with pytest.raises(ValueError):
            cluster.ingest(rng.random((4, 3, 16)))
        with pytest.raises(ValueError):
            cluster.ingest(rng.random((2, 3, 16, 16)), train_labels=[1])


class TestFinetuneFlow:
    def test_finetune_trains_and_distributes(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        report = cluster.finetune(epochs=2)
        assert report.images_extracted == 90
        assert cluster.tuner.version == 1
        assert all(s.model_version == 1 for s in cluster.stores)
        # deltas are far smaller than full models
        dist = cluster.tuner.distributions[-1]
        assert dist.reduction_factor > 3

    def test_feature_traffic_much_smaller_than_images(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster.finetune(epochs=1)
        kinds = cluster.traffic_summary()
        assert kinds["features"] < 0.1 * kinds["ingest"]

    def test_store_replicas_match_tuner_after_update(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster.finetune(epochs=1)
        tuner_state = cluster.tuner.model.state_dict()
        for store in cluster.stores:
            store_state = store.model.state_dict()
            for key in tuner_state:
                assert np.allclose(store_state[key], tuner_state[key],
                                   atol=1e-12), key

    def test_pipelined_finetune_runs(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        report = cluster.finetune(epochs=1, num_runs=3)
        assert {e.run for e in report.epochs} == {0, 1, 2}

    def test_features_equal_tuner_side_extraction(self, loaded_cluster):
        """The FT-DMP core invariant: PipeStore features == the Tuner's own
        frozen-front forward on the same inputs."""
        cluster, ids, _ = loaded_cluster
        store = cluster.stores[0]
        some_ids = store.photo_ids()[:8]
        feats = store.extract_features(some_ids)
        from repro.nn.tensor import Tensor

        inputs = np.stack([store.load_preprocessed(p) for p in some_ids])
        cluster.tuner.model.eval()
        direct = cluster.tuner.model.forward_until(
            Tensor(inputs), cluster.tuner.split).data
        assert np.allclose(feats, direct, atol=1e-10)


class TestOfflineRelabel:
    def test_relabel_bumps_versions(self, loaded_cluster):
        cluster, ids, _ = loaded_cluster
        cluster.finetune(epochs=1)
        stats = cluster.offline_relabel()
        assert stats.photos_processed == 90
        versions = cluster.database.version_counts()
        assert versions == {1: 90}

    def test_relabel_only_outdated_skips_fresh(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster.finetune(epochs=1)
        cluster.offline_relabel()
        again = cluster.offline_relabel()
        assert again.photos_processed == 0

    def test_relabel_traffic_is_labels_only(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster.finetune(epochs=1)
        before = cluster.network.bytes_of_kind("labels")
        stats = cluster.offline_relabel()
        after = cluster.network.bytes_of_kind("labels")
        assert after - before == stats.label_bytes
        assert stats.label_bytes < 90 * 64

    def test_fraction_changed_property(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster.finetune(epochs=1)
        stats = cluster.offline_relabel()
        assert 0.0 <= stats.fraction_changed <= 1.0


class TestEvaluation:
    def test_evaluate_returns_top1_top5(self, loaded_cluster, small_world):
        cluster, _, _ = loaded_cluster
        x, y = small_world.sample(60, 0, rng=np.random.default_rng(8))
        top1, top5 = cluster.evaluate(x, y)
        assert 0.0 <= top1 <= top5 <= 1.0

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            NDPipeCluster(factory, num_stores=0)


class TestUploadJournal:
    """Regression: the upload journal grew without bound — every ingested
    photo's raw pixels stayed resident for the cluster's lifetime."""

    def test_journal_capped_bounds_memory(self, small_world):
        cluster = NDPipeCluster(factory, num_stores=2,
                                nominal_raw_bytes=4096,
                                journal_max_entries=16)
        rng = np.random.default_rng(4)
        for _ in range(3):
            x, y = small_world.sample(20, 0, rng=rng)
            cluster.ingest(x, train_labels=y)
            assert cluster.journal_size <= 16
        assert cluster.journal_size == 16
        pruned = cluster.metrics.get("cluster_journal_pruned_total")
        assert pruned.value(reason="capacity") == 60 - 16
        assert cluster.metrics.get("cluster_journal_entries").value() == 16

    def test_cap_evicts_oldest_uploads_first(self, small_world):
        cluster = NDPipeCluster(factory, num_stores=2,
                                journal_max_entries=5)
        x, y = small_world.sample(8, 0, rng=np.random.default_rng(5))
        ids = cluster.ingest(x, train_labels=y)
        assert sorted(cluster._journal) == sorted(ids[-5:])

    def test_uncapped_journal_tracks_every_upload(self, loaded_cluster):
        cluster, ids, _ = loaded_cluster
        assert cluster.journal_size == len(ids)

    def test_prune_drops_entries_departed_from_database(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster._journal["ghost-upload"] = (np.zeros((3, 16, 16)), None)
        assert cluster.prune_journal() == 1
        assert "ghost-upload" not in cluster._journal
        assert cluster.prune_journal() == 0
        pruned = cluster.metrics.get("cluster_journal_pruned_total")
        assert pruned.value(reason="departed") == 1

    def test_reconcile_prunes_the_journal(self, loaded_cluster):
        cluster, _, _ = loaded_cluster
        cluster._journal["ghost-upload"] = (np.zeros((3, 16, 16)), None)
        cluster.reconcile(cluster.stores[0])
        assert "ghost-upload" not in cluster._journal

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            NDPipeCluster(factory, num_stores=1, journal_max_entries=0)

    def test_capped_journal_still_recovers_recent_orphans(self, small_world):
        """The cap trades recovery depth for memory: photos still inside
        the window re-place onto survivors after a crash."""
        cluster = NDPipeCluster(factory, num_stores=3,
                                nominal_raw_bytes=4096,
                                journal_max_entries=64)
        x, y = small_world.sample(12, 0, rng=np.random.default_rng(6))
        cluster.ingest(x, train_labels=y)
        victim = cluster.stores[0]
        orphans = cluster.database.ids_at(victim.store_id)
        victim.fail()
        moved = cluster.reingest_orphans(victim.store_id)
        assert sorted(moved) == sorted(orphans)
