"""Tests for the NPE: threaded pipeline behaviour and the Fig. 12 ablation."""

import time

import pytest

from repro.core.npe import (
    ABLATION_LEVELS,
    NpeConfig,
    ThreadedPipeline,
    npe_ablation,
    npe_pipeline_stage_times,
    npe_task_times,
    npe_throughput_ips,
)
from repro.models.catalog import model_graph
from repro.sim.specs import PREPROCESSED_BYTES


class TestThreadedPipeline:
    def test_preserves_order_and_applies_stages(self):
        pipe = ThreadedPipeline([
            ("double", lambda x: x * 2),
            ("inc", lambda x: x + 1),
        ])
        assert pipe.run(range(20)) == [x * 2 + 1 for x in range(20)]

    def test_stats_count_items(self):
        pipe = ThreadedPipeline([("noop", lambda x: x)])
        pipe.run(range(7))
        assert pipe.stats[0].items == 7

    def test_overlap_actually_happens(self):
        """3 stages of 10ms sleeps over 8 items: pipelined wall-clock must
        be well under the 240ms serial time."""
        def slow(x):
            time.sleep(0.01)
            return x

        pipe = ThreadedPipeline([("a", slow), ("b", slow), ("c", slow)])
        start = time.perf_counter()
        pipe.run(range(8))
        elapsed = time.perf_counter() - start
        # serial would be 240 ms; allow generous slack for loaded machines
        assert elapsed < 0.21

    def test_bottleneck_identified(self):
        def fast(x):
            return x

        def slow(x):
            time.sleep(0.005)
            return x

        pipe = ThreadedPipeline([("fast", fast), ("slow", slow)])
        pipe.run(range(10))
        assert pipe.bottleneck().name == "slow"

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("stage failed")

        pipe = ThreadedPipeline([("boom", boom)])
        with pytest.raises(RuntimeError, match="stage failed"):
            pipe.run(range(3))

    def test_midstream_failure_does_not_deadlock(self):
        """A mid-stream stage error with tiny queues and many items used to
        wedge the pipeline: the feeder blocked on a full queue while the
        caller waited on a sentinel that never came.  The run must now
        abort promptly, drain, and re-raise."""
        import threading

        def middle(x):
            if x == 7:
                raise ValueError("item 7 is poison")
            return x

        pipe = ThreadedPipeline([
            ("a", lambda x: x),
            ("poison", middle),
            ("c", lambda x: x),
        ], queue_depth=1)
        outcome = []

        def drive():
            try:
                pipe.run(range(500))
            except BaseException as exc:
                outcome.append(exc)

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        driver.join(timeout=10)
        assert not driver.is_alive(), "pipeline deadlocked on stage failure"
        assert len(outcome) == 1
        assert isinstance(outcome[0], ValueError)
        assert "poison" in str(outcome[0])

    def test_midstream_failure_joins_all_threads(self):
        import threading

        baseline = threading.active_count()

        def boom(x):
            if x == 3:
                raise RuntimeError("late failure")
            return x

        pipe = ThreadedPipeline([
            ("a", lambda x: x), ("b", boom), ("c", lambda x: x),
        ], queue_depth=2)
        with pytest.raises(RuntimeError, match="late failure"):
            pipe.run(range(50))
        assert threading.active_count() == baseline

    def test_feeder_exception_propagates_and_shuts_down(self):
        def items():
            yield 1
            yield 2
            raise OSError("source went away")

        pipe = ThreadedPipeline([("noop", lambda x: x)], queue_depth=1)
        with pytest.raises(OSError, match="source went away"):
            pipe.run(items())

    def test_results_before_failure_are_discarded_not_returned(self):
        """An aborted run raises; it never hands back a partial result."""
        def boom(x):
            if x >= 5:
                raise RuntimeError("boom")
            return x

        pipe = ThreadedPipeline([("boom", boom)], queue_depth=2)
        with pytest.raises(RuntimeError):
            pipe.run(range(20))
        # the pipeline object is reusable after a failed run
        ok = ThreadedPipeline([("noop", lambda x: x)]).run(range(4))
        assert ok == [0, 1, 2, 3]

    def test_empty_input(self):
        pipe = ThreadedPipeline([("noop", lambda x: x)])
        assert pipe.run([]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadedPipeline([])
        with pytest.raises(ValueError):
            ThreadedPipeline([("a", lambda x: x)], queue_depth=0)

    def test_real_photo_pipeline(self, rng):
        """Read -> decompress/preprocess -> classify over real blobs."""
        from repro.models.registry import tiny_model
        from repro.nn.tensor import Tensor
        from repro.storage.compression import deflate, inflate
        from repro.storage.imageformat import (
            decode_preprocessed,
            encode_preprocessed,
            preprocess,
        )

        model = tiny_model("ResNet50", num_classes=6, width=8).eval()
        blobs = [
            deflate(encode_preprocessed(preprocess(rng.random((3, 16, 16)))))
            for _ in range(12)
        ]

        pipe = ThreadedPipeline([
            ("read", lambda blob: blob),
            ("decomp", lambda blob: decode_preprocessed(inflate(blob))),
            ("infer", lambda arr: int(
                model(Tensor(arr[None])).data.argmax())),
        ])
        labels = pipe.run(blobs)
        assert len(labels) == 12
        assert all(0 <= label < 6 for label in labels)


class TestAblationModel:
    @pytest.fixture(scope="class")
    def graph(self):
        return model_graph("ResNet50")

    def test_all_levels_present(self, graph):
        out = npe_ablation(graph, "inference")
        assert set(out) == set(ABLATION_LEVELS)

    def test_naive_inference_dominated_by_preprocessing(self, graph):
        """Fig. 12b: with 1 CPU core, preprocessing dwarfs everything."""
        times = npe_task_times(graph, "Naive", "inference")
        assert times["Preproc"] == max(times.values())
        assert times["Preproc"] > 10 * times["Read"]

    def test_offload_eliminates_preprocessing(self, graph):
        times = npe_task_times(graph, "+Offload", "inference")
        assert times["Preproc"] == 0.0

    def test_comp_shrinks_read_time(self, graph):
        offload = npe_task_times(graph, "+Offload", "inference")
        comp = npe_task_times(graph, "+Comp", "inference")
        assert comp["Read"] < offload["Read"]
        assert comp["Decomp"] > 0

    def test_batch_shrinks_fecl(self, graph):
        comp = npe_task_times(graph, "+Comp", "inference")
        batch = npe_task_times(graph, "+Batch", "inference")
        assert batch["FE&Cl"] < comp["FE&Cl"] / 3

    def test_final_stages_roughly_balanced(self, graph):
        """§5.4: batch size 128 balances each stage's duration."""
        times = npe_task_times(graph, "+Batch", "inference")
        busy = [v for v in times.values() if v > 0]
        assert max(busy) / min(busy) < 3.0

    def test_throughput_increases_along_ablation(self, graph):
        rates = [npe_throughput_ips(graph, level, "inference")
                 for level in ABLATION_LEVELS]
        assert rates == sorted(rates)
        # final optimised PipeStore reaches the paper's per-store IPS
        assert rates[-1] == pytest.approx(2129, rel=0.05)

    def test_finetune_naive_bottleneck_is_fe(self, graph):
        """Fig. 12a: FE dominates naive fine-tuning (sync moved to Tuner)."""
        times = npe_task_times(graph, "Naive", "finetune")
        assert times["FE"] == max(times.values())

    def test_unknown_level_and_task(self, graph):
        with pytest.raises(ValueError):
            npe_task_times(graph, "turbo")
        with pytest.raises(ValueError):
            npe_task_times(graph, "Naive", task="training")


class TestStatsAcrossRuns:
    """Regression: ``stats`` used to accumulate across ``run()`` calls, so
    ``bottleneck()`` on a reused pipeline mixed totals from old runs."""

    def test_stats_reset_per_run(self):
        pipe = ThreadedPipeline([("noop", lambda x: x)])
        pipe.run(range(7))
        pipe.run(range(3))
        assert pipe.stats[0].items == 3  # latest run only

    def test_cumulative_stats_keep_lifetime_view(self):
        pipe = ThreadedPipeline([("noop", lambda x: x)])
        pipe.run(range(7))
        pipe.run(range(3))
        assert pipe.cumulative_stats[0].items == 10

    def test_bottleneck_reflects_latest_run_only(self):
        import time as _time

        calls = {"n": 0}

        def sometimes_slow(x):
            calls["n"] += 1
            if calls["n"] <= 10:  # slow only during the first run
                _time.sleep(0.005)
            return x

        pipe = ThreadedPipeline([
            ("flaky", sometimes_slow), ("steady", lambda x: x),
        ])
        pipe.run(range(10))
        assert pipe.bottleneck().name == "flaky"
        pipe.run(range(10))
        assert pipe.stats[0].busy_seconds < 0.005 * 10

    def test_metrics_accumulate_across_runs(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        pipe = ThreadedPipeline([("noop", lambda x: x)], name="p",
                                metrics=reg)
        pipe.run(range(4))
        pipe.run(range(6))
        items = reg.get("npe_stage_items_total")
        assert items.value(pipeline="p", stage="noop") == 10


class TestAbortedRunStats:
    """Regression: an aborted ``run()`` used to fold its partial stats
    into ``cumulative_stats`` (and the bound metrics), so the retry after
    a failure double-counted every item the aborted run had already
    pushed through."""

    def _flaky_pipe(self, fail_on_call, metrics=None):
        calls = {"n": 0}

        def work(x):
            calls["n"] += 1
            if calls["n"] == fail_on_call:
                raise RuntimeError("boom")
            return x

        return ThreadedPipeline([("work", work)], name="flaky",
                                metrics=metrics)

    def test_abort_does_not_pollute_cumulative_stats(self):
        pipe = self._flaky_pipe(fail_on_call=3)
        with pytest.raises(RuntimeError, match="boom"):
            pipe.run(range(6))
        assert pipe.cumulative_stats[0].items == 0
        assert pipe.aborted_stats[0].items >= 2  # the pre-crash progress

    def test_retry_after_abort_counts_each_item_once(self):
        pipe = self._flaky_pipe(fail_on_call=3)
        with pytest.raises(RuntimeError):
            pipe.run(range(6))
        assert pipe.run(range(6)) == list(range(6))
        # the retried run contributes exactly its 6 items; the aborted
        # run's partial progress stays out of the lifetime view
        assert pipe.cumulative_stats[0].items == 6

    def test_metrics_skip_aborted_runs(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        pipe = self._flaky_pipe(fail_on_call=3, metrics=reg)
        with pytest.raises(RuntimeError):
            pipe.run(range(6))
        pipe.run(range(6))
        items = reg.get("npe_stage_items_total")
        assert items.value(pipeline="flaky", stage="work") == 6


class TestSharedCpuStage:
    """Regression: throughput took max() over subtasks, but Preproc and
    Decomp share the CPU stage — the bottleneck is their sum."""

    @pytest.fixture(scope="class")
    def graph(self):
        return model_graph("ResNet50")

    def test_pipeline_stage_folding(self, graph):
        times = npe_task_times(graph, "+Comp", "inference")
        stages = npe_pipeline_stage_times(times)
        assert stages["read"] == times["Read"]
        assert stages["cpu"] == times["Preproc"] + times["Decomp"]
        assert stages["accelerator"] == times["FE&Cl"]

    def test_both_cpu_subtasks_sum_into_bottleneck(self, graph):
        cfg = NpeConfig(
            "custom", PREPROCESSED_BYTES, PREPROCESSED_BYTES,
            preprocess_on_store=True, decompress=True,
            batch_size=1, decompress_cores=2,
        )
        times = npe_task_times(graph, cfg, "inference")
        assert times["Preproc"] > 0 and times["Decomp"] > 0
        stages = npe_pipeline_stage_times(times)
        assert stages["cpu"] == max(stages.values())
        ips = npe_throughput_ips(graph, cfg, "inference")
        assert ips == pytest.approx(1e3 / stages["cpu"])
        # the old max-over-subtasks bottleneck overstated throughput
        assert ips < 1e3 / max(times.values())

    def test_standard_levels_unchanged(self, graph):
        """At every Fig. 12 level at most one CPU subtask is active, so
        the fix leaves the published ablation rates alone."""
        for level in ABLATION_LEVELS:
            times = npe_task_times(graph, level, "inference")
            assert times["Preproc"] == 0.0 or times["Decomp"] == 0.0
