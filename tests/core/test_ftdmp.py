"""Tests for the runnable FT-DMP trainer: split equivalence & fine-tuning."""

import numpy as np
import pytest

from repro.core.ftdmp import FTDMPTrainer
from repro.data.loader import normalize_images
from repro.models.registry import tiny_model
from repro.nn.losses import accuracy
from repro.nn.tensor import Tensor
from repro.train.fulltrain import full_train


@pytest.fixture
def trained_setup(small_world):
    """A base-trained tiny ResNet plus train/test data."""
    model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
    x, y = small_world.sample(160, 0, rng=np.random.default_rng(3))
    full_train(model, normalize_images(x), y, epochs=2, lr=3e-3, seed=0)
    x_ft, y_ft = small_world.sample(120, 6, rng=np.random.default_rng(4))
    return model, normalize_images(x_ft), y_ft


class TestFeatureExtraction:
    def test_features_equal_unsplit_forward(self, trained_setup):
        model, x, _ = trained_setup
        trainer = FTDMPTrainer(model, batch_size=32)
        feats = trainer.extract_features(x)
        model.eval()
        direct = model.forward_until(Tensor(x), model.num_stages - 1).data
        assert np.allclose(feats, direct)

    def test_extraction_restores_training_mode(self, trained_setup):
        model, x, _ = trained_setup
        trainer = FTDMPTrainer(model)
        model.train()
        trainer.extract_features(x[:8])
        assert model.training

    def test_extraction_batched_consistently(self, trained_setup):
        model, x, _ = trained_setup
        small = FTDMPTrainer(model, batch_size=16).extract_features(x)
        large = FTDMPTrainer(model, batch_size=64).extract_features(x)
        assert np.allclose(small, large)


class TestFinetune:
    def test_loss_decreases(self, trained_setup):
        model, x, y = trained_setup
        trainer = FTDMPTrainer(model, lr=5e-3)
        report = trainer.finetune(x, y, epochs=4)
        assert report.epochs[-1].loss < report.epochs[0].loss

    def test_frozen_layers_untouched(self, trained_setup):
        model, x, y = trained_setup
        before = {
            name: param.data.copy()
            for i in range(model.num_stages - 1)
            for name, param in model.stage(i).named_parameters(f"s{i}.")
        }
        FTDMPTrainer(model, lr=5e-3).finetune(x, y, epochs=2)
        for i in range(model.num_stages - 1):
            for name, param in model.stage(i).named_parameters(f"s{i}."):
                assert np.array_equal(param.data, before[name]), name

    def test_classifier_changes(self, trained_setup):
        model, x, y = trained_setup
        before = model.classifier.state_dict()
        FTDMPTrainer(model, lr=5e-3).finetune(x, y, epochs=1)
        after = model.classifier.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_finetune_improves_drifted_accuracy(self, small_world):
        # deterministic medium-scale run: base on day 0, drift to day 10
        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        x, y = small_world.sample(240, 0, rng=np.random.default_rng(3))
        full_train(model, normalize_images(x), y, epochs=3, lr=3e-3, seed=0)
        x_ft, y_ft = small_world.sample(240, 10, rng=np.random.default_rng(4))
        x_test, y_test = small_world.sample(240, 10,
                                            rng=np.random.default_rng(9))
        x_test = normalize_images(x_test)
        model.eval()
        before = accuracy(model(Tensor(x_test)).data, y_test)
        FTDMPTrainer(model, lr=5e-3).finetune(normalize_images(x_ft), y_ft,
                                              epochs=5)
        model.eval()
        after = accuracy(model(Tensor(x_test)).data, y_test)
        assert after >= before

    def test_feature_bytes_accounted(self, trained_setup):
        model, x, y = trained_setup
        report = FTDMPTrainer(model).finetune(x, y, epochs=1)
        feat_dim = model.feature_dim_after(model.num_stages - 1)[0]
        assert report.feature_bytes == len(x) * feat_dim * 4
        assert report.images_extracted == len(x)

    def test_eval_trace_recorded(self, trained_setup):
        model, x, y = trained_setup
        trainer = FTDMPTrainer(model)
        calls = []
        report = trainer.finetune(x, y, epochs=2, num_runs=2,
                                  eval_fn=lambda: len(calls) or calls.append(1) or 0.5)
        assert len(report.accuracy_trace) == 4  # 2 runs x 2 epochs


class TestPipelinedRuns:
    def test_run_count_respected(self, trained_setup):
        model, x, y = trained_setup
        report = FTDMPTrainer(model).finetune(x, y, epochs=1, num_runs=3)
        assert report.num_runs == 3
        assert {e.run for e in report.epochs} == {0, 1, 2}

    def test_runs_partition_the_dataset(self, trained_setup):
        model, x, y = trained_setup
        report = FTDMPTrainer(model).finetune(x, y, epochs=1, num_runs=4)
        assert report.images_extracted == len(x)

    def test_invalid_split(self):
        model = tiny_model("ResNet50", num_classes=4)
        with pytest.raises(ValueError):
            FTDMPTrainer(model, split=model.num_stages)  # nothing on Tuner

    def test_earlier_split_still_trains(self, trained_setup):
        model, x, y = trained_setup
        trainer = FTDMPTrainer(model, split=2, lr=5e-3)
        report = trainer.finetune(x[:64], y[:64], epochs=2)
        assert report.epochs[-1].loss < report.epochs[0].loss
        trainer.verify_frozen_unchanged()

    def test_mismatched_xy_rejected(self, trained_setup):
        model, x, y = trained_setup
        with pytest.raises(ValueError):
            FTDMPTrainer(model).finetune(x, y[:-1])

    def test_bad_optimizer_name(self):
        model = tiny_model("ResNet50", num_classes=4)
        with pytest.raises(ValueError, match="optimizer"):
            FTDMPTrainer(model, optimizer="lion").finetune(
                np.zeros((4, 3, 16, 16)), np.zeros(4, dtype=int))

    def test_sgd_optimizer_works(self, trained_setup):
        model, x, y = trained_setup
        report = FTDMPTrainer(model, optimizer="sgd", lr=1e-2).finetune(
            x[:64], y[:64], epochs=2)
        assert np.isfinite(report.final_loss)

    def test_bad_batch_size(self):
        model = tiny_model("ResNet50", num_classes=4)
        with pytest.raises(ValueError):
            FTDMPTrainer(model, batch_size=0)
