"""ClusterConfig validation + the legacy-kwargs constructor shim."""

import warnings

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.config import ClusterConfig
from repro.models.registry import tiny_model


def _factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=7)


def _lifecycle_fingerprint(cluster):
    """Deterministic digest of a short ingest -> finetune pass."""
    rng = np.random.default_rng(3)
    x = rng.random((24, 3, 16, 16))
    y = rng.integers(0, 8, size=24)
    cluster.ingest(x, train_labels=y)
    report = cluster.finetune(epochs=1)
    state = cluster.inference_server.model.state_dict()
    return (
        report.images_extracted,
        report.final_loss,
        sorted((k, float(v.sum())) for k, v in state.items()),
    )


class TestValidation:
    def test_defaults_valid(self):
        assert ClusterConfig().validated() is not None

    @pytest.mark.parametrize("field,value,match", [
        ("num_stores", 0, "at least one PipeStore"),
        ("split", 0, "split must be >= 1"),
        ("nominal_raw_bytes", 0, "nominal_raw_bytes must be >= 1"),
        ("lr", 0.0, "lr must be a positive finite float"),
        ("lr", -1e-3, "lr must be a positive finite float"),
        ("lr", float("nan"), "lr must be a positive finite float"),
        ("lr", float("inf"), "lr must be a positive finite float"),
        ("batch_size", 0, "batch_size must be >= 1"),
        ("batch_size", -4, "batch_size must be >= 1"),
        ("journal_max_entries", 0, "journal_max_entries must be >= 1"),
        ("replication", 0, "must be in"),
        ("replication", 9, "must be in"),
    ])
    def test_bad_field_rejected(self, field, value, match):
        config = ClusterConfig(**{field: value})
        with pytest.raises(ValueError, match=match):
            config.validated()

    def test_batch_size_zero_fails_at_construction(self):
        # regression: used to sail through __init__ and crash deep in
        # the Tuner's batching loop
        with pytest.raises(ValueError, match="batch_size"):
            NDPipeCluster(_factory, ClusterConfig(batch_size=0))
        with pytest.raises(ValueError, match="lr"):
            NDPipeCluster(_factory, ClusterConfig(lr=0.0))

    def test_roundtrip(self):
        config = ClusterConfig(num_stores=6, replication=2, seed=11)
        assert ClusterConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ClusterConfig fields"):
            ClusterConfig.from_dict({"num_stores": 2, "stores": 2})

    def test_from_dict_validates(self):
        with pytest.raises(ValueError, match="batch_size"):
            ClusterConfig.from_dict({"batch_size": 0})


class TestLegacyShim:
    def test_legacy_kwargs_warn_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cluster = NDPipeCluster(_factory, num_stores=3,
                                    nominal_raw_bytes=2048)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "ClusterConfig" in str(deprecations[0].message)
        assert cluster.config.num_stores == 3
        assert cluster.config.nominal_raw_bytes == 2048

    def test_config_path_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            NDPipeCluster(_factory, ClusterConfig(num_stores=3))
        assert caught == []

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            NDPipeCluster(_factory, stores=3)

    def test_config_plus_kwargs_is_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            NDPipeCluster(_factory, ClusterConfig(), num_stores=3)

    def test_legacy_kwargs_still_validate(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="at least one PipeStore"):
                NDPipeCluster(_factory, num_stores=0)

    def test_legacy_and_config_paths_bit_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = NDPipeCluster(_factory, num_stores=3,
                                   nominal_raw_bytes=2048, seed=5)
        modern = NDPipeCluster(_factory, ClusterConfig(
            num_stores=3, nominal_raw_bytes=2048, seed=5))
        assert _lifecycle_fingerprint(legacy) == _lifecycle_fingerprint(modern)


def test_top_level_deprecated_alias_warns():
    import repro
    from repro.inference.online import OnlineInferencePath

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        alias = repro.OnlineInferencePath
    assert alias is OnlineInferencePath
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "ServingFrontend" in str(deprecations[0].message)

    with pytest.raises(AttributeError):
        repro.NoSuchSymbol

    assert "OnlineInferencePath" in dir(repro)
