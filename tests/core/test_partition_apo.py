"""Tests for FindBestPoint / partition evaluation / APO (Algorithm 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.apo import plan_organization
from repro.core.partition import (
    FinetunePlanConfig,
    evaluate_all_points,
    evaluate_partition,
    find_best_point,
    pipelined_time,
    store_stage_rate,
)
from repro.models.catalog import model_graph
from repro.sim.specs import (
    NEURONCORE_V1,
    NetworkSpec,
    TEN_GBE,
    TESLA_T4,
    TESLA_V100,
)


@pytest.fixture(scope="module")
def resnet():
    return model_graph("ResNet50")


class TestPipelinedTime:
    def test_single_run_is_serial_sum(self):
        assert pipelined_time(100.0, 50.0, 1) == pytest.approx(150.0)

    def test_more_runs_never_slower(self):
        times = [pipelined_time(100.0, 100.0, r) for r in (1, 2, 3, 4, 6)]
        assert times == sorted(times, reverse=True)

    def test_balanced_stage_reductions_match_paper(self):
        """Balanced stages: ~25% and ~33% reduction for N_run 2 and 3.

        The paper measures 23% / 32% (Fig. 17).
        """
        base = pipelined_time(1.0, 1.0, 1)
        assert 1 - pipelined_time(1.0, 1.0, 2) / base == pytest.approx(0.25)
        assert 1 - pipelined_time(1.0, 1.0, 3) / base == pytest.approx(1 / 3)

    def test_asymptote_is_bottleneck_stage(self):
        limit = pipelined_time(90.0, 30.0, 1000)
        assert limit == pytest.approx(90.0, rel=0.05)

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            pipelined_time(1.0, 1.0, 0)

    @settings(max_examples=20, deadline=None)
    @given(store=st.floats(1.0, 1e4), tuner=st.floats(1.0, 1e4),
           runs=st.integers(1, 16))
    def test_property_bounds(self, store, tuner, runs):
        total = pipelined_time(store, tuner, runs)
        assert total <= store + tuner + 1e-9            # never worse than serial
        assert total >= max(store, tuner) - 1e-9        # never beats bottleneck


class TestStoreStageRate:
    def test_accelerator_bound_for_resnet(self, resnet):
        rate = store_stage_rate(resnet, 5, TESLA_T4, FinetunePlanConfig())
        fe = TESLA_T4.fe_ips(resnet, 5, 512)
        assert rate == pytest.approx(fe)

    def test_weaker_accelerator_lowers_rate(self, resnet):
        t4 = store_stage_rate(resnet, 5, TESLA_T4, FinetunePlanConfig())
        nc = store_stage_rate(resnet, 5, NEURONCORE_V1, FinetunePlanConfig())
        assert nc < t4


class TestEvaluatePartition:
    def test_requires_positive_stores(self, resnet):
        with pytest.raises(ValueError):
            evaluate_partition(resnet, 5, 0, TESLA_T4, TESLA_V100, TEN_GBE)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FinetunePlanConfig(dataset_images=0)
        with pytest.raises(ValueError):
            FinetunePlanConfig(num_runs=0)
        with pytest.raises(ValueError):
            FinetunePlanConfig(dataset_images=2, num_runs=5)

    def test_feature_traffic_matches_cut_size(self, resnet):
        config = FinetunePlanConfig(dataset_images=1000)
        ev = evaluate_partition(resnet, 5, 4, TESLA_T4, TESLA_V100, TEN_GBE,
                                config)
        assert ev.feature_traffic_bytes == 1000 * resnet.partition_point(5).feature_bytes

    def test_conv5_cut_is_9_16_gb_scale(self, resnet):
        """Fig. 9 calibration: +Conv5 ships ~9.8 GB for 1.2M images."""
        ev = evaluate_partition(resnet, 5, 4, TESLA_T4, TESLA_V100, TEN_GBE)
        assert ev.feature_traffic_bytes == pytest.approx(9.8e9, rel=0.05)

    def test_sync_only_when_trainable_offloaded(self, resnet):
        for split in range(resnet.num_partition_points() - 1):
            ev = evaluate_partition(resnet, split, 4, TESLA_T4, TESLA_V100,
                                    TEN_GBE)
            assert ev.sync_traffic_bytes == 0
        full = evaluate_partition(resnet, resnet.num_partition_points() - 1,
                                  4, TESLA_T4, TESLA_V100, TEN_GBE)
        assert full.sync_traffic_bytes > 0
        assert full.sync_time_s > 0

    def test_sync_traffic_linear_in_stores(self, resnet):
        """§4.1: synchronisation cost grows linearly with storage servers."""
        last = resnet.num_partition_points() - 1
        ev4 = evaluate_partition(resnet, last, 4, TESLA_T4, TESLA_V100, TEN_GBE)
        ev8 = evaluate_partition(resnet, last, 8, TESLA_T4, TESLA_V100, TEN_GBE)
        assert ev8.sync_traffic_bytes == pytest.approx(
            2 * ev4.sync_traffic_bytes)

    def test_more_stores_faster_until_tuner_bound(self, resnet):
        t2 = evaluate_partition(resnet, 5, 2, TESLA_T4, TESLA_V100, TEN_GBE)
        t8 = evaluate_partition(resnet, 5, 8, TESLA_T4, TESLA_V100, TEN_GBE)
        assert t8.training_time_s < t2.training_time_s


class TestFindBestPoint:
    def test_resnet50_best_cut_is_conv5(self, resnet):
        """Fig. 9: shortest training time after offloading +Conv5."""
        best = find_best_point(resnet, 4, TESLA_T4, TESLA_V100, TEN_GBE)
        assert best.point.label == "+Conv5"

    def test_fc_offload_never_wins(self, resnet):
        """Trainable layers stay on the Tuner across store counts."""
        for stores in (1, 4, 8, 16, 20):
            best = find_best_point(resnet, stores, TESLA_T4, TESLA_V100,
                                   TEN_GBE)
            assert not best.point.offloads_trainable

    def test_traffic_surges_at_fc(self, resnet):
        """Fig. 9: data traffic surges once the FC layer is offloaded."""
        evs = evaluate_all_points(resnet, 4, TESLA_T4, TESLA_V100, TEN_GBE)
        by_label = {e.point.label: e for e in evs}
        assert (by_label["+FC"].total_traffic_bytes
                > 5 * by_label["+Conv5"].total_traffic_bytes)

    @pytest.mark.parametrize("model", ["InceptionV3", "ResNeXt101", "ViT",
                                       "ShuffleNetV2"])
    def test_best_point_is_deep_cut_for_all_models(self, model):
        graph = model_graph(model)
        best = find_best_point(graph, 4, TESLA_T4, TESLA_V100, TEN_GBE)
        # the winning cut keeps only the trainable tail on the Tuner
        assert best.point.index == graph.num_partition_points() - 2


class TestApo:
    def test_apo_picks_eight_stores_for_resnet50(self, resnet):
        """Fig. 11: APO chooses 8 PipeStores for ResNet50 + V100 Tuner."""
        plan = plan_organization(resnet)
        assert plan.num_pipestores == 8
        assert plan.split_label == "+Conv5"

    def test_sweep_has_every_store_count(self, resnet):
        plan = plan_organization(resnet, max_pipestores=12)
        assert [c.num_pipestores for c in plan.candidates] == list(range(1, 13))

    def test_imbalance_minimised_at_pick(self, resnet):
        plan = plan_organization(resnet)
        best_imbalance = plan.best.stage_imbalance_s
        assert all(c.stage_imbalance_s >= best_imbalance - 1e-9
                   for c in plan.candidates)

    def test_training_time_flattens_past_pick(self, resnet):
        """Fig. 11a: adding stores beyond APO's pick is marginal."""
        plan = plan_organization(resnet)
        t_pick = next(c.training_time_s for c in plan.candidates
                      if c.num_pipestores == plan.num_pipestores)
        t_max = plan.candidates[-1].training_time_s
        assert t_pick / t_max < 1.25

    def test_energy_efficiency_declines_when_overprovisioned(self, resnet):
        """Fig. 11b: IPS/kJ decreases as extra PipeStores idle."""
        plan = plan_organization(resnet)
        best_e = plan.most_energy_efficient()
        tail = [c.ips_per_kj for c in plan.candidates
                if c.num_pipestores >= max(best_e.num_pipestores, 10)]
        assert tail == sorted(tail, reverse=True)

    def test_validation(self, resnet):
        with pytest.raises(ValueError):
            plan_organization(resnet, max_pipestores=0)
        from repro.sim.specs import G4DN_4XLARGE_NOGPU

        with pytest.raises(ValueError, match="accelerator"):
            plan_organization(resnet, store_server=G4DN_4XLARGE_NOGPU)

    def test_slower_network_shifts_best_cut_shallower_or_equal(self, resnet):
        fast = find_best_point(resnet, 4, TESLA_T4, TESLA_V100,
                               NetworkSpec(gbps=40))
        slow = find_best_point(resnet, 4, TESLA_T4, TESLA_V100,
                               NetworkSpec(gbps=0.5))
        assert slow.point.index >= fast.point.index - 1
