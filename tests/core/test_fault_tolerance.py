"""Failure-injection tests: the cluster survives PipeStore outages."""

import numpy as np
import pytest

from repro.core.cluster import NDPipeCluster
from repro.core.pipestore import StoreUnavailableError
from repro.models.registry import tiny_model


def factory():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=5)


@pytest.fixture
def cluster(small_world):
    cluster = NDPipeCluster(factory, num_stores=3, nominal_raw_bytes=4096)
    x, y = small_world.sample(90, 0, rng=np.random.default_rng(2))
    cluster.ingest(x, train_labels=y)
    return cluster


class TestStoreFailure:
    def test_failed_store_rejects_jobs(self, cluster):
        store = cluster.stores[0]
        store.fail()
        with pytest.raises(StoreUnavailableError):
            store.extract_features(store.photo_ids()[:2])
        with pytest.raises(StoreUnavailableError):
            store.offline_infer(store.photo_ids()[:2])

    def test_repair_restores_service(self, cluster):
        store = cluster.stores[0]
        store.fail()
        store.repair()
        assert store.is_available
        feats = store.extract_features(store.photo_ids()[:4])
        assert len(feats) == 4


class TestIngestRoutesAroundFailure:
    def test_round_robin_skips_failed_store(self, cluster, small_world):
        cluster.stores[1].fail()
        x, y = small_world.sample(30, 0, rng=np.random.default_rng(9))
        before = len(cluster.stores[1].photo_ids())
        cluster.ingest(x, train_labels=y)
        assert len(cluster.stores[1].photo_ids()) == before
        healthy = (len(cluster.stores[0].photo_ids())
                   + len(cluster.stores[2].photo_ids()))
        assert healthy == 60 + 30

    def test_total_outage_raises(self, cluster, small_world):
        for store in cluster.stores:
            store.fail()
        x, y = small_world.sample(4, 0)
        with pytest.raises(StoreUnavailableError):
            cluster.ingest(x, train_labels=y)


class TestFinetuneDegradesGracefully:
    def test_training_skips_down_store(self, cluster):
        cluster.stores[2].fail()
        report = cluster.finetune(epochs=1)
        assert report.images_extracted == 60  # 2 healthy stores x 30 photos
        assert report.skipped_stores == ["pipestore-2"]

    def test_down_store_misses_delta_then_catches_up(self, cluster):
        down = cluster.stores[2]
        down.fail()
        cluster.finetune(epochs=1)
        assert down.model_version == 0
        assert cluster.tuner.version == 1
        # healthy replicas advanced
        assert all(s.model_version == 1 for s in cluster.stores[:2])

        down.repair()
        cluster.tuner.catch_up(down)
        assert down.model_version == 1
        tuner_state = cluster.tuner.model.state_dict()
        for key, value in down.model.state_dict().items():
            assert np.allclose(value, tuner_state[key], atol=1e-12)

    def test_catch_up_requires_repair(self, cluster):
        down = cluster.stores[0]
        down.fail()
        with pytest.raises(StoreUnavailableError):
            cluster.tuner.catch_up(down)

    def test_catch_up_noop_when_current(self, cluster):
        before = cluster.network.bytes_of_kind("model-full")
        cluster.tuner.catch_up(cluster.stores[0])
        assert cluster.network.bytes_of_kind("model-full") == before


class TestRelabelSkipsFailures:
    def test_relabel_processes_only_healthy_stores(self, cluster):
        cluster.finetune(epochs=1)
        cluster.stores[0].fail()
        stats = cluster.offline_relabel()
        assert stats.photos_processed == 60
        # the down store's photos stay outdated for a later pass
        outdated = cluster.database.outdated_ids(cluster.tuner.version)
        assert len(outdated) == 30
        assert all(cluster.database.lookup(pid).location == "pipestore-0"
                   for pid in outdated)

    def test_repaired_store_relabelled_on_next_pass(self, cluster):
        cluster.finetune(epochs=1)
        cluster.stores[0].fail()
        cluster.offline_relabel()
        cluster.stores[0].repair()
        cluster.tuner.catch_up(cluster.stores[0])
        stats = cluster.offline_relabel()
        assert stats.photos_processed == 30
        assert not cluster.database.outdated_ids(cluster.tuner.version)
