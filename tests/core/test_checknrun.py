"""Tests for Check-N-Run delta encoding: exactness and traffic reduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checknrun import (
    DeltaError,
    apply_delta,
    delta_stats,
    encode_delta,
    state_dict_bytes,
)


def make_state(rng, keys=("a", "b", "c"), size=64):
    return {k: rng.normal(size=(size,)) for k in keys}


class TestExactDelta:
    def test_roundtrip_reconstructs_bitexact(self, rng):
        old = make_state(rng)
        new = {k: v.copy() for k, v in old.items()}
        new["c"] = new["c"] + rng.normal(size=new["c"].shape)
        blob = encode_delta(old, new)
        rebuilt = apply_delta(old, blob)
        for key in new:
            assert np.allclose(rebuilt[key], new[key], atol=1e-12)

    def test_identical_states_give_tiny_delta(self, rng):
        state = make_state(rng)
        blob = encode_delta(state, {k: v.copy() for k, v in state.items()})
        assert len(blob) < 64

    def test_only_changed_tensors_shipped(self, rng):
        old = make_state(rng, size=4096)
        new = {k: v.copy() for k, v in old.items()}
        new["a"] = new["a"] + 1.0
        stats = delta_stats(old, new)
        assert stats.changed_tensors == 1
        assert stats.total_tensors == 3
        assert stats.delta_bytes < stats.full_model_bytes / 2

    def test_key_mismatch_rejected(self, rng):
        old = make_state(rng)
        new = make_state(rng, keys=("a", "b"))
        with pytest.raises(DeltaError, match="keys"):
            encode_delta(old, new)

    def test_shape_change_rejected(self, rng):
        old = make_state(rng)
        new = {k: v.copy() for k, v in old.items()}
        new["a"] = np.zeros(5)
        with pytest.raises(DeltaError, match="shape"):
            encode_delta(old, new)

    def test_bad_magic_rejected(self, rng):
        with pytest.raises(DeltaError):
            apply_delta(make_state(rng), b"XXXX" + b"0" * 16)

    def test_applying_to_wrong_base_keys(self, rng):
        old = make_state(rng)
        new = {k: v + 1 for k, v in old.items()}
        blob = encode_delta(old, new)
        wrong = make_state(rng, keys=("x", "y", "z"))
        with pytest.raises(DeltaError):
            apply_delta(wrong, blob)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), changed=st.integers(0, 3))
    def test_property_roundtrip(self, seed, changed):
        rng = np.random.default_rng(seed)
        old = make_state(rng)
        new = {k: v.copy() for k, v in old.items()}
        for key in list(new)[:changed]:
            new[key] = new[key] * rng.normal()
        rebuilt = apply_delta(old, encode_delta(old, new))
        for key in new:
            assert np.allclose(rebuilt[key], new[key], atol=1e-10)


class TestTrafficReduction:
    def test_classifier_only_delta_reduction_at_paper_scale(self, rng):
        """Check-N-Run claims up to 427x; a classifier-only fine-tune delta
        on a ResNet50-sized state should reduce traffic by >100x with 8-bit
        quantisation."""
        # ResNet50-ish: 23.5M frozen + 2.05M classifier params (float32)
        old = {
            "features": rng.normal(size=(2_000_000,)).astype(np.float32),
            "classifier.weight": rng.normal(size=(2048, 100)).astype(np.float32),
            "classifier.bias": np.zeros(100, dtype=np.float32),
        }
        new = {k: v.copy() for k, v in old.items()}
        new["classifier.weight"] = (new["classifier.weight"]
                                    + 0.01 * rng.normal(size=(2048, 100))
                                    .astype(np.float32))
        stats = delta_stats(old, new, quantize_bits=8)
        assert stats.reduction_factor > 30

    def test_quantised_delta_bounded_error(self, rng):
        old = {"w": rng.normal(size=(512,))}
        new = {"w": old["w"] + rng.normal(size=(512,)) * 0.1}
        blob = encode_delta(old, new, quantize_bits=8)
        rebuilt = apply_delta(old, blob)
        diff_range = (new["w"] - old["w"]).max() - (new["w"] - old["w"]).min()
        assert np.abs(rebuilt["w"] - new["w"]).max() <= diff_range / 255 + 1e-9

    def test_quantise_bits_validated(self, rng):
        old = {"w": rng.normal(size=(4,))}
        new = {"w": old["w"] + 1}
        with pytest.raises(DeltaError):
            encode_delta(old, new, quantize_bits=0)
        with pytest.raises(DeltaError):
            encode_delta(old, new, quantize_bits=32)

    def test_sixteen_bit_quantisation(self, rng):
        old = {"w": rng.normal(size=(64,))}
        new = {"w": old["w"] + rng.normal(size=(64,))}
        rebuilt = apply_delta(old, encode_delta(old, new, quantize_bits=16))
        assert np.allclose(rebuilt["w"], new["w"], atol=1e-3)

    def test_state_dict_bytes_counts_payload(self, rng):
        state = {"w": np.zeros(100, dtype=np.float64)}
        assert state_dict_bytes(state) >= 800

    def test_empty_delta_stats_raise_on_ratio(self, rng):
        from repro.core.checknrun import DeltaStats

        with pytest.raises(DeltaError):
            DeltaStats(100, 0, 0, 1).reduction_factor

    def test_real_model_delta_via_tuner_path(self, small_world):
        """End-to-end: fine-tune a tiny model; the delta beats full-state
        distribution by a large factor."""
        from repro.core.ftdmp import FTDMPTrainer
        from repro.data.loader import normalize_images
        from repro.models.registry import tiny_model

        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        old_state = model.state_dict()
        x, y = small_world.sample(64, 0)
        FTDMPTrainer(model, lr=5e-3).finetune(normalize_images(x), y, epochs=1)
        stats = delta_stats(old_state, model.state_dict())
        assert stats.changed_tensors <= 2  # classifier weight + bias
        assert stats.reduction_factor > 5


class TestNativeDtype:
    """CNR2 regression tests: deltas are encoded in the tensor's native
    dtype, and the exact path is an XOR of bit patterns, so reconstruction
    is bit-identical where the old float64 arithmetic round-trip was not."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_roundtrip_is_bit_identical(self, rng, dtype):
        old = {"w": rng.normal(size=(257,)).astype(dtype)}
        new = {"w": old["w"] + rng.normal(size=(257,)).astype(dtype)}
        rebuilt = apply_delta(old, encode_delta(old, new))
        assert rebuilt["w"].dtype == np.dtype(dtype)
        assert rebuilt["w"].tobytes() == new["w"].tobytes()

    def test_float32_cancellation_roundtrip(self):
        """Adversarial values: a float32 arithmetic diff absorbs 1e-8
        against 1.0 (eps(float32) ~ 1.2e-7), so fl(fl(new-old)+old) != new.
        The XOR encoding must still reconstruct exactly."""
        old = {"w": np.array([1.0, 1e-8, -1.0, 0.25], dtype=np.float32)}
        new = {"w": np.array([1e-8, 1.0, -1.0 + 1e-8, 0.25 + 1e-8],
                             dtype=np.float32)}
        rebuilt = apply_delta(old, encode_delta(old, new))
        assert rebuilt["w"].tobytes() == new["w"].tobytes()

    def test_special_values_preserved_bitwise(self):
        old = {"w": np.array([0.0, -0.0, 1.0, np.inf], dtype=np.float32)}
        new = {"w": np.array([np.nan, 0.0, -np.inf, -0.0], dtype=np.float32)}
        rebuilt = apply_delta(old, encode_delta(old, new))
        assert rebuilt["w"].tobytes() == new["w"].tobytes()

    def test_integer_state_roundtrip(self, rng):
        old = {"steps": np.arange(16, dtype=np.int64)}
        new = {"steps": old["steps"] + 3}
        rebuilt = apply_delta(old, encode_delta(old, new))
        assert rebuilt["steps"].dtype == np.int64
        assert np.array_equal(rebuilt["steps"], new["steps"])

    def test_float32_delta_not_inflated_to_float64(self, rng):
        """The old encoder shipped float32 diffs at float64 width."""
        vals = rng.normal(size=(4096,))
        blob32 = encode_delta({"w": vals.astype(np.float32)},
                              {"w": (vals + 1.0).astype(np.float32)})
        blob64 = encode_delta({"w": vals}, {"w": vals + 1.0})
        assert len(blob32) < 0.75 * len(blob64)

    def test_quantized_roundtrip_preserves_dtype(self, rng):
        old = {"w": rng.normal(size=(128,)).astype(np.float32)}
        new = {"w": old["w"]
               + rng.normal(size=(128,)).astype(np.float32) * 0.1}
        rebuilt = apply_delta(old, encode_delta(old, new, quantize_bits=8))
        assert rebuilt["w"].dtype == np.float32

    def test_dtype_change_rejected_on_encode(self, rng):
        old = {"w": rng.normal(size=(8,)).astype(np.float32)}
        new = {"w": old["w"].astype(np.float64) + 1.0}
        with pytest.raises(DeltaError, match="dtype"):
            encode_delta(old, new)

    def test_apply_to_wrong_dtype_base_rejected(self, rng):
        old = {"w": rng.normal(size=(8,)).astype(np.float32)}
        new = {"w": old["w"] + np.float32(1.0)}
        blob = encode_delta(old, new)
        with pytest.raises(DeltaError, match="dtype mismatch"):
            apply_delta({"w": old["w"].astype(np.float64)}, blob)
