"""Tests for Check-N-Run delta encoding: exactness and traffic reduction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checknrun import (
    DeltaError,
    apply_delta,
    delta_stats,
    encode_delta,
    state_dict_bytes,
)


def make_state(rng, keys=("a", "b", "c"), size=64):
    return {k: rng.normal(size=(size,)) for k in keys}


class TestExactDelta:
    def test_roundtrip_reconstructs_bitexact(self, rng):
        old = make_state(rng)
        new = {k: v.copy() for k, v in old.items()}
        new["c"] = new["c"] + rng.normal(size=new["c"].shape)
        blob = encode_delta(old, new)
        rebuilt = apply_delta(old, blob)
        for key in new:
            assert np.allclose(rebuilt[key], new[key], atol=1e-12)

    def test_identical_states_give_tiny_delta(self, rng):
        state = make_state(rng)
        blob = encode_delta(state, {k: v.copy() for k, v in state.items()})
        assert len(blob) < 64

    def test_only_changed_tensors_shipped(self, rng):
        old = make_state(rng, size=4096)
        new = {k: v.copy() for k, v in old.items()}
        new["a"] = new["a"] + 1.0
        stats = delta_stats(old, new)
        assert stats.changed_tensors == 1
        assert stats.total_tensors == 3
        assert stats.delta_bytes < stats.full_model_bytes / 2

    def test_key_mismatch_rejected(self, rng):
        old = make_state(rng)
        new = make_state(rng, keys=("a", "b"))
        with pytest.raises(DeltaError, match="keys"):
            encode_delta(old, new)

    def test_shape_change_rejected(self, rng):
        old = make_state(rng)
        new = {k: v.copy() for k, v in old.items()}
        new["a"] = np.zeros(5)
        with pytest.raises(DeltaError, match="shape"):
            encode_delta(old, new)

    def test_bad_magic_rejected(self, rng):
        with pytest.raises(DeltaError):
            apply_delta(make_state(rng), b"XXXX" + b"0" * 16)

    def test_applying_to_wrong_base_keys(self, rng):
        old = make_state(rng)
        new = {k: v + 1 for k, v in old.items()}
        blob = encode_delta(old, new)
        wrong = make_state(rng, keys=("x", "y", "z"))
        with pytest.raises(DeltaError):
            apply_delta(wrong, blob)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), changed=st.integers(0, 3))
    def test_property_roundtrip(self, seed, changed):
        rng = np.random.default_rng(seed)
        old = make_state(rng)
        new = {k: v.copy() for k, v in old.items()}
        for key in list(new)[:changed]:
            new[key] = new[key] * rng.normal()
        rebuilt = apply_delta(old, encode_delta(old, new))
        for key in new:
            assert np.allclose(rebuilt[key], new[key], atol=1e-10)


class TestTrafficReduction:
    def test_classifier_only_delta_reduction_at_paper_scale(self, rng):
        """Check-N-Run claims up to 427x; a classifier-only fine-tune delta
        on a ResNet50-sized state should reduce traffic by >100x with 8-bit
        quantisation."""
        # ResNet50-ish: 23.5M frozen + 2.05M classifier params (float32)
        old = {
            "features": rng.normal(size=(2_000_000,)).astype(np.float32),
            "classifier.weight": rng.normal(size=(2048, 100)).astype(np.float32),
            "classifier.bias": np.zeros(100, dtype=np.float32),
        }
        new = {k: v.copy() for k, v in old.items()}
        new["classifier.weight"] = (new["classifier.weight"]
                                    + 0.01 * rng.normal(size=(2048, 100))
                                    .astype(np.float32))
        stats = delta_stats(old, new, quantize_bits=8)
        assert stats.reduction_factor > 30

    def test_quantised_delta_bounded_error(self, rng):
        old = {"w": rng.normal(size=(512,))}
        new = {"w": old["w"] + rng.normal(size=(512,)) * 0.1}
        blob = encode_delta(old, new, quantize_bits=8)
        rebuilt = apply_delta(old, blob)
        diff_range = (new["w"] - old["w"]).max() - (new["w"] - old["w"]).min()
        assert np.abs(rebuilt["w"] - new["w"]).max() <= diff_range / 255 + 1e-9

    def test_quantise_bits_validated(self, rng):
        old = {"w": rng.normal(size=(4,))}
        new = {"w": old["w"] + 1}
        with pytest.raises(DeltaError):
            encode_delta(old, new, quantize_bits=0)
        with pytest.raises(DeltaError):
            encode_delta(old, new, quantize_bits=32)

    def test_sixteen_bit_quantisation(self, rng):
        old = {"w": rng.normal(size=(64,))}
        new = {"w": old["w"] + rng.normal(size=(64,))}
        rebuilt = apply_delta(old, encode_delta(old, new, quantize_bits=16))
        assert np.allclose(rebuilt["w"], new["w"], atol=1e-3)

    def test_state_dict_bytes_counts_payload(self, rng):
        state = {"w": np.zeros(100, dtype=np.float64)}
        assert state_dict_bytes(state) >= 800

    def test_empty_delta_stats_raise_on_ratio(self, rng):
        from repro.core.checknrun import DeltaStats

        with pytest.raises(DeltaError):
            DeltaStats(100, 0, 0, 1).reduction_factor

    def test_real_model_delta_via_tuner_path(self, small_world):
        """End-to-end: fine-tune a tiny model; the delta beats full-state
        distribution by a large factor."""
        from repro.core.ftdmp import FTDMPTrainer
        from repro.data.loader import normalize_images
        from repro.models.registry import tiny_model

        model = tiny_model("ResNet50", num_classes=8, width=8, seed=0)
        old_state = model.state_dict()
        x, y = small_world.sample(64, 0)
        FTDMPTrainer(model, lr=5e-3).finetune(normalize_images(x), y, epochs=1)
        stats = delta_stats(old_state, model.state_dict())
        assert stats.changed_tensors <= 2  # classifier weight + bias
        assert stats.reduction_factor > 5
