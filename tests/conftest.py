"""Shared fixtures for the NDPipe reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.models.registry import tiny_model


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_world():
    """A tiny drifting photo world (6-8 classes, 16x16 images)."""
    return DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))


@pytest.fixture
def tiny_resnet():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=1)


@pytest.fixture
def images16(rng):
    """A small batch of (N, 3, 16, 16) images in [0, 1]."""
    return rng.random((6, 3, 16, 16))
