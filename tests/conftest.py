"""Shared fixtures for the NDPipe reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.drift import DriftingPhotoWorld, WorldConfig
from repro.lint import SANITIZER
from repro.models.registry import tiny_model


def pytest_configure(config):
    # NDPIPE_SANITIZE=1 (set by the CI chaos job) turns on the runtime
    # concurrency sanitizer for the whole run: guarded classes wrap their
    # locks and every test fails on recorded violations
    if os.environ.get("NDPIPE_SANITIZE"):
        SANITIZER.enable(mode="record")


@pytest.fixture(autouse=True)
def _concurrency_sanitizer_gate():
    """Fail any test that left sanitizer violations behind."""
    yield
    if SANITIZER.enabled:
        violations = SANITIZER.drain()
        if violations:
            details = "; ".join(f"{v.kind}: {v.detail}" for v in violations)
            pytest.fail(
                f"{len(violations)} concurrency violation(s): {details}")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_world():
    """A tiny drifting photo world (6-8 classes, 16x16 images)."""
    return DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3, seed=0,
    ))


@pytest.fixture
def tiny_resnet():
    return tiny_model("ResNet50", num_classes=8, width=8, seed=1)


@pytest.fixture
def images16(rng):
    """A small batch of (N, 3, 16, 16) images in [0, 1]."""
    return rng.random((6, 3, 16, 16))
