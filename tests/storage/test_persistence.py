"""Snapshot/restore tests for the storage substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.objectstore import ObjectStore, Volume
from repro.storage.persistence import (
    SnapshotError,
    dump_object_store,
    dump_photo_database,
    load_object_store,
    load_photo_database,
    snapshot_sizes,
)
from repro.storage.photodb import LabelRecord, PhotoDatabase


class TestObjectStoreSnapshots:
    def test_roundtrip_preserves_objects_and_capacity(self):
        store = ObjectStore(Volume(capacity_bytes=10_000), name="src")
        store.put("raw/a", b"photo-bytes")
        store.put("preproc/a", b"tensor-bytes")
        restored = load_object_store(dump_object_store(store))
        assert restored.keys() == store.keys()
        assert restored.get("raw/a") == b"photo-bytes"
        assert restored.volume.capacity_bytes == 10_000
        assert restored.volume.used_bytes == store.volume.used_bytes

    def test_restored_io_counters_reset(self):
        store = ObjectStore()
        store.put("k", b"x" * 100)
        restored = load_object_store(dump_object_store(store))
        assert restored.bytes_written == 0
        assert restored.bytes_read == 0

    def test_empty_store_roundtrip(self):
        restored = load_object_store(dump_object_store(ObjectStore()))
        assert len(restored) == 0

    def test_bad_magic(self):
        with pytest.raises(SnapshotError):
            load_object_store(b"XXXX" + b"0" * 32)

    def test_truncated(self):
        with pytest.raises(SnapshotError):
            load_object_store(b"NDPS")

    @settings(max_examples=15, deadline=None)
    @given(payloads=st.dictionaries(
        st.text(alphabet="abcdef/", min_size=1, max_size=12),
        st.binary(max_size=64), max_size=8))
    def test_property_roundtrip(self, payloads):
        store = ObjectStore()
        for key, blob in payloads.items():
            store.put(key, blob)
        restored = load_object_store(dump_object_store(store))
        assert len(restored) == len(store)
        for key, blob in payloads.items():
            assert restored.get(key) == blob


class TestDatabaseSnapshots:
    def _db(self):
        db = PhotoDatabase()
        db.upsert(LabelRecord("p1", 3, 0, "s0", 0.9))
        db.upsert(LabelRecord("p1", 5, 1, "s0", 0.8))  # relabelled
        db.upsert(LabelRecord("p2", 3, 1, "s1", 0.7))
        return db

    def test_roundtrip_preserves_current_labels(self):
        db = self._db()
        restored = load_photo_database(dump_photo_database(db))
        assert restored.snapshot_labels() == db.snapshot_labels()
        assert restored.lookup("p1").model_version == 1

    def test_roundtrip_preserves_history(self):
        restored = load_photo_database(dump_photo_database(self._db()))
        assert [r.label for r in restored.history("p1")] == [3, 5]

    def test_roundtrip_preserves_search_index(self):
        restored = load_photo_database(dump_photo_database(self._db()))
        assert restored.search(3) == ["p2"]
        assert restored.search(5) == ["p1"]

    def test_bad_magic(self):
        with pytest.raises(SnapshotError):
            load_photo_database(b"WHAT" + b"0" * 8)

    def test_corrupt_payload(self):
        from repro.storage.compression import deflate

        with pytest.raises(SnapshotError):
            load_photo_database(b"NDPD" + deflate(b"not json"))

    def test_snapshot_sizes(self):
        store = ObjectStore()
        store.put("k", b"v" * 500)
        sizes = snapshot_sizes(store, self._db())
        assert sizes[0] > 0 and sizes[1] > 0


class TestPipeStoreRestart:
    def test_pipestore_survives_restart(self, small_world):
        """Snapshot a loaded PipeStore, 'reboot' it, keep serving."""
        from repro.core.pipestore import PipeStore, StoredPhoto
        from repro.models.registry import tiny_model
        from repro.storage.imageformat import preprocess

        store = PipeStore("s0", nominal_raw_bytes=4096)
        x, y = small_world.sample(12, 0)
        for i, pixels in enumerate(x):
            store.store_photo(StoredPhoto(
                f"p{i}", np.asarray(pixels, dtype=float),
                preprocess(pixels), train_label=int(y[i])))
        snapshot = dump_object_store(store.objects)

        rebooted = PipeStore("s0", nominal_raw_bytes=4096)
        rebooted.objects = load_object_store(snapshot, name="s0")
        rebooted.install_model(tiny_model("ResNet50", num_classes=8,
                                          width=8, seed=5), 5, 0)
        results = rebooted.offline_infer(rebooted.photo_ids()[:4])
        assert len(results) == 4
