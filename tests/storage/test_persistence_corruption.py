"""Snapshot round-trips under injected corruption (satellite of PR 3).

Every byte region of a snapshot frame — magic, header, deflate body,
CRC trailer — is flipped and the loader must refuse with
:class:`SnapshotError` rather than reconstruct silently-wrong state.
"""

import struct
import zlib

import pytest

from repro.storage.objectstore import ObjectStore, Volume
from repro.storage.persistence import (
    SnapshotError,
    dump_object_store,
    dump_photo_database,
    load_object_store,
    load_photo_database,
)
from repro.storage.photodb import LabelRecord, PhotoDatabase


def sample_store() -> ObjectStore:
    store = ObjectStore(Volume(capacity_bytes=1 << 20), name="src")
    store.put("raw/a", b"alpha" * 40)
    store.put("raw/b", b"beta" * 33)
    store.put("preproc/a", b"\x00\x01\x02" * 21)
    return store


def sample_db() -> PhotoDatabase:
    db = PhotoDatabase()
    db.upsert(LabelRecord("a", 1, 0, "pipestore-0", 0.9))
    db.upsert(LabelRecord("b", 2, 0, "pipestore-1", 0.8))
    db.upsert(LabelRecord("a", 3, 1, "pipestore-0", 0.7))
    return db


def regions(blob: bytes):
    """Representative byte offsets in (magic, header, body, trailer)."""
    header_end = struct.calcsize(">4sBQI")
    return {
        "magic": [0, 3],
        "header": [5, header_end - 1],
        "body": [header_end + 2, (header_end + len(blob) - 4) // 2,
                 len(blob) - 6],
        "trailer": [len(blob) - 4, len(blob) - 1],
    }


class TestObjectStoreSnapshotCorruption:
    def test_clean_roundtrip(self):
        store = sample_store()
        clone = load_object_store(dump_object_store(store), name="clone")
        assert clone.keys() == store.keys()
        for key in store.keys():
            assert clone.peek(key) == store.peek(key)
            assert clone.stored_crc(key) == store.stored_crc(key)
        assert clone.volume.capacity_bytes == store.volume.capacity_bytes
        assert clone.bytes_read == 0 and clone.bytes_written == 0

    def test_snapshot_does_not_count_workload_reads(self):
        store = sample_store()
        before = store.bytes_read
        dump_object_store(store)
        assert store.bytes_read == before

    @pytest.mark.parametrize("region", ["magic", "header", "body", "trailer"])
    def test_flip_in_every_region_is_rejected(self, region):
        blob = dump_object_store(sample_store())
        for pos in regions(blob)[region]:
            for bit in range(8):
                damaged = bytearray(blob)
                damaged[pos] ^= 1 << bit
                with pytest.raises(SnapshotError):
                    load_object_store(bytes(damaged))

    def test_truncation_is_rejected(self):
        blob = dump_object_store(sample_store())
        for cut in (0, 3, struct.calcsize(">4sBQI"), len(blob) // 2,
                    len(blob) - 1):
            with pytest.raises(SnapshotError):
                load_object_store(blob[:cut])

    def test_v1_snapshot_is_refused_loudly(self):
        """A pre-trailer frame resealed as version 1 must name the
        version problem, not just fail the generic CRC check."""
        blob = dump_object_store(sample_store())
        frame = bytearray(blob[:-4])
        frame[4] = 1  # version byte inside the ">4sBQI" header
        resealed = bytes(frame) + struct.pack(
            ">I", zlib.crc32(bytes(frame)))
        with pytest.raises(SnapshotError, match="version 1"):
            load_object_store(resealed)

    def test_unknown_version_is_refused(self):
        blob = dump_object_store(sample_store())
        frame = bytearray(blob[:-4])
        frame[4] = 9
        resealed = bytes(frame) + struct.pack(
            ">I", zlib.crc32(bytes(frame)))
        with pytest.raises(SnapshotError, match="version 9"):
            load_object_store(resealed)

    def test_restored_stale_crc_survives(self):
        """Corruption present before the snapshot must still be
        detectable after restore (the CRC travels with the object)."""
        store = sample_store()
        store.corrupt_object("raw/a", b"ROTTED" * 20)
        clone = load_object_store(dump_object_store(store))
        assert not clone.verify("raw/a")
        assert clone.verify("raw/b")


class TestDatabaseSnapshotCorruption:
    def test_clean_roundtrip_keeps_history(self):
        db = sample_db()
        clone = load_photo_database(dump_photo_database(db))
        assert clone.snapshot_labels() == db.snapshot_labels()
        assert [r.label for r in clone.history("a")] == [1, 3]

    def test_flip_anywhere_is_rejected(self):
        blob = dump_photo_database(sample_db())
        for pos in (0, 2, 4, len(blob) // 2, len(blob) - 5, len(blob) - 1):
            damaged = bytearray(blob)
            damaged[pos] ^= 0x10
            with pytest.raises(SnapshotError):
                load_photo_database(bytes(damaged))

    def test_truncation_is_rejected(self):
        blob = dump_photo_database(sample_db())
        for cut in (0, 2, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SnapshotError):
                load_photo_database(blob[:cut])

    def test_v1_payload_is_refused_loudly(self):
        import json

        from repro.storage.compression import deflate

        payload = {"version": 1, "history": {}}
        frame = b"NDPD" + deflate(json.dumps(payload).encode())
        sealed = frame + struct.pack(">I", zlib.crc32(frame))
        with pytest.raises(SnapshotError, match="version 1"):
            load_photo_database(sealed)
