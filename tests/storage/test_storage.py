"""Storage substrate tests: compression, codec, object store, photo DB."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.compression import (
    compress_array,
    compression_ratio,
    decompress_array,
    deflate,
    inflate,
)
from repro.storage.imageformat import (
    CodecError,
    PhotoSizes,
    decode_photo,
    decode_preprocessed,
    encode_photo,
    encode_preprocessed,
    preprocess,
)
from repro.storage.objectstore import (
    MissingObjectError,
    ObjectStore,
    StorageFullError,
    Volume,
)
from repro.storage.photodb import LabelRecord, PhotoDatabase


class TestCompression:
    def test_roundtrip(self):
        raw = b"hello " * 100
        assert inflate(deflate(raw)) == raw

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            inflate(b"nope" + b"x" * 10)

    def test_ratio(self):
        raw = b"a" * 1000
        blob = deflate(raw)
        assert compression_ratio(raw, blob) > 10

    def test_ratio_empty_compressed(self):
        with pytest.raises(ValueError):
            compression_ratio(b"x", b"")

    @settings(max_examples=20, deadline=None)
    @given(shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
           seed=st.integers(0, 2**31 - 1))
    def test_property_array_roundtrip(self, shape, seed):
        arr = np.random.default_rng(seed).normal(size=shape).astype(np.float32)
        out = decompress_array(compress_array(arr))
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_scalar_array_roundtrip(self):
        arr = np.array(3.5)
        assert decompress_array(compress_array(arr)) == arr

    def test_int_array_roundtrip(self):
        arr = np.arange(10, dtype=np.int64)
        assert np.array_equal(decompress_array(compress_array(arr)), arr)


class TestPhotoCodec:
    def test_roundtrip_quantised(self, rng):
        pixels = rng.random((3, 8, 8))
        decoded = decode_photo(encode_photo(pixels))
        assert decoded.shape == pixels.shape
        assert np.abs(decoded - pixels).max() <= 1 / 255 + 1e-9

    def test_padding_to_nominal_size(self, rng):
        blob = encode_photo(rng.random((3, 4, 4)), pad_to_bytes=5000)
        assert len(blob) == 5000
        # padded blob still decodes
        decode_photo(blob)

    def test_clipping_out_of_range(self):
        pixels = np.full((1, 2, 2), 2.0)
        assert decode_photo(encode_photo(pixels)).max() <= 1.0

    def test_bad_shape_rejected(self):
        with pytest.raises(CodecError):
            encode_photo(np.zeros((4, 4)))

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            decode_photo(b"garbage-bytes-here-not-a-photo")

    def test_truncated_blob_rejected(self):
        with pytest.raises(CodecError):
            decode_photo(b"x")

    def test_preprocess_normalises(self, rng):
        pixels = rng.random((3, 4, 4))
        out = preprocess(pixels)
        assert out.dtype == np.float32
        assert abs(out.mean()) < 2.0

    def test_preprocessed_roundtrip(self, rng):
        tensor = preprocess(rng.random((3, 5, 5)))
        assert np.allclose(decode_preprocessed(encode_preprocessed(tensor)),
                           tensor)

    def test_preprocessed_bad_magic(self):
        with pytest.raises(CodecError):
            decode_preprocessed(b"AAAA" + b"0" * 20)

    def test_photo_sizes_fraction(self):
        sizes = PhotoSizes()
        assert sizes.preprocessed_fraction == pytest.approx(0.179, abs=0.01)


class TestVolume:
    def test_reserve_and_release(self):
        vol = Volume(capacity_bytes=100)
        vol.reserve(60)
        assert vol.free_bytes == 40
        vol.release(10)
        assert vol.used_bytes == 50

    def test_full_volume_raises(self):
        vol = Volume(capacity_bytes=10)
        with pytest.raises(StorageFullError):
            vol.reserve(11)

    def test_release_too_much(self):
        vol = Volume(capacity_bytes=10)
        with pytest.raises(ValueError):
            vol.release(1)

    def test_negative_reserve(self):
        with pytest.raises(ValueError):
            Volume(10).reserve(-1)

    def test_negative_release(self):
        # regression: release(-n) used to *grow* used_bytes silently
        vol = Volume(capacity_bytes=100)
        vol.reserve(50)
        with pytest.raises(ValueError, match="negative"):
            vol.release(-10)
        assert vol.used_bytes == 50

    def test_fill_fraction(self):
        vol = Volume(capacity_bytes=100)
        vol.reserve(25)
        assert vol.fill_fraction == 0.25
        assert Volume(0).fill_fraction == 1.0


class TestObjectStore:
    def test_put_get_roundtrip(self):
        store = ObjectStore()
        store.put("k", b"data")
        assert store.get("k") == b"data"

    def test_missing_key(self):
        with pytest.raises(MissingObjectError):
            ObjectStore().get("nope")
        with pytest.raises(MissingObjectError):
            ObjectStore().delete("nope")
        with pytest.raises(MissingObjectError):
            ObjectStore().size_of("nope")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            ObjectStore().put("", b"x")

    def test_overwrite_adjusts_volume(self):
        store = ObjectStore(Volume(100))
        store.put("k", b"aaaa")
        store.put("k", b"aa")
        assert store.volume.used_bytes == 2
        store.put("k", b"aaaaaaaa")
        assert store.volume.used_bytes == 8

    def test_delete_frees_space(self):
        store = ObjectStore(Volume(10))
        store.put("k", b"12345")
        store.delete("k")
        assert store.volume.used_bytes == 0
        assert not store.exists("k")

    def test_capacity_enforced(self):
        store = ObjectStore(Volume(4))
        with pytest.raises(StorageFullError):
            store.put("k", b"12345")

    def test_keys_prefix_sorted(self):
        store = ObjectStore()
        store.put("raw/b", b"1")
        store.put("raw/a", b"1")
        store.put("preproc/a", b"1")
        assert store.keys("raw/") == ["raw/a", "raw/b"]
        assert store.photo_ids() == ["a", "b"]

    def test_io_accounting(self):
        store = ObjectStore()
        store.put("k", b"abcd")
        store.get("k")
        store.get("k")
        assert store.bytes_written == 4
        assert store.bytes_read == 8

    def test_preprocessed_overhead(self):
        store = ObjectStore()
        store.put(store.raw_key("p"), b"x" * 82)
        store.put(store.preproc_key("p"), b"y" * 18)
        assert store.preprocessed_overhead() == pytest.approx(0.18)
        assert ObjectStore().preprocessed_overhead() == 0.0

    @settings(max_examples=20, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=0, max_size=64), max_size=10))
    def test_property_volume_usage_equals_sum_of_sizes(self, payloads):
        store = ObjectStore()
        for i, blob in enumerate(payloads):
            store.put(f"k{i}", blob)
        assert store.volume.used_bytes == sum(len(b) for b in payloads)


class TestPhotoDatabase:
    def _record(self, pid="p1", label=3, version=0, location="s0"):
        return LabelRecord(photo_id=pid, label=label, model_version=version,
                           location=location)

    def test_upsert_and_lookup(self):
        db = PhotoDatabase()
        assert db.upsert(self._record()) is True
        assert db.lookup("p1").label == 3
        assert "p1" in db and len(db) == 1

    def test_upsert_same_label_returns_false(self):
        db = PhotoDatabase()
        db.upsert(self._record())
        assert db.upsert(self._record(version=1)) is False

    def test_stale_write_rejected(self):
        db = PhotoDatabase()
        db.upsert(self._record(version=2))
        with pytest.raises(ValueError, match="stale"):
            db.upsert(self._record(version=1))

    def test_search_index_follows_updates(self):
        db = PhotoDatabase()
        db.upsert(self._record(label=3))
        db.upsert(self._record(label=5, version=1))
        assert db.search(3) == []
        assert db.search(5) == ["p1"]

    def test_history_grows(self):
        db = PhotoDatabase()
        db.upsert(self._record(label=1))
        db.upsert(self._record(label=2, version=1))
        assert [r.label for r in db.history("p1")] == [1, 2]

    def test_outdated_ids(self):
        db = PhotoDatabase()
        db.upsert(self._record(pid="a", version=0))
        db.upsert(self._record(pid="b", version=2))
        assert db.outdated_ids(2) == ["a"]

    def test_ids_at_location(self):
        db = PhotoDatabase()
        db.upsert(self._record(pid="a", location="s0"))
        db.upsert(self._record(pid="b", location="s1"))
        assert db.ids_at("s1") == ["b"]

    def test_version_counts(self):
        db = PhotoDatabase()
        db.upsert(self._record(pid="a", version=0))
        db.upsert(self._record(pid="b", version=1))
        assert db.version_counts() == {0: 1, 1: 1}

    def test_fraction_changed_since(self):
        db = PhotoDatabase()
        db.upsert(self._record(pid="a", label=1))
        db.upsert(self._record(pid="b", label=2))
        baseline = db.snapshot_labels()
        db.upsert(self._record(pid="a", label=9, version=1))
        assert db.fraction_changed_since(baseline) == 0.5
        with pytest.raises(ValueError):
            db.fraction_changed_since({})

    def test_missing_lookup(self):
        with pytest.raises(KeyError):
            PhotoDatabase().lookup("ghost")
