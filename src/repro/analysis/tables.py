"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table (floats to 3 significant-ish)."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (binary-ish decimal units)."""
    if num_bytes < 0:
        raise ValueError("negative byte count")
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if num_bytes < 1000 or unit == "TB":
            return f"{num_bytes:.2f} {unit}" if unit != "B" else f"{num_bytes:.0f} B"
        num_bytes /= 1000
    raise AssertionError("unreachable")
