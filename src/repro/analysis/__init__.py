"""``repro.analysis`` — one experiment driver per paper table/figure."""

from . import accuracy, perf
from .accuracy import FAST, PAPER, SMOKE, Scale
from .tables import format_bytes, format_table
from .validate import Anchor, calibration_report, validate_calibration

__all__ = ["perf", "accuracy", "Scale", "FAST", "SMOKE", "PAPER",
           "format_table", "format_bytes",
           "Anchor", "validate_calibration", "calibration_report"]
