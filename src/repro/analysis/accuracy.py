"""Accuracy-experiment drivers: Fig. 4, Table 1, Fig. 17, Table 2.

These run *real* training on the numpy substrate over the synthetic
drifting photo world, so the reported phenomena — drift decay, fine-tune
recovery, label refresh, pipelined-run forgetting — are emergent, not
scripted.  The ``Scale`` knob trades fidelity for runtime; benches use
``FAST``, tests use ``SMOKE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ftdmp import FTDMPTrainer
from ..core.partition import pipelined_time
from ..data.datasets import DatasetProfile, IMAGENET1K_LIKE, PROFILES
from ..data.drift import DriftingPhotoWorld
from ..data.loader import normalize_images
from ..models.catalog import ALL_MODELS
from ..models.registry import tiny_model
from ..models.split import SplitModel
from ..train.fulltrain import full_train
from ..workloads.scenarios import evaluate_model


@dataclass(frozen=True)
class Scale:
    """Experiment sizing (samples / epochs / model width)."""

    train: int = 600
    test: int = 400
    finetune: int = 400
    base_epochs: int = 5
    finetune_epochs: int = 3
    width: int = 8
    lr: float = 3e-3
    seed: int = 0


FAST = Scale()
SMOKE = Scale(train=160, test=120, finetune=120, base_epochs=2,
              finetune_epochs=2, width=8)
PAPER = Scale(train=1600, test=800, finetune=800, base_epochs=8,
              finetune_epochs=4, width=12)


def make_model(name: str, num_classes: int, scale: Scale,
               seed: Optional[int] = None) -> SplitModel:
    """Build a tiny model with unified sizing across architectures."""
    seed = scale.seed if seed is None else seed
    if name == "ViT":
        return tiny_model(name, num_classes=num_classes,
                          dim=scale.width * 4, seed=seed)
    return tiny_model(name, num_classes=num_classes, width=scale.width,
                      seed=seed)


def _clone(model_factory: Callable[[], SplitModel],
           source: SplitModel) -> SplitModel:
    clone = model_factory()
    clone.load_state_dict(source.state_dict())
    return clone


def _train_base(world: DriftingPhotoWorld, factory: Callable[[], SplitModel],
                scale: Scale) -> SplitModel:
    model = factory()
    x, y = world.sample(scale.train, 0, rng=np.random.default_rng(scale.seed + 7))
    full_train(model, normalize_images(x), y, epochs=scale.base_epochs,
               lr=scale.lr, seed=scale.seed)
    return model


# ---------------------------------------------------------------------------
# Fig. 4 — the outdated-model problem
# ---------------------------------------------------------------------------
def fig04_drift_study(model: str = "ResNet50",
                      profile: DatasetProfile = IMAGENET1K_LIKE,
                      scale: Scale = FAST,
                      horizon_days: int = 12,
                      eval_every: int = 2) -> dict:
    """Fig. 4a trajectories plus the Fig. 4b dataset-size sweep."""
    world = profile.world(seed=scale.seed)
    num_classes = world.config.max_classes
    factory = lambda: make_model(model, num_classes, scale)  # noqa: E731
    base = _train_base(world, factory, scale)

    days = list(range(0, horizon_days + 1, eval_every))
    trajectories: Dict[str, List[Tuple[int, float, float]]] = {
        "outdated": [], "finetune": [], "full": [],
    }
    finetune_model = _clone(factory, base)
    trainer = FTDMPTrainer(finetune_model, lr=scale.lr, seed=scale.seed)
    rng = np.random.default_rng(scale.seed + 23)

    for day in days:
        x_test, y_test = world.sample(
            scale.test, day, rng=np.random.default_rng(scale.seed + 101 + day)
        )
        # outdated: never updated
        trajectories["outdated"].append(
            (day,) + evaluate_model(base, x_test, y_test)
        )
        # finetune: classifier refreshed on recent uploads every period
        if day > 0:
            x_new, y_new = world.sample(scale.finetune, day, rng=rng)
            trainer.finetune(normalize_images(x_new), y_new,
                             epochs=scale.finetune_epochs)
        trajectories["finetune"].append(
            (day,) + evaluate_model(finetune_model, x_test, y_test)
        )
        # full: retrained from scratch on *cumulative* data every period
        # (historical + recent, §2.2 — the expensive gold standard)
        if day > 0:
            full_model = factory()
            x_cur, y_cur = _cumulative_sample(
                world, day, int(scale.train * 1.5), scale.seed + day)
            full_train(full_model, normalize_images(x_cur), y_cur,
                       epochs=scale.base_epochs + 2, lr=scale.lr,
                       seed=scale.seed)
        else:
            full_model = base
        trajectories["full"].append(
            (day,) + evaluate_model(full_model, x_test, y_test)
        )

    # Fig. 4b: fine-tuning accuracy vs training-set size, at the horizon
    sweep: List[Tuple[int, float]] = []
    x_test, y_test = world.sample(
        scale.test, horizon_days,
        rng=np.random.default_rng(scale.seed + 333),
    )
    for size in _size_ladder(scale.finetune):
        candidate = _clone(factory, base)
        sweep_trainer = FTDMPTrainer(candidate, lr=scale.lr, seed=scale.seed)
        x_ft, y_ft = world.sample(size, horizon_days,
                                  rng=np.random.default_rng(scale.seed + size))
        sweep_trainer.finetune(normalize_images(x_ft), y_ft,
                               epochs=scale.finetune_epochs)
        top1, _ = evaluate_model(candidate, x_test, y_test)
        sweep.append((size, top1))
    return {"trajectories": trajectories, "size_sweep": sweep, "days": days}


def _cumulative_sample(world: DriftingPhotoWorld, day: int, total: int,
                       seed: int):
    """Sample a cumulative training set spanning days 0..day."""
    sample_days = np.unique(np.linspace(0, day, 4).astype(int))
    per_day = max(total // len(sample_days), 16)
    xs, ys = [], []
    for j, d in enumerate(sample_days):
        x, y = world.sample(per_day, int(d),
                            rng=np.random.default_rng(seed + 7000 + j))
        xs.append(x)
        ys.append(y)
    return np.concatenate(xs), np.concatenate(ys)


def _size_ladder(top: int) -> List[int]:
    ladder = [max(top // 8, 16), max(top // 4, 24), max(top // 2, 32), top]
    return sorted(set(ladder))


# ---------------------------------------------------------------------------
# Table 1 — the outdated-label problem
# ---------------------------------------------------------------------------
def tab01_label_refresh(model: str = "ResNet50",
                        profile: DatasetProfile = IMAGENET1K_LIKE,
                        scale: Scale = FAST,
                        num_refreshes: int = 4,
                        period_days: int = 14) -> List[dict]:
    """% of M0's labels fixed by each biweekly full retrain M1..M4.

    Each new model trains on *cumulative* data (historical + recent, per
    §2.2), so it genuinely improves on the reference photo set.
    """
    world = profile.world(seed=scale.seed)
    num_classes = world.config.max_classes
    factory = lambda: make_model(model, num_classes, scale)  # noqa: E731
    base = _train_base(world, factory, scale)

    x_ref, y_ref = world.sample(
        scale.test, 0, rng=np.random.default_rng(scale.seed + 404)
    )
    normed_ref = normalize_images(x_ref)

    def predict(m: SplitModel) -> np.ndarray:
        from ..nn.tensor import Tensor

        was_training = m.training
        m.eval()
        out = []
        for start in range(0, len(normed_ref), 256):
            out.append(m(Tensor(normed_ref[start:start + 256])).data)
        m.train(was_training)
        return np.concatenate(out).argmax(axis=-1)

    labels_m0 = predict(base)
    wrong_m0 = labels_m0 != y_ref
    rows = [{"model": "M0", "pct_fixed": 0.0,
             "ref_accuracy": float((~wrong_m0).mean())}]
    for k in range(1, num_refreshes + 1):
        day = k * period_days
        x_parts, y_parts = [], []
        sample_days = np.linspace(0, day, 4).astype(int)
        grown = world.dataset_size_at(day, scale.train)
        per_day = max(grown // len(sample_days), 32)
        for j, d in enumerate(sample_days):
            xs, ys = world.sample(
                per_day, int(d),
                rng=np.random.default_rng(scale.seed + 900 + k * 17 + j),
            )
            x_parts.append(xs)
            y_parts.append(ys)
        x_train = np.concatenate(x_parts)
        y_train = np.concatenate(y_parts)
        model_k = factory()
        full_train(model_k, normalize_images(x_train), y_train,
                   epochs=scale.base_epochs, lr=scale.lr, seed=scale.seed)
        labels_k = predict(model_k)
        fixed = wrong_m0 & (labels_k == y_ref)
        rows.append({
            "model": f"M{k}",
            "pct_fixed": float(fixed.mean()) * 100.0,
            "ref_accuracy": float((labels_k == y_ref).mean()),
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 17 — pipelined FT-DMP: accuracy vs (simulated) time
# ---------------------------------------------------------------------------
def fig17_pipelined_training(model: str = "ResNet50",
                             profile: DatasetProfile = IMAGENET1K_LIKE,
                             scale: Scale = FAST,
                             num_runs_list: Sequence[int] = (1, 2, 3, 4),
                             num_stores: int = 4,
                             horizon_days: int = 14) -> dict:
    """Accuracy and wall-clock of pipelined FT-DMP for several N_run.

    Accuracy comes from genuinely training run-by-run over *time-ordered*
    uploads (so later runs see newer distributions and forgetting is real).
    Wall-clock comes from the calibrated full-scale pipeline model at
    ``num_stores`` PipeStores, where Store and Tuner stages are balanced.
    """
    world = profile.world(seed=scale.seed)
    num_classes = world.config.max_classes
    factory = lambda: make_model(model, num_classes, scale)  # noqa: E731
    base = _train_base(world, factory, scale)

    # time-ordered fine-tuning stream across the drift horizon
    per_day = max(scale.finetune // (horizon_days + 1), 12)
    x_parts, y_parts = [], []
    for day in range(horizon_days + 1):
        xs, ys = world.sample(
            per_day, day, rng=np.random.default_rng(scale.seed + 555 + day)
        )
        x_parts.append(xs)
        y_parts.append(ys)
    x_stream = normalize_images(np.concatenate(x_parts))
    y_stream = np.concatenate(y_parts)
    x_test, y_test = world.sample(
        scale.test, horizon_days,
        rng=np.random.default_rng(scale.seed + 777),
    )

    # calibrated stage times of the equivalent full-scale job
    from ..models.catalog import model_graph
    from ..sim.specs import TESLA_T4, TESLA_V100

    graph = model_graph(model)
    images = 1_200_000
    tuner_epochs = 2  # epochs to the paper's convergence-stop criterion
    store_rate = num_stores * TESLA_T4.fe_ips(graph, graph.num_partition_points() - 2)
    tuner_rate = TESLA_V100.tail_train_ips(graph, graph.num_partition_points() - 2)
    store_time = images / store_rate
    tuner_time = tuner_epochs * images / tuner_rate

    results = {}
    for num_runs in num_runs_list:
        candidate = _clone(factory, base)
        trainer = FTDMPTrainer(candidate, lr=scale.lr, seed=scale.seed)
        eval_fn = lambda: evaluate_model(candidate, x_test, y_test)[0]  # noqa: E731
        report = trainer.finetune(x_stream, y_stream,
                                  epochs=scale.finetune_epochs,
                                  num_runs=num_runs, eval_fn=eval_fn)
        total_time = pipelined_time(store_time, tuner_time, num_runs)
        results[num_runs] = {
            "final_top1": report.accuracy_trace[-1][2],
            "trace": report.accuracy_trace,
            "sim_time_s": total_time,
            "losses_by_run": _losses_by_run(report),
        }
    base_time = results[min(num_runs_list)]["sim_time_s"]
    for num_runs, entry in results.items():
        entry["time_reduction_pct"] = 100.0 * (1 - entry["sim_time_s"] / base_time)
    return results


def _losses_by_run(report) -> List[List[float]]:
    by_run: Dict[int, List[float]] = {}
    for record in report.epochs:
        by_run.setdefault(record.run, []).append(record.loss)
    return [by_run[k] for k in sorted(by_run)]


# ---------------------------------------------------------------------------
# Table 2 — accuracy matrix (5 models x 3 datasets x 4 strategies)
# ---------------------------------------------------------------------------
def tab02_accuracy_matrix(models: Optional[Sequence[str]] = None,
                          profiles: Optional[Sequence[str]] = None,
                          scale: Scale = FAST,
                          horizon_days: int = 14,
                          skip_full: Sequence[Tuple[str, str]] = (
                              ("ViT", "ImageNet-21K"),),
                          ) -> List[dict]:
    """Base / Outdated / NDPipe / Full accuracies after two weeks of drift.

    ``skip_full`` entries mirror the paper's missing ViT-on-ImageNet-21K
    full-training cell ('not included because of its long training time').
    """
    models = list(models or ALL_MODELS)
    profiles = list(profiles or PROFILES)
    skip_full = set(skip_full)
    rows: List[dict] = []
    for profile_name in profiles:
        profile = PROFILES[profile_name]
        world = profile.world(seed=scale.seed)
        num_classes = world.config.max_classes
        for model_name in models:
            factory = lambda: make_model(model_name, num_classes, scale)  # noqa: E731
            base = _train_base(world, factory, scale)
            x0, y0 = world.sample(
                scale.test, 0, rng=np.random.default_rng(scale.seed + 11)
            )
            x1, y1 = world.sample(
                scale.test, horizon_days,
                rng=np.random.default_rng(scale.seed + 13),
            )
            base_top1, base_top5 = evaluate_model(base, x0, y0)
            out_top1, out_top5 = evaluate_model(base, x1, y1)

            nd_model = _clone(factory, base)
            trainer = FTDMPTrainer(nd_model, lr=scale.lr, seed=scale.seed)
            x_ft, y_ft = world.sample(
                scale.finetune, horizon_days,
                rng=np.random.default_rng(scale.seed + 17),
            )
            trainer.finetune(normalize_images(x_ft), y_ft,
                             epochs=scale.finetune_epochs)
            nd_top1, nd_top5 = evaluate_model(nd_model, x1, y1)

            if (model_name, profile_name) in skip_full:
                full_top1 = full_top5 = float("nan")
            else:
                full_model = factory()
                x_cum, y_cum = _cumulative_sample(
                    world, horizon_days, int(scale.train * 1.5),
                    scale.seed + 19)
                full_train(full_model, normalize_images(x_cum), y_cum,
                           epochs=scale.base_epochs + 2, lr=scale.lr,
                           seed=scale.seed)
                full_top1, full_top5 = evaluate_model(full_model, x1, y1)

            rows.append({
                "dataset": profile_name,
                "model": model_name,
                "base_top1": base_top1, "base_top5": base_top5,
                "outdated_top1": out_top1, "outdated_top5": out_top5,
                "ndpipe_top1": nd_top1, "ndpipe_top5": nd_top5,
                "full_top1": full_top1, "full_top5": full_top5,
            })
    return rows
