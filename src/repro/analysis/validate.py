"""Calibration self-check: is the hardware catalog still on its anchors?

The simulator's credibility rests on a handful of measured numbers from
the paper (per-PipeStore IPS, the artifact's FE throughput, APO's 8-store
pick, the strawman ratios...).  ``validate_calibration`` recomputes each
anchor from the current catalog and reports pass/fail, so any future edit
to ``repro/sim/specs.py`` that silently drifts off the paper is caught —
both by `tests/analysis/test_validate.py` and by users running
``python -m repro.cli validate``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Anchor:
    """One calibration target and how far off the catalog may drift."""

    name: str
    paper_value: float
    measured: float
    rel_tol: float
    source: str

    @property
    def ok(self) -> bool:
        if self.paper_value == 0:
            return abs(self.measured) <= self.rel_tol
        return abs(self.measured - self.paper_value) <= (
            self.rel_tol * abs(self.paper_value))

    @property
    def error_pct(self) -> float:
        if self.paper_value == 0:
            return float("inf")
        return 100.0 * (self.measured - self.paper_value) / self.paper_value


def validate_calibration() -> List[Anchor]:
    """Recompute every calibration anchor from the live catalog."""
    from ..core.apo import plan_organization
    from ..models.catalog import model_graph
    from ..sim.specs import TESLA_T4, TESLA_V100
    from ..train.baselines import (
        ideal_finetune,
        ideal_offline_inference,
        srv_finetune,
        typical_finetune,
        typical_offline_inference,
    )

    anchors: List[Anchor] = []

    def add(name, paper, measured, tol, source):
        anchors.append(Anchor(name, paper, float(measured), tol, source))

    per_store = {
        "ResNet50": 2129, "InceptionV3": 2439,
        "ResNeXt101": 449, "ViT": 277,
    }
    for model, target in per_store.items():
        graph = model_graph(model)
        add(f"T4 inference IPS @128 [{model}]", target,
            TESLA_T4.inference_ips(graph, 128), 0.02, "§6.2")

    resnet = model_graph("ResNet50")
    add("FE throughput (T4, ResNet50 fine-tune)", 1913.26,
        TESLA_T4.fe_ips(resnet, 5, 512), 0.03, "artifact A.6")

    add("V100 : T4 effective ratio", 3.0,
        TESLA_V100.inference_ips(resnet, 128)
        / TESLA_T4.inference_ips(resnet, 128), 0.1, "Fig. 13 P3")

    plan = plan_organization(resnet)
    add("APO PipeStore pick (ResNet50)", 8, plan.num_pipestores, 0.0,
        "Fig. 11")

    add("Typical/Ideal fine-tune slowdown", 3.7,
        ideal_finetune(resnet).throughput_ips
        / typical_finetune(resnet).throughput_ips, 0.2, "Fig. 5a")
    add("Typical offline inference IPS", 94,
        typical_offline_inference(resnet).throughput_ips, 0.2, "Fig. 5b")
    add("Ideal offline inference IPS", 123,
        ideal_offline_inference(resnet).throughput_ips, 0.1, "Fig. 5b")

    srv_ft = srv_finetune(resnet).throughput_ips
    crossover = math.ceil(srv_ft / TESLA_T4.fe_ips(resnet, 5, 512))
    add("fine-tune crossover stores (ResNet50)", 3, crossover, 0.0,
        "Fig. 15")

    full_time = 90 * 1.2e6 / (2 * TESLA_V100.full_train_ips(resnet))
    ft_time = 1.2e6 / TESLA_V100.tail_train_ips(resnet, 5)
    add("fine-tune vs full-train speedup (>=300x)", 330,
        full_time / ft_time, 0.25, "§1 / §6.3")

    return anchors


def calibration_report() -> str:
    """Human-readable pass/fail table of every anchor."""
    from .tables import format_table

    anchors = validate_calibration()
    rows = [
        [a.name, a.paper_value, a.measured,
         f"{a.error_pct:+.1f}%" if math.isfinite(a.error_pct) else "-",
         "ok" if a.ok else "DRIFTED", a.source]
        for a in anchors
    ]
    failed = sum(1 for a in anchors if not a.ok)
    table = format_table(
        ["anchor", "paper", "measured", "error", "status", "source"],
        rows, title="hardware-catalog calibration check",
    )
    table += (f"\n{len(anchors) - failed}/{len(anchors)} anchors hold"
              + ("" if failed == 0 else f"; {failed} DRIFTED"))
    return table
