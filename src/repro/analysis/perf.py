"""Performance-experiment drivers: one function per timing figure.

Each function returns plain data (lists of dict rows) that the matching
benchmark prints with :func:`repro.analysis.tables.format_table`.  The
figure numbering follows the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.apo import plan_organization
from ..core.npe import ABLATION_LEVELS, npe_ablation
from ..core.partition import (
    FinetunePlanConfig,
    evaluate_all_points,
    evaluate_partition,
)
from ..models.catalog import FIGURE_MODELS, model_graph
from ..sim.cost import run_cost
from ..sim.specs import (
    DEFAULT_DATASET_IMAGES,
    G4DN_4XLARGE,
    G4DN_4XLARGE_NOGPU,
    INF1_2XLARGE,
    P3_2XLARGE,
    P3_8XLARGE,
    NetworkSpec,
    TEN_GBE,
    TESLA_T4,
    TESLA_V100,
)
from ..train import baselines
from ..train.baselines import (
    ideal_finetune,
    ideal_offline_inference,
    inference_crossovers,
    naive_ndp_finetune_breakdown,
    naive_ndp_inference_breakdown,
    ndpipe_inference,
    srv_finetune,
    srv_inference,
    typical_finetune,
    typical_finetune_breakdown,
    typical_inference_breakdown,
    typical_offline_inference,
)


# ---------------------------------------------------------------------------
# Fig. 5 — impact of the network bottleneck (Typical vs Ideal)
# ---------------------------------------------------------------------------
def fig05_bottleneck(model: str = "ResNet50",
                     finetune_images: int = DEFAULT_DATASET_IMAGES,
                     ) -> Dict[str, Dict[str, float]]:
    graph = model_graph(model)
    typ_ft = typical_finetune(graph)
    idl_ft = ideal_finetune(graph)
    typ_inf = typical_offline_inference(graph)
    idl_inf = ideal_offline_inference(graph)
    return {
        "finetune_time_min": {
            "Typical": finetune_images / typ_ft.throughput_ips / 60.0,
            "Ideal": finetune_images / idl_ft.throughput_ips / 60.0,
        },
        "inference_ips": {
            "Typical": typ_inf.throughput_ips,
            "Ideal": idl_inf.throughput_ips,
        },
    }


# ---------------------------------------------------------------------------
# Fig. 6 — naive-NDP per-subprocess execution times vs Typical
# ---------------------------------------------------------------------------
def fig06_breakdown(model: str = "ResNet50") -> Dict[str, List[dict]]:
    graph = model_graph(model)
    result: Dict[str, List[dict]] = {}

    typical = typical_finetune_breakdown(graph)
    ndp = naive_ndp_finetune_breakdown(graph)
    result["finetune"] = [
        {
            "task": task,
            "typical_s_per_img": typical[task],
            "ndp_s_per_img": ndp[task],
            "ndp_over_typical": (ndp[task] / typical[task]
                                 if typical[task] > 0 else float("inf")),
        }
        for task in ("Read", "Data Trans.", "FE&CT", "Weight Sync.")
    ]

    typical_inf = typical_inference_breakdown(graph)
    ndp_inf = naive_ndp_inference_breakdown(graph)
    result["inference"] = [
        {
            "task": task,
            "typical_s_per_img": typical_inf[task],
            "ndp_s_per_img": ndp_inf[task],
            "ndp_over_typical": (ndp_inf[task] / typical_inf[task]
                                 if typical_inf[task] > 0 else float("inf")),
        }
        for task in ("Read", "Data Trans.", "Preproc.", "FE&Cl")
    ]
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — layer offloading vs data traffic and training time
# ---------------------------------------------------------------------------
def fig09_partition_sweep(model: str = "ResNet50", num_stores: int = 4,
                          images: int = DEFAULT_DATASET_IMAGES) -> List[dict]:
    graph = model_graph(model)
    config = FinetunePlanConfig(dataset_images=images, num_runs=1)
    rows = []
    for ev in evaluate_all_points(graph, num_stores, TESLA_T4, TESLA_V100,
                                  TEN_GBE, config):
        rows.append({
            "cut": ev.point.label,
            "feature_traffic_gb": ev.feature_traffic_bytes / 1e9,
            "sync_traffic_gb": ev.sync_traffic_bytes / 1e9,
            "training_time_s": ev.training_time_s,
            "store_time_s": ev.store_time_s,
            "tuner_time_s": ev.tuner_time_s,
            "sync_time_s": ev.sync_time_s,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — APO: training time and energy efficiency vs #PipeStores
# ---------------------------------------------------------------------------
def fig11_apo_sweep(model: str = "ResNet50", max_stores: int = 20,
                    images: int = DEFAULT_DATASET_IMAGES) -> dict:
    graph = model_graph(model)
    plan = plan_organization(
        graph, max_pipestores=max_stores,
        config=FinetunePlanConfig(dataset_images=images),
    )
    rows = [
        {
            "stores": c.num_pipestores,
            "training_time_s": c.training_time_s,
            "t_diff_s": c.stage_imbalance_s,
            "ips_per_kj": c.ips_per_kj,
        }
        for c in plan.candidates
    ]
    return {
        "rows": rows,
        "apo_pick": plan.num_pipestores,
        "cut": plan.split_label,
        "best_energy_stores": plan.most_energy_efficient().num_pipestores,
    }


# ---------------------------------------------------------------------------
# Fig. 12 — NPE optimisation ablation
# ---------------------------------------------------------------------------
def fig12_npe_ablation(model: str = "ResNet50") -> Dict[str, List[dict]]:
    graph = model_graph(model)
    out: Dict[str, List[dict]] = {}
    for task in ("finetune", "inference"):
        levels = npe_ablation(graph, task)
        rows = []
        for level in ABLATION_LEVELS:
            row = {"level": level}
            for key, value in levels[level].items():
                row[f"{key}_ms"] = value
            rows.append(row)
        out[task] = rows
    return out


# ---------------------------------------------------------------------------
# Fig. 13 — inference throughput scaling
# ---------------------------------------------------------------------------
def fig13_inference_scaling(models: Optional[Sequence[str]] = None,
                            max_stores: int = 20) -> Dict[str, dict]:
    models = list(models or FIGURE_MODELS)
    out: Dict[str, dict] = {}
    for name in models:
        graph = model_graph(name)
        srv = {
            variant: srv_inference(variant, graph).throughput_ips
            for variant in ("SRV-I", "SRV-P", "SRV-C")
        }
        ndpipe = {
            n: ndpipe_inference(graph, n).throughput_ips
            for n in range(1, max_stores + 1)
        }
        out[name] = {
            "srv_ips": srv,
            "ndpipe_ips": ndpipe,
            "per_store_ips": ndpipe[1],
            "crossovers": inference_crossovers(graph, max_stores),
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 14 — inference power breakdown at P1/P2/P3
# ---------------------------------------------------------------------------
def fig14_power_breakdown(model: str = "ResNet50") -> List[dict]:
    graph = model_graph(model)
    crossings = inference_crossovers(graph)
    rows: List[dict] = []
    for label, variant in (("P1", "SRV-P"), ("P2", "SRV-C"), ("P3", "SRV-I")):
        stores = crossings[label]
        if stores is None:
            continue
        srv_point = srv_inference(variant, graph)
        nd_point = ndpipe_inference(graph, stores)
        for point, system in ((srv_point, variant), (nd_point, "NDPipe")):
            rows.append({
                "operating_point": label,
                "system": system if system != "NDPipe"
                else f"NDPipe x{stores}",
                "gpu_w": point.power.gpu_watts,
                "cpu_w": point.power.cpu_watts,
                "other_w": point.power.other_watts,
                "total_w": point.power.total_watts,
                "ips": point.throughput_ips,
                "ips_per_w": point.ips_per_watt,
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 15 / 16 — training time scaling and energy efficiency
# ---------------------------------------------------------------------------
def fig15_training_scaling(models: Optional[Sequence[str]] = None,
                           max_stores: int = 20,
                           images: int = DEFAULT_DATASET_IMAGES,
                           num_runs: int = 3) -> Dict[str, dict]:
    models = list(models or FIGURE_MODELS)
    out: Dict[str, dict] = {}
    for name in models:
        graph = model_graph(name)
        srv = srv_finetune(graph)
        srv_time = images / srv.throughput_ips
        plan = plan_organization(
            graph, max_pipestores=max_stores,
            config=FinetunePlanConfig(dataset_images=images, num_runs=num_runs),
        )
        times = {c.num_pipestores: c.training_time_s for c in plan.candidates}
        crossover = next(
            (n for n in sorted(times) if times[n] <= srv_time), None
        )
        best = plan.most_energy_efficient()
        out[name] = {
            "srv_c_time_s": srv_time,
            "ndpipe_time_s": times,
            "p1_stores": crossover,
            "apo_pick": plan.num_pipestores,
            "best_stores": best.num_pipestores,
            "best_ips_per_kj": best.ips_per_kj,
        }
    return out


def fig16_training_energy(models: Optional[Sequence[str]] = None,
                          images: int = DEFAULT_DATASET_IMAGES,
                          num_runs: int = 3) -> List[dict]:
    models = list(models or FIGURE_MODELS)
    rows: List[dict] = []
    scaling = fig15_training_scaling(models, images=images, num_runs=num_runs)
    for name in models:
        graph = model_graph(name)
        srv = srv_finetune(graph)
        srv_kj = srv.energy_kj_for(images)
        data = scaling[name]
        plan = plan_organization(
            graph, config=FinetunePlanConfig(dataset_images=images,
                                             num_runs=num_runs),
        )
        by_stores = {c.num_pipestores: c for c in plan.candidates}
        for label, stores in (("P1", data["p1_stores"]),
                              ("BEST", data["best_stores"])):
            if stores is None:
                continue
            candidate = by_stores[stores]
            rows.append({
                "model": name,
                "point": label,
                "stores": stores,
                "srv_c_ips_per_kj": images / srv_kj,
                "ndpipe_ips_per_kj": candidate.ips_per_kj,
                "gain": candidate.ips_per_kj / (images / srv_kj),
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 18 — network-bandwidth sensitivity
# ---------------------------------------------------------------------------
def fig18_bandwidth_sweep(models: Sequence[str] = ("ResNet50", "ResNeXt101"),
                          gbps_values: Sequence[float] = (1, 10, 20, 40),
                          num_stores: int = 8) -> List[dict]:
    rows: List[dict] = []
    for name in models:
        graph = model_graph(name)
        nd = ndpipe_inference(graph, num_stores)
        for gbps in gbps_values:
            network = NetworkSpec(gbps=gbps)
            srv = srv_inference("SRV-C", graph, network)
            rows.append({
                "model": name,
                "gbps": gbps,
                "srv_c_ips_per_w": srv.ips_per_watt,
                "ndpipe_ips_per_w": nd.ips_per_watt,
                "gain": nd.ips_per_watt / srv.ips_per_watt,
                "srv_bottleneck": srv.bottleneck,
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 19 — batch-size sensitivity (with the ViT OOM wall)
# ---------------------------------------------------------------------------
def fig19_batch_sweep(models: Optional[Sequence[str]] = None,
                      batch_sizes: Sequence[int] = (1, 8, 32, 128, 256, 512),
                      ) -> List[dict]:
    models = list(models or FIGURE_MODELS)
    rows: List[dict] = []
    for name in models:
        graph = model_graph(name)
        for batch in batch_sizes:
            try:
                point = ndpipe_inference(graph, 1, batch_size=batch)
                rows.append({
                    "model": name,
                    "batch": batch,
                    "ips": point.throughput_ips,
                    "bottleneck": point.bottleneck,
                    "oom": False,
                })
            except MemoryError:
                rows.append({"model": name, "batch": batch, "ips": 0.0,
                             "bottleneck": "OOM", "oom": True})
    return rows


# ---------------------------------------------------------------------------
# Fig. 20 — NDPipe on AWS Inferentia (NeuronCoreV1)
# ---------------------------------------------------------------------------
def fig20_inferentia(models: Sequence[str] = ("ResNet50", "ResNeXt101"),
                     max_stores: int = 20,
                     images: int = DEFAULT_DATASET_IMAGES) -> Dict[str, dict]:
    out: Dict[str, dict] = {}
    for name in models:
        graph = model_graph(name)
        srv_inf = srv_inference("SRV-C", graph)
        inf_match = None
        for n in range(1, max_stores + 1):
            point = ndpipe_inference(graph, n, store=INF1_2XLARGE)
            if point.throughput_ips >= srv_inf.throughput_ips:
                inf_match = n
                break
        srv_ft = srv_finetune(graph)
        ft_match = None
        for n in range(1, max_stores + 1):
            ev = evaluate_partition(
                graph, graph.num_partition_points() - 2, n,
                INF1_2XLARGE.accelerator, TESLA_V100, TEN_GBE,
                FinetunePlanConfig(dataset_images=images),
            )
            if images / ev.training_time_s >= srv_ft.throughput_ips:
                ft_match = n
                break
        nd_point = ndpipe_inference(graph, inf_match or max_stores,
                                    store=INF1_2XLARGE)
        out[name] = {
            "inference_stores_to_match_srv_c": inf_match,
            "finetune_stores_to_match_srv_c": ft_match,
            "inference_power_gain": nd_point.ips_per_watt / srv_inf.ips_per_watt,
            "per_store_ips": ndpipe_inference(graph, 1,
                                              store=INF1_2XLARGE).throughput_ips,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 21a — operational cost of fine-tuning
# ---------------------------------------------------------------------------
def fig21_cost_sweep(model: str = "ResNet50", max_stores: int = 20,
                     images: int = DEFAULT_DATASET_IMAGES) -> List[dict]:
    graph = model_graph(model)
    srv = srv_finetune(graph)
    srv_time = images / srv.throughput_ips
    srv_fleet = [P3_8XLARGE] + [G4DN_4XLARGE_NOGPU] * baselines.DEFAULT_NUM_STORAGE
    srv_cost = run_cost(srv_fleet, srv_time)
    rows: List[dict] = []
    for n in range(1, max_stores + 1):
        config = FinetunePlanConfig(dataset_images=images)
        ev_t4 = evaluate_partition(graph, graph.num_partition_points() - 2, n,
                                   TESLA_T4, TESLA_V100, TEN_GBE, config)
        fleet_t4 = [P3_2XLARGE] + [G4DN_4XLARGE] * n
        ev_inf1 = evaluate_partition(graph, graph.num_partition_points() - 2, n,
                                     INF1_2XLARGE.accelerator, TESLA_V100,
                                     TEN_GBE, config)
        fleet_inf1 = [P3_2XLARGE] + [INF1_2XLARGE] * n
        rows.append({
            "stores": n,
            "ndpipe_cost_usd": run_cost(fleet_t4, ev_t4.training_time_s),
            "ndpipe_inf1_cost_usd": run_cost(fleet_inf1, ev_inf1.training_time_s),
            "srv_c_cost_usd": srv_cost,
        })
    return rows
