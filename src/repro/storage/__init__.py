"""``repro.storage`` — photo storage substrate.

Object stores over capacity-accounted volumes, the label database, a
synthetic photo codec (byte-accurate JPEG/preprocessed-binary stand-ins),
and real deflate compression helpers.
"""

from .compression import (
    compress_array,
    compression_ratio,
    decompress_array,
    deflate,
    inflate,
)
from .imageformat import (
    CodecError,
    PhotoSizes,
    decode_photo,
    decode_preprocessed,
    encode_photo,
    encode_preprocessed,
    preprocess,
)
from .objectstore import (
    CorruptObjectError,
    MissingObjectError,
    ObjectStore,
    StorageFullError,
    Volume,
)
from .persistence import (
    SnapshotError,
    dump_object_store,
    dump_photo_database,
    load_object_store,
    load_photo_database,
    snapshot_sizes,
)
from .photodb import LabelRecord, PhotoDatabase

__all__ = [
    "deflate", "inflate", "compression_ratio", "compress_array",
    "decompress_array",
    "encode_photo", "decode_photo", "preprocess", "encode_preprocessed",
    "decode_preprocessed", "CodecError", "PhotoSizes",
    "ObjectStore", "Volume", "StorageFullError", "MissingObjectError",
    "CorruptObjectError",
    "PhotoDatabase", "LabelRecord",
    "dump_object_store", "load_object_store", "dump_photo_database",
    "load_photo_database", "snapshot_sizes", "SnapshotError",
]
