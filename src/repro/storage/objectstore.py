"""An in-memory object store standing in for a photo storage volume.

Each PipeStore owns one :class:`ObjectStore` backed by a capacity-limited
:class:`Volume`.  Keys are namespaced (``raw/<id>``, ``preproc/<id>``) the
way the paper stores raw photos next to their compressed preprocessed
binaries (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class StorageFullError(RuntimeError):
    """Raised when a put would exceed the volume's capacity."""


class MissingObjectError(KeyError):
    """Raised when a key is absent from the store."""


@dataclass
class Volume:
    """A capacity-accounted storage volume (the st1 RAID array)."""

    capacity_bytes: int
    used_bytes: int = 0

    def reserve(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("cannot reserve negative bytes")
        if self.used_bytes + num_bytes > self.capacity_bytes:
            raise StorageFullError(
                f"volume full: {self.used_bytes + num_bytes} "
                f"> {self.capacity_bytes}"
            )
        self.used_bytes += num_bytes

    def release(self, num_bytes: int) -> None:
        if num_bytes > self.used_bytes:
            raise ValueError("releasing more bytes than used")
        self.used_bytes -= num_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def fill_fraction(self) -> float:
        if self.capacity_bytes == 0:
            return 1.0
        return self.used_bytes / self.capacity_bytes


class ObjectStore:
    """Flat key -> bytes store with namespace helpers and IO accounting."""

    def __init__(self, volume: Optional[Volume] = None, name: str = "store"):
        self.name = name
        self.volume = volume or Volume(capacity_bytes=1 << 40)
        self._objects: Dict[str, bytes] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # -- CRUD -------------------------------------------------------------
    def put(self, key: str, blob: bytes) -> None:
        if not key:
            raise ValueError("empty key")
        old = self._objects.get(key)
        delta = len(blob) - (len(old) if old is not None else 0)
        if delta > 0:
            self.volume.reserve(delta)
        elif delta < 0:
            self.volume.release(-delta)
        self._objects[key] = blob
        self.bytes_written += len(blob)

    def get(self, key: str) -> bytes:
        try:
            blob = self._objects[key]
        except KeyError:
            raise MissingObjectError(key) from None
        self.bytes_read += len(blob)
        return blob

    def delete(self, key: str) -> None:
        try:
            blob = self._objects.pop(key)
        except KeyError:
            raise MissingObjectError(key) from None
        self.volume.release(len(blob))

    def exists(self, key: str) -> bool:
        return key in self._objects

    def size_of(self, key: str) -> int:
        try:
            return len(self._objects[key])
        except KeyError:
            raise MissingObjectError(key) from None

    def __len__(self) -> int:
        return len(self._objects)

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def iter_items(self, prefix: str = "") -> Iterator:
        for key in self.keys(prefix):
            yield key, self.get(key)

    # -- namespaces -------------------------------------------------------
    @staticmethod
    def raw_key(photo_id: str) -> str:
        return f"raw/{photo_id}"

    @staticmethod
    def preproc_key(photo_id: str) -> str:
        return f"preproc/{photo_id}"

    def photo_ids(self) -> List[str]:
        prefix = "raw/"
        return [k[len(prefix):] for k in self.keys(prefix)]

    # -- accounting ---------------------------------------------------------
    def bytes_by_prefix(self, prefix: str) -> int:
        return sum(len(self._objects[k]) for k in self.keys(prefix))

    def preprocessed_overhead(self) -> float:
        """Fraction of stored bytes taken by preprocessed binaries (§5.4)."""
        raw = self.bytes_by_prefix("raw/")
        pre = self.bytes_by_prefix("preproc/")
        total = raw + pre
        if total == 0:
            return 0.0
        return pre / total
