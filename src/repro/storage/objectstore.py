"""An in-memory object store standing in for a photo storage volume.

Each PipeStore owns one :class:`ObjectStore` backed by a capacity-limited
:class:`Volume`.  Keys are namespaced (``raw/<id>``, ``preproc/<id>``) the
way the paper stores raw photos next to their compressed preprocessed
binaries (§5.4).

Every blob carries a CRC32 computed at write time and verified on every
workload read, so silent media corruption (bit rot, torn writes) surfaces
as :class:`CorruptObjectError` instead of propagating garbage into
near-data jobs.  Maintenance traffic — snapshots, scrubs, replication
repair — reads through :meth:`ObjectStore.peek`, which neither counts
toward workload IO accounting nor insists on a valid checksum.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class StorageFullError(RuntimeError):
    """Raised when a put would exceed the volume's capacity."""


class MissingObjectError(KeyError):
    """Raised when a key is absent from the store."""


class CorruptObjectError(RuntimeError):
    """A stored blob no longer matches its write-time CRC32."""

    def __init__(self, store: str, key: str):
        super().__init__(f"{store}: object {key!r} failed its CRC32 check")
        self.store = store
        self.key = key


@dataclass
class Volume:
    """A capacity-accounted storage volume (the st1 RAID array)."""

    capacity_bytes: int
    used_bytes: int = 0

    def reserve(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("cannot reserve negative bytes")
        if self.used_bytes + num_bytes > self.capacity_bytes:
            raise StorageFullError(
                f"volume full: {self.used_bytes + num_bytes} "
                f"> {self.capacity_bytes}"
            )
        self.used_bytes += num_bytes

    def release(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("cannot release negative bytes")
        if num_bytes > self.used_bytes:
            raise ValueError("releasing more bytes than used")
        self.used_bytes -= num_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def fill_fraction(self) -> float:
        if self.capacity_bytes == 0:
            return 1.0
        return self.used_bytes / self.capacity_bytes


class ObjectStore:
    """Flat key -> bytes store with namespace helpers and IO accounting."""

    def __init__(self, volume: Optional[Volume] = None, name: str = "store"):
        self.name = name
        self.volume = volume or Volume(capacity_bytes=1 << 40)
        self._objects: Dict[str, bytes] = {}
        self._crcs: Dict[str, int] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # -- CRUD -------------------------------------------------------------
    def put(self, key: str, blob: bytes) -> None:
        if not key:
            raise ValueError("empty key")
        old = self._objects.get(key)
        delta = len(blob) - (len(old) if old is not None else 0)
        if delta > 0:
            self.volume.reserve(delta)
        elif delta < 0:
            self.volume.release(-delta)
        self._objects[key] = blob
        self._crcs[key] = zlib.crc32(blob)
        self.bytes_written += len(blob)

    def get(self, key: str) -> bytes:
        """Workload read: counts toward IO accounting, verifies the CRC."""
        blob = self._lookup(key)
        if zlib.crc32(blob) != self._crcs[key]:
            raise CorruptObjectError(self.name, key)
        self.bytes_read += len(blob)
        return blob

    def peek(self, key: str, verify: bool = False) -> bytes:
        """Maintenance read (snapshot / scrub / replication repair).

        Does not count toward ``bytes_read`` — taking a snapshot must not
        mutate workload IO stats.  With ``verify`` the CRC is still
        enforced, which is what repair uses to pick a healthy donor.
        """
        blob = self._lookup(key)
        if verify and zlib.crc32(blob) != self._crcs[key]:
            raise CorruptObjectError(self.name, key)
        return blob

    def verify(self, key: str) -> bool:
        """Does the stored blob still match its write-time CRC32?"""
        return zlib.crc32(self._lookup(key)) == self._crcs[key]

    def stored_crc(self, key: str) -> int:
        """The CRC32 recorded when the object was last written."""
        self._lookup(key)
        return self._crcs[key]

    def delete(self, key: str) -> None:
        try:
            blob = self._objects.pop(key)
        except KeyError:
            raise MissingObjectError(key) from None
        self._crcs.pop(key, None)
        self.volume.release(len(blob))

    def exists(self, key: str) -> bool:
        return key in self._objects

    def size_of(self, key: str) -> int:
        return len(self._lookup(key))

    def __len__(self) -> int:
        return len(self._objects)

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def iter_items(self, prefix: str = "") -> Iterator:
        """Maintenance iteration: unaccounted, unverified reads."""
        for key in self.keys(prefix):
            yield key, self.peek(key)

    # -- fault-injection / restore seams ----------------------------------
    def corrupt_object(self, key: str, blob: bytes) -> None:
        """Replace stored bytes *without* refreshing the CRC.

        This is the fault-injection seam for ``bit_rot`` / ``torn_write``
        events: volume accounting tracks the new length (the media still
        holds that many bytes) but the write-time checksum is left stale,
        exactly like silent corruption under a filesystem.
        """
        old = self._lookup(key)
        delta = len(blob) - len(old)
        if delta > 0:
            self.volume.reserve(delta)
        elif delta < 0:
            self.volume.release(-delta)
        self._objects[key] = blob

    def restore_object(self, key: str, blob: bytes, crc: int) -> None:
        """Snapshot-restore seam: reinstate an object with its recorded
        CRC, so corruption that predates a snapshot is still detectable
        by a scrub after the restore."""
        self.put(key, blob)
        self._crcs[key] = crc

    # -- namespaces -------------------------------------------------------
    @staticmethod
    def raw_key(photo_id: str) -> str:
        return f"raw/{photo_id}"

    @staticmethod
    def preproc_key(photo_id: str) -> str:
        return f"preproc/{photo_id}"

    def photo_ids(self) -> List[str]:
        prefix = "raw/"
        return [k[len(prefix):] for k in self.keys(prefix)]

    # -- accounting ---------------------------------------------------------
    def bytes_by_prefix(self, prefix: str) -> int:
        return sum(len(self._objects[k]) for k in self.keys(prefix))

    def preprocessed_overhead(self) -> float:
        """Fraction of stored bytes taken by preprocessed binaries (§5.4)."""
        raw = self.bytes_by_prefix("raw/")
        pre = self.bytes_by_prefix("preproc/")
        total = raw + pre
        if total == 0:
            return 0.0
        return pre / total

    # -- internals ----------------------------------------------------------
    def _lookup(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise MissingObjectError(key) from None
