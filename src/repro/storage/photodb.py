"""The label database indexing photo labels for user queries (§3.1).

Every photo's label carries the version of the model that produced it, so
the *outdated label* experiments (Table 1) can count how many records a
newer model's offline inference corrects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class LabelRecord:
    """One label assignment: which label, by which model, where stored."""

    photo_id: str
    label: int
    model_version: int
    location: str  # which PipeStore holds the photo
    confidence: float = 1.0


class PhotoDatabase:
    """Photo-id -> current label record, with version history and an index."""

    def __init__(self):
        self._records: Dict[str, LabelRecord] = {}
        self._history: Dict[str, List[LabelRecord]] = {}
        self._label_index: Dict[int, set] = {}

    # -- writes -------------------------------------------------------------
    def upsert(self, record: LabelRecord) -> bool:
        """Insert or update; returns True if the label value changed."""
        previous = self._records.get(record.photo_id)
        if previous is not None:
            if record.model_version < previous.model_version:
                raise ValueError(
                    f"stale write for {record.photo_id}: model v{record.model_version}"
                    f" < current v{previous.model_version}"
                )
            self._label_index[previous.label].discard(record.photo_id)
        self._records[record.photo_id] = record
        self._history.setdefault(record.photo_id, []).append(record)
        self._label_index.setdefault(record.label, set()).add(record.photo_id)
        return previous is None or previous.label != record.label

    # -- reads ----------------------------------------------------------------
    def lookup(self, photo_id: str) -> LabelRecord:
        try:
            return self._records[photo_id]
        except KeyError:
            raise KeyError(f"photo {photo_id!r} not in database") from None

    def __contains__(self, photo_id: str) -> bool:
        return photo_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def search(self, label: int) -> List[str]:
        """Photo ids currently carrying ``label`` (the user query path)."""
        return sorted(self._label_index.get(label, ()))

    def history(self, photo_id: str) -> List[LabelRecord]:
        return list(self._history.get(photo_id, ()))

    # -- maintenance ------------------------------------------------------
    def outdated_ids(self, current_version: int) -> List[str]:
        """Photos whose label came from a model older than ``current_version``."""
        return sorted(
            pid for pid, rec in self._records.items()
            if rec.model_version < current_version
        )

    def ids_at(self, location: str) -> List[str]:
        return sorted(
            pid for pid, rec in self._records.items() if rec.location == location
        )

    def version_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for rec in self._records.values():
            counts[rec.model_version] = counts.get(rec.model_version, 0) + 1
        return counts

    def fraction_changed_since(self, baseline: Dict[str, int]) -> float:
        """Fraction of photos whose label differs from a baseline snapshot.

        This is Table 1's '% of labels fixed' metric.
        """
        if not baseline:
            raise ValueError("baseline snapshot is empty")
        changed = sum(
            1 for pid, old_label in baseline.items()
            if pid in self._records and self._records[pid].label != old_label
        )
        return changed / len(baseline)

    def snapshot_labels(self) -> Dict[str, int]:
        return {pid: rec.label for pid, rec in self._records.items()}
