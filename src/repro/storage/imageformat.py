"""Synthetic photo codec.

The paper's workload is 2.7 MB JPEGs plus 0.59 MB preprocessed fp32
binaries.  We cannot ship real photos, so this codec produces byte-accurate
stand-ins: a quantised, deflate-compressed pixel payload ("the JPEG") padded
to a configurable nominal size, and raw fp32 tensors ("the preprocessed
binary").  Decoding really decompresses and dequantises, so CPU work and
byte counts are genuine, just scaled to tiny images.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from ..fastpath import flags

_MAGIC = b"NDPJ"
_HEADER_FMT = ">4sBHHHI"  # magic, channels, height, width, pad_kb, payload_len


class CodecError(ValueError):
    """Raised when a blob does not parse as a synthetic photo."""


def encode_photo(pixels: np.ndarray, pad_to_bytes: int = 0,
                 quality_level: int = 6) -> bytes:
    """Encode float pixels in [0, 1] (C, H, W) into a synthetic JPEG.

    ``pad_to_bytes`` inflates the blob to the nominal photo size (the
    storage/network experiments care about real photo byte counts even
    though the pixel payload is tiny).
    """
    if pixels.ndim != 3:
        raise CodecError(f"expected (C, H, W) pixels, got shape {pixels.shape}")
    c, h, w = pixels.shape
    quantised = np.clip(pixels, 0.0, 1.0)
    payload = zlib.compress((quantised * 255).astype(np.uint8).tobytes(),
                            quality_level)
    header = struct.pack(_HEADER_FMT, _MAGIC, c, h, w, 0, len(payload))
    blob = header + payload
    if pad_to_bytes > len(blob):
        blob += b"\0" * (pad_to_bytes - len(blob))
    return blob


def decode_photo(blob: bytes) -> np.ndarray:
    """Decode a synthetic JPEG back to float pixels in [0, 1]."""
    header_size = struct.calcsize(_HEADER_FMT)
    if len(blob) < header_size:
        raise CodecError("blob too short for a photo header")
    magic, c, h, w, _pad, payload_len = struct.unpack(
        _HEADER_FMT, blob[:header_size]
    )
    if magic != _MAGIC:
        raise CodecError("bad photo magic")
    if flags().zero_copy:
        payload = memoryview(blob)[header_size:header_size + payload_len]
    else:
        payload = blob[header_size:header_size + payload_len]
    raw = zlib.decompress(payload)
    pixels = np.frombuffer(raw, dtype=np.uint8).astype(np.float64) / 255.0
    expected = c * h * w
    if pixels.size != expected:
        raise CodecError(f"payload has {pixels.size} pixels, expected {expected}")
    return pixels.reshape(c, h, w)


def preprocess(pixels: np.ndarray, mean: float = 0.5, std: float = 0.25) -> np.ndarray:
    """The DNN input transform: normalise decoded pixels to fp32."""
    return ((pixels - mean) / std).astype(np.float32)


def encode_preprocessed(tensor: np.ndarray) -> bytes:
    """Serialise a preprocessed fp32 tensor (the 0.59 MB binary)."""
    c, h, w = tensor.shape
    header = struct.pack(">4sBHH", b"NDPP", c, h, w)
    return header + tensor.astype(np.float32).tobytes()


def decode_preprocessed(blob: bytes) -> np.ndarray:
    header_size = struct.calcsize(">4sBHH")
    magic, c, h, w = struct.unpack(">4sBHH", blob[:header_size])
    if magic != b"NDPP":
        raise CodecError("bad preprocessed-binary magic")
    if flags().zero_copy:
        # read the payload in place; the .copy() (for writability) is the
        # only allocation instead of slice-copy + frombuffer + copy
        data = np.frombuffer(blob, dtype=np.float32, offset=header_size)
    else:
        data = np.frombuffer(blob[header_size:], dtype=np.float32)
    return data.reshape(c, h, w).copy()


def decode_preprocessed_into(blob: bytes, out: np.ndarray) -> None:
    """Decode one preprocessed binary directly into a preallocated slot.

    The batch-decode fast path fills rows of one ``(N, C, H, W)`` array
    with this, skipping the per-photo ``.copy()`` + ``np.stack`` of the
    scalar path.  Byte-for-byte the same values land in ``out``.
    """
    header_size = struct.calcsize(">4sBHH")
    magic, c, h, w = struct.unpack(">4sBHH", blob[:header_size])
    if magic != b"NDPP":
        raise CodecError("bad preprocessed-binary magic")
    if out.shape != (c, h, w):
        raise CodecError(
            f"output slot {out.shape} does not match payload {(c, h, w)}")
    data = np.frombuffer(blob, dtype=np.float32, offset=header_size)
    out[...] = data.reshape(c, h, w)


@dataclass(frozen=True)
class PhotoSizes:
    """Nominal byte sizes for the storage accounting experiments."""

    raw_bytes: int = 2_700_000
    preprocessed_bytes: int = 590_000

    @property
    def preprocessed_fraction(self) -> float:
        """Share of total storage taken by preprocessed binaries (§5.4)."""
        return self.preprocessed_bytes / (self.raw_bytes + self.preprocessed_bytes)
