"""Snapshot / restore for the storage substrate.

Production photo stores survive restarts; this module gives the in-memory
substrate the same property with explicit, versioned serialisation:

* :func:`dump_object_store` / :func:`load_object_store` — every object
  plus the volume's capacity accounting and per-object CRC32s,
  deflate-framed;
* :func:`dump_photo_database` / :func:`load_photo_database` — all current
  label records and their full version history.

Formats are self-describing (magic + version) and every frame ends in a
CRC32 trailer over everything before it, so a truncated, bit-flipped, or
otherwise damaged snapshot fails with :class:`SnapshotError` instead of
loading silently-wrong state.  Version 2 introduced the trailer and
per-object CRCs; version 1 snapshots (which carried no integrity data at
all) are rejected loudly rather than trusted.

Snapshots read through :meth:`ObjectStore.peek`, so taking one never
perturbs workload IO accounting (``bytes_read``).
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from typing import Tuple

from .compression import deflate, inflate
from .objectstore import ObjectStore, Volume
from .photodb import LabelRecord, PhotoDatabase

_STORE_MAGIC = b"NDPS"
_DB_MAGIC = b"NDPD"
#: v2: CRC32 frame trailers + per-object CRCs in store snapshots.  v1
#: frames carried no integrity data and are refused (see module docs).
_VERSION = 2


class SnapshotError(ValueError):
    """Raised on malformed or incompatible snapshot blobs."""


def _seal(frame: bytes) -> bytes:
    """Append the CRC32 trailer covering the whole frame."""
    return frame + struct.pack(">I", zlib.crc32(frame))


def _unseal(blob: bytes, what: str) -> bytes:
    """Verify and strip the CRC32 trailer; raise loudly on any damage."""
    if len(blob) < 4:
        raise SnapshotError(f"{what} snapshot too short for a CRC trailer")
    frame, (expected,) = blob[:-4], struct.unpack(">I", blob[-4:])
    if zlib.crc32(frame) != expected:
        raise SnapshotError(
            f"{what} snapshot failed its CRC32 trailer check — the blob "
            "is corrupt, truncated, or a pre-v2 snapshot"
        )
    return frame


def _check_version(version: int, what: str) -> None:
    if version == 1:
        raise SnapshotError(
            f"{what} snapshot is version 1, which predates integrity "
            "trailers and cannot be trusted; re-create it with this release"
        )
    if version != _VERSION:
        raise SnapshotError(f"unsupported {what} snapshot version {version}")


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------
def dump_object_store(store: ObjectStore) -> bytes:
    """Serialise a store (keys, blobs, CRCs, volume accounting) to one blob."""
    buffer = io.BytesIO()
    keys = store.keys()
    for key in keys:
        key_bytes = key.encode()
        blob = store.peek(key)
        buffer.write(struct.pack(">H", len(key_bytes)))
        buffer.write(key_bytes)
        buffer.write(struct.pack(">II", store.stored_crc(key), len(blob)))
        buffer.write(blob)
    header = struct.pack(
        ">4sBQI", _STORE_MAGIC, _VERSION, store.volume.capacity_bytes,
        len(keys),
    )
    return _seal(header + deflate(buffer.getvalue()))


def load_object_store(blob: bytes, name: str = "restored") -> ObjectStore:
    """Reconstruct an :class:`ObjectStore` from a snapshot blob."""
    header_size = struct.calcsize(">4sBQI")
    if len(blob) < header_size + 4:
        raise SnapshotError("snapshot too short")
    if blob[:4] != _STORE_MAGIC:
        raise SnapshotError("not an object-store snapshot")
    frame = _unseal(blob, "object-store")
    _magic, version, capacity, count = struct.unpack(
        ">4sBQI", frame[:header_size])
    _check_version(version, "object-store")
    try:
        body = inflate(frame[header_size:])
    except ValueError as exc:
        raise SnapshotError(f"corrupt object-store snapshot: {exc}") from exc
    store = ObjectStore(Volume(capacity_bytes=capacity), name=name)
    offset = 0
    try:
        for _ in range(count):
            (key_len,) = struct.unpack_from(">H", body, offset)
            offset += 2
            key = body[offset:offset + key_len].decode()
            offset += key_len
            crc, blob_len = struct.unpack_from(">II", body, offset)
            offset += 8
            if offset + blob_len > len(body):
                raise SnapshotError("object-store snapshot body truncated")
            store.restore_object(key, body[offset:offset + blob_len], crc)
            offset += blob_len
    except (struct.error, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"corrupt object-store snapshot: {exc}") from exc
    if offset != len(body):
        raise SnapshotError("trailing bytes in object-store snapshot")
    # restoration IO should not count as workload IO
    store.bytes_read = 0
    store.bytes_written = 0
    return store


# ---------------------------------------------------------------------------
# Photo database
# ---------------------------------------------------------------------------
def _record_to_dict(record: LabelRecord) -> dict:
    return {
        "photo_id": record.photo_id,
        "label": record.label,
        "model_version": record.model_version,
        "location": record.location,
        "confidence": record.confidence,
    }


def dump_photo_database(db: PhotoDatabase) -> bytes:
    """Serialise the label database, including per-photo history."""
    payload = {
        "version": _VERSION,
        "history": {
            photo_id: [_record_to_dict(r) for r in db.history(photo_id)]
            for photo_id in sorted(db.snapshot_labels())
        },
    }
    return _seal(_DB_MAGIC + deflate(json.dumps(payload).encode()))


def load_photo_database(blob: bytes) -> PhotoDatabase:
    """Reconstruct a :class:`PhotoDatabase`, replaying version history."""
    if not blob.startswith(_DB_MAGIC):
        raise SnapshotError("not a photo-database snapshot")
    frame = _unseal(blob, "photo-database")
    try:
        payload = json.loads(inflate(frame[len(_DB_MAGIC):]).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"corrupt database snapshot: {exc}") from exc
    _check_version(payload.get("version"), "photo-database")
    db = PhotoDatabase()
    for records in payload["history"].values():
        for rec in records:
            db.upsert(LabelRecord(
                photo_id=rec["photo_id"], label=rec["label"],
                model_version=rec["model_version"],
                location=rec["location"], confidence=rec["confidence"],
            ))
    return db


def snapshot_sizes(store: ObjectStore, db: PhotoDatabase) -> Tuple[int, int]:
    """(store snapshot bytes, db snapshot bytes) — capacity planning."""
    return len(dump_object_store(store)), len(dump_photo_database(db))
