"""Snapshot / restore for the storage substrate.

Production photo stores survive restarts; this module gives the in-memory
substrate the same property with explicit, versioned serialisation:

* :func:`dump_object_store` / :func:`load_object_store` — every object
  plus the volume's capacity accounting, deflate-framed;
* :func:`dump_photo_database` / :func:`load_photo_database` — all current
  label records and their full version history.

Formats are self-describing (magic + version) so incompatible snapshots
fail loudly instead of silently corrupting a store.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Tuple

from .compression import deflate, inflate
from .objectstore import ObjectStore, Volume
from .photodb import LabelRecord, PhotoDatabase

_STORE_MAGIC = b"NDPS"
_DB_MAGIC = b"NDPD"
_VERSION = 1


class SnapshotError(ValueError):
    """Raised on malformed or incompatible snapshot blobs."""


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------
def dump_object_store(store: ObjectStore) -> bytes:
    """Serialise a store (keys, blobs, volume accounting) to one blob."""
    buffer = io.BytesIO()
    keys = store.keys()
    for key in keys:
        key_bytes = key.encode()
        blob = store.get(key)
        buffer.write(struct.pack(">H", len(key_bytes)))
        buffer.write(key_bytes)
        buffer.write(struct.pack(">I", len(blob)))
        buffer.write(blob)
    header = struct.pack(
        ">4sBQI", _STORE_MAGIC, _VERSION, store.volume.capacity_bytes,
        len(keys),
    )
    return header + deflate(buffer.getvalue())


def load_object_store(blob: bytes, name: str = "restored") -> ObjectStore:
    """Reconstruct an :class:`ObjectStore` from a snapshot blob."""
    header_size = struct.calcsize(">4sBQI")
    if len(blob) < header_size:
        raise SnapshotError("snapshot too short")
    magic, version, capacity, count = struct.unpack(
        ">4sBQI", blob[:header_size])
    if magic != _STORE_MAGIC:
        raise SnapshotError("not an object-store snapshot")
    if version != _VERSION:
        raise SnapshotError(f"unsupported snapshot version {version}")
    body = inflate(blob[header_size:])
    store = ObjectStore(Volume(capacity_bytes=capacity), name=name)
    offset = 0
    for _ in range(count):
        (key_len,) = struct.unpack_from(">H", body, offset)
        offset += 2
        key = body[offset:offset + key_len].decode()
        offset += key_len
        (blob_len,) = struct.unpack_from(">I", body, offset)
        offset += 4
        store.put(key, body[offset:offset + blob_len])
        offset += blob_len
    if offset != len(body):
        raise SnapshotError("trailing bytes in object-store snapshot")
    # restoration IO should not count as workload IO
    store.bytes_read = 0
    store.bytes_written = 0
    return store


# ---------------------------------------------------------------------------
# Photo database
# ---------------------------------------------------------------------------
def _record_to_dict(record: LabelRecord) -> dict:
    return {
        "photo_id": record.photo_id,
        "label": record.label,
        "model_version": record.model_version,
        "location": record.location,
        "confidence": record.confidence,
    }


def dump_photo_database(db: PhotoDatabase) -> bytes:
    """Serialise the label database, including per-photo history."""
    payload = {
        "version": _VERSION,
        "history": {
            photo_id: [_record_to_dict(r) for r in db.history(photo_id)]
            for photo_id in sorted(db.snapshot_labels())
        },
    }
    return _DB_MAGIC + deflate(json.dumps(payload).encode())


def load_photo_database(blob: bytes) -> PhotoDatabase:
    """Reconstruct a :class:`PhotoDatabase`, replaying version history."""
    if not blob.startswith(_DB_MAGIC):
        raise SnapshotError("not a photo-database snapshot")
    try:
        payload = json.loads(inflate(blob[len(_DB_MAGIC):]).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"corrupt database snapshot: {exc}") from exc
    if payload.get("version") != _VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {payload.get('version')}")
    db = PhotoDatabase()
    for records in payload["history"].values():
        for rec in records:
            db.upsert(LabelRecord(
                photo_id=rec["photo_id"], label=rec["label"],
                model_version=rec["model_version"],
                location=rec["location"], confidence=rec["confidence"],
            ))
    return db


def snapshot_sizes(store: ObjectStore, db: PhotoDatabase) -> Tuple[int, int]:
    """(store snapshot bytes, db snapshot bytes) — capacity planning."""
    return len(dump_object_store(store)), len(dump_photo_database(db))
