"""Deflate compression helpers (§5.4: compressed preprocessed binaries).

The paper stores preprocessed image binaries deflate-compressed in
PipeStore to cut the 17.5 % storage overhead and reduce I/O time; this is
real ``zlib`` here, not a model.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..fastpath import flags

_HEADER = b"NDPZ"


def deflate(data: bytes, level: int = 6) -> bytes:
    """Compress raw bytes with deflate, framed with a magic header."""
    return _HEADER + zlib.compress(data, level)


def inflate(blob: bytes) -> bytes:
    """Decompress a :func:`deflate` frame."""
    if not blob.startswith(_HEADER):
        raise ValueError("not a deflate frame (bad magic)")
    if flags().zero_copy:
        # slice through a memoryview: no intermediate bytes copy of the
        # compressed payload before zlib reads it
        return zlib.decompress(memoryview(blob)[len(_HEADER):])
    return zlib.decompress(blob[len(_HEADER):])


def compression_ratio(raw: bytes, compressed: bytes) -> float:
    if len(compressed) == 0:
        raise ValueError("compressed payload is empty")
    return len(raw) / len(compressed)


def compress_array(array: np.ndarray, level: int = 6) -> bytes:
    """Deflate a numpy array with enough framing to reconstruct it."""
    header = f"{array.dtype.str}|{','.join(map(str, array.shape))}|".encode()
    return deflate(header + array.tobytes(), level=level)


def decompress_array(blob: bytes) -> np.ndarray:
    raw = inflate(blob)
    dtype_end = raw.index(b"|")
    shape_end = raw.index(b"|", dtype_end + 1)
    dtype = np.dtype(raw[:dtype_end].decode())
    shape_text = raw[dtype_end + 1:shape_end].decode()
    shape = tuple(int(x) for x in shape_text.split(",")) if shape_text else ()
    if flags().zero_copy:
        # frombuffer(offset=...) reads in place; the single .copy() below
        # (needed for a writable result) is the only payload copy
        array = np.frombuffer(raw, dtype=dtype, offset=shape_end + 1)
        return array.reshape(shape).copy()
    return np.frombuffer(raw[shape_end + 1:], dtype=dtype).reshape(shape).copy()
