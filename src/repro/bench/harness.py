"""Unified perf-trajectory harness: one lifecycle, four BENCH files.

The per-figure benchmarks regenerate paper tables; this harness answers
a different question — *is the implementation getting faster or slower
across PRs?*  It runs the seeded end-to-end scenarios the paper's
systems story is built on and records each one in the shared
:mod:`repro.obs.benchjson` schema (v2, with per-metric gate
directions):

* ``BENCH_ingest``   — upload-path throughput: preprocess + classify +
  store ``scale.photos`` drift-world photos on a tiny cluster;
* ``BENCH_finetune`` — FT-DMP rounds: feature extraction on the stores
  plus classifier training and delta distribution from the Tuner;
* ``BENCH_relabel``  — offline NPE relabel sweeps over every stored
  photo;
* ``BENCH_serving``  — the adaptive-vs-batch=1 serving comparison
  (shared with ``benchmarks/bench_serving.py`` so the two writers can
  never disagree; its clock is logical, so its numbers are
  deterministic).

Every scenario reports ops/s, p50/p99 latency, bytes moved, and wall
time.  Counters and byte totals are deterministic for a given seed and
scale and carry ``direction: exact``.  Raw wall-clock numbers are
recorded but *informational* — absolute seconds don't transfer across
machines and are too noisy at smoke scale to gate on.  What the gate
(:mod:`repro.bench.gate`) compares instead is the **calibrated** speed
factor: a fixed numpy reference workload (:func:`machine_calibration_s`)
is timed in a snip immediately adjacent to *every* timed sample, and
throughput is expressed as work per calibration unit using the median
of the per-sample paired ratios.  Pairing matters — on a shared
machine the absolute speed drifts between processes and even between
seconds, but two measurements taken back-to-back sit in the same load
regime, so their ratio is stable where a globally-calibrated number is
not.  Calibrated ratios are also machine-portable, so a baseline
blessed on one host gates a run on another.  All timing goes through
:func:`repro.obs.tracing.wall_clock`, the one sanctioned wall-clock
seam (ND001).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cluster import NDPipeCluster
from ..core.config import ClusterConfig
from ..data.drift import DriftingPhotoWorld, WorldConfig
from ..models.registry import tiny_model
from ..obs.benchjson import BenchResult, bench_payload, write_bench_json
from ..obs.tracing import wall_clock
from ..placement.bench import SHARDING_BENCH_DEFAULTS, run_sharding_bench
from ..serving.bench import (
    BENCH_DEFAULTS,
    STREAM_BENCH_DEFAULTS,
    run_serving_comparison,
    run_streaming_bench,
)

__all__ = [
    "HarnessScale", "SCALES", "SCENARIOS",
    "run_harness", "bless_harness", "write_results", "serving_payload",
    "serving_stream_payload", "sharding_payload", "machine_calibration_s",
]

HIGHER = "higher_is_better"
LOWER = "lower_is_better"
EXACT = "exact"


def _calibration_snip() -> float:
    """One timed run of the fixed reference workload.

    A small, BLAS-plus-elementwise numpy loop shaped like the hot paths
    the harness times (GEMM + transcendental + reduction).
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((96, 96))
    b = rng.standard_normal((96, 96))
    t0 = wall_clock()
    acc = a
    for _ in range(32):
        acc = np.tanh(acc @ b)
        acc = acc - acc.mean(axis=0)
    float(acc.sum())
    return wall_clock() - t0


def machine_calibration_s(reps: int = 5) -> float:
    """Seconds this machine takes for the fixed reference workload.

    Taking the *minimum* over ``reps`` snips gives a low-noise measure
    of machine speed; dividing measured times by it yields
    machine-portable numbers.
    """
    return min(_calibration_snip() for _ in range(reps))


class _PairedClock:
    """Times samples with a calibration snip adjacent to each one.

    ``cals[i]`` is the best reference-workload time measured in the
    windows immediately before and after sample ``i`` — the machine's
    momentary speed while that sample ran.  Gating on the ratio of the
    two cancels load drift that a single global calibration cannot.
    """

    def __init__(self) -> None:
        self._snips: List[float] = [_calibration_snip()]
        self.samples: List[float] = []

    def time(self, fn):
        t0 = wall_clock()
        out = fn()
        self.samples.append(wall_clock() - t0)
        self._snips.append(_calibration_snip())
        return out

    @property
    def cals(self) -> List[float]:
        return [min(self._snips[i], self._snips[i + 1])
                for i in range(len(self.samples))]


@dataclass(frozen=True)
class HarnessScale:
    """How big one harness run is; recorded in every payload's config."""

    name: str
    #: PipeStore fleet size
    stores: int
    #: photos ingested (and later relabelled)
    photos: int
    #: drift-world image edge length
    image_size: int
    #: ingest latency samples (the upload stream is split into this
    #: many timed chunks)
    chunks: int
    #: Tuner epochs per fine-tune round
    epochs: int
    #: timed fine-tune rounds (each continues training the same tuner)
    finetune_repeats: int
    #: timed full-relabel sweeps
    relabel_repeats: int


SCALES: Dict[str, HarnessScale] = {
    "smoke": HarnessScale("smoke", stores=2, photos=48, image_size=16,
                          chunks=8, epochs=1, finetune_repeats=4,
                          relabel_repeats=6),
    "fast": HarnessScale("fast", stores=3, photos=144, image_size=16,
                         chunks=12, epochs=2, finetune_repeats=3,
                         relabel_repeats=3),
    "paper": HarnessScale("paper", stores=4, photos=480, image_size=16,
                          chunks=20, epochs=2, finetune_repeats=5,
                          relabel_repeats=4),
}

SCENARIOS = ("ingest", "finetune", "relabel", "serving", "serving_stream",
             "sharding")


def _percentile(samples: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def _scenario_results(prefix: str, samples: Sequence[float],
                      cals: Sequence[float], ops_unit: str,
                      work_per_sample: float, wall_s: float, cal_s: float,
                      bytes_moved: int, work: int,
                      work_unit: str) -> List[BenchResult]:
    """One lifecycle scenario's report.

    ``samples`` are per-unit wall times (one per chunk / round /
    sweep), each covering ``work_per_sample`` ops; ``cals[i]`` is the
    paired calibration time for sample ``i``.  Raw seconds are
    informational; the gated timing number is the calibrated speed
    factor — the *median* of the per-sample ``work_per_sample *
    cal/sample`` ratios, each ratio taken inside one load window so
    machine-level drift divides out.  (The best ratio is tempting but
    wrong: sample and snip noise are imperfectly correlated, so the
    extreme windows are the most *mismatched* ones.)  The calibrated
    p50 is reported but not gated: some scenarios have only a handful
    of samples, so their median latency wobbles where the paired
    ratios do not.
    """
    p50 = _percentile(samples, 50)
    factors = [work_per_sample * c / s for s, c in zip(samples, cals)]
    return [
        BenchResult(f"{prefix}_ops_per_s", work / wall_s, ops_unit),
        BenchResult(f"{prefix}_p50_latency_s", p50, "s"),
        BenchResult(f"{prefix}_p99_latency_s", _percentile(samples, 99), "s"),
        BenchResult(f"{prefix}_wall_s", wall_s, "s"),
        BenchResult(f"{prefix}_speed_factor", _percentile(factors, 50),
                    "ops/cal", direction=HIGHER),
        BenchResult(f"{prefix}_p50_latency_cal", p50 / cal_s, "cal"),
        BenchResult(f"{prefix}_bytes_moved", bytes_moved, "bytes",
                    direction=EXACT),
        BenchResult(f"{prefix}_work", work, work_unit, direction=EXACT),
        BenchResult("machine_calibration_s", cal_s, "s"),
    ]


def _scale_config(scale: HarnessScale, seed: int) -> Dict:
    config = {f"scale_{k}": v for k, v in asdict(scale).items()
              if k != "name"}
    config["scale"] = scale.name
    config["seed"] = seed
    return config


def _build_cluster(scale: HarnessScale, seed: int) -> NDPipeCluster:
    return NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=scale.stores, nominal_raw_bytes=8192,
                      batch_size=32, seed=seed),
    )


def _sample_world(scale: HarnessScale, seed: int):
    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=scale.image_size,
        noise=0.3, seed=seed,
    ))
    return world.sample(scale.photos, 0, rng=np.random.default_rng(seed + 1))


def _run_lifecycle(scale: HarnessScale, seed: int,
                   scenarios: Iterable[str]) -> Dict[str, Dict]:
    """Ingest -> finetune -> relabel on one cluster, timing each stage.

    Earlier stages always run (a fine-tune needs ingested photos) but
    are only *recorded* when requested.
    """
    wanted = set(scenarios)
    payloads: Dict[str, Dict] = {}
    _warmup(seed)
    cal_s = machine_calibration_s()
    cluster = _build_cluster(scale, seed)
    x, y = _sample_world(scale, seed)
    config = _scale_config(scale, seed)

    # -- ingest: the upload stream, split into timed chunks ---------------
    chunk = max(1, scale.photos // scale.chunks)
    clock = _PairedClock()
    sizes: List[int] = []
    start = wall_clock()
    for lo in range(0, len(x), chunk):
        hi = min(lo + chunk, len(x))
        clock.time(lambda lo=lo, hi=hi: cluster.ingest(
            x[lo:hi], train_labels=y[lo:hi]))
        sizes.append(hi - lo)
    ingest_wall = wall_clock() - start
    per_photo = [s / n for s, n in zip(clock.samples, sizes)]
    ingest_bytes = sum(cluster.traffic_summary().values())
    if "ingest" in wanted:
        payloads["BENCH_ingest"] = bench_payload(
            "BENCH_ingest",
            _scenario_results(
                "ingest", per_photo, clock.cals, "photos/s", 1.0,
                ingest_wall, cal_s, ingest_bytes, len(cluster.database),
                "photos"),
            config=config,
        )

    # -- finetune: repeated FT-DMP rounds on the ingested corpus ----------
    clock = _PairedClock()
    traffic_before = sum(cluster.traffic_summary().values())
    images = 0
    start = wall_clock()
    for _ in range(scale.finetune_repeats):
        report = clock.time(lambda: cluster.finetune(epochs=scale.epochs))
        images += report.images_extracted
    finetune_wall = wall_clock() - start
    finetune_bytes = sum(cluster.traffic_summary().values()) - traffic_before
    if "finetune" in wanted:
        payloads["BENCH_finetune"] = bench_payload(
            "BENCH_finetune",
            _scenario_results(
                "finetune", clock.samples, clock.cals, "images/s",
                images / scale.finetune_repeats, finetune_wall, cal_s,
                finetune_bytes, images, "images"),
            config=config,
        )

    # -- relabel: full offline NPE sweeps over every stored photo ---------
    clock = _PairedClock()
    traffic_before = sum(cluster.traffic_summary().values())
    photos = 0
    start = wall_clock()
    for _ in range(scale.relabel_repeats):
        stats = clock.time(
            lambda: cluster.offline_relabel(only_outdated=False))
        photos += stats.photos_processed
    relabel_wall = wall_clock() - start
    relabel_bytes = sum(cluster.traffic_summary().values()) - traffic_before
    if "relabel" in wanted:
        payloads["BENCH_relabel"] = bench_payload(
            "BENCH_relabel",
            _scenario_results(
                "relabel", clock.samples, clock.cals, "photos/s",
                photos / scale.relabel_repeats, relabel_wall, cal_s,
                relabel_bytes, photos, "photos"),
            config=config,
        )
    return payloads


def _warmup(seed: int) -> None:
    """One tiny untimed lifecycle so BLAS/code caches are hot."""
    scale = HarnessScale("warmup", stores=1, photos=8, image_size=16,
                         chunks=1, epochs=1, finetune_repeats=1,
                         relabel_repeats=1)
    cluster = _build_cluster(scale, seed)
    x, y = _sample_world(scale, seed)
    cluster.ingest(x, train_labels=y)
    cluster.finetune(epochs=1)
    cluster.offline_relabel(only_outdated=False)


def serving_payload(result: Dict) -> Dict:
    """The canonical BENCH_serving payload for one comparison result.

    Shared by the harness and ``benchmarks/bench_serving.py`` so the
    recorded trajectory cannot drift between the two writers.  The
    serving bench runs on a logical clock, so every number here is
    deterministic and the trace always runs at the fixed
    :data:`~repro.serving.bench.BENCH_DEFAULTS` size regardless of the
    harness scale.
    """
    rows: List[BenchResult] = []
    for name in ("adaptive", "baseline"):
        r = result[name]
        rows += [
            BenchResult("serving_throughput_rps", r["throughput_rps"],
                        "requests/s", {"frontend": name}, direction=HIGHER),
            BenchResult("serving_p50_latency_s", r["p50_latency_s"], "s",
                        {"frontend": name}, direction=LOWER),
            BenchResult("serving_p99_latency_s", r["p99_latency_s"], "s",
                        {"frontend": name}, direction=LOWER),
            BenchResult("serving_completed", r["completed"], "requests",
                        {"frontend": name}, direction=HIGHER),
            BenchResult("serving_shed", sum(r["shed"].values()), "requests",
                        {"frontend": name}, direction=LOWER),
            BenchResult("serving_mean_batch", r["mean_batch"], "images",
                        {"frontend": name}),
        ]
    adaptive = result["adaptive"]
    rows += [
        BenchResult("serving_speedup", result["speedup"], "x",
                    direction=HIGHER),
        BenchResult("serving_cache_hits", adaptive["cache_hits"], "lookups",
                    {"frontend": "adaptive"}, direction=HIGHER),
        BenchResult("serving_cache_misses", adaptive["cache_misses"],
                    "lookups", {"frontend": "adaptive"}, direction=LOWER),
    ]
    return bench_payload("BENCH_serving", rows, config={
        **BENCH_DEFAULTS,
        "seed": result["seed"],
        "latency_budget_s": result["latency_budget_s"],
        "model": result["config"]["model"],
        "accelerator": result["config"]["accelerator"],
        "replicas": result["config"]["replicas"],
        # accounting fix (PR 7): makespan is the last batch's completion
        # time, not its start time — throughput_rps dropped accordingly
        "makespan_accounting": "t_done",
    })


def serving_stream_payload(result: Dict) -> Dict:
    """The canonical BENCH_serving_stream payload for one streaming run.

    Shared by the harness and ``benchmarks/bench_serving_stream.py``.
    The streaming bench runs entirely on the logical clock, so *every*
    number is deterministic: counters gate ``exact`` (including the
    ``queue_full == 0`` protocol guarantee), rates and latencies gate
    directionally.
    """
    s = result["streaming"]
    sync = result["sync"]
    rows: List[BenchResult] = [
        BenchResult("stream_throughput_rps", s["throughput_rps"],
                    "requests/s", direction=HIGHER),
        BenchResult("stream_p50_latency_s", s["p50_latency_s"], "s",
                    direction=LOWER),
        BenchResult("stream_p99_latency_s", s["p99_latency_s"], "s",
                    direction=LOWER),
        BenchResult("stream_p99_credit_wait_s", s["p99_credit_wait_s"], "s",
                    direction=LOWER),
        BenchResult("stream_completed", s["completed"], "requests",
                    direction=EXACT),
        BenchResult("stream_cancelled", s["cancelled"], "requests",
                    direction=EXACT),
        BenchResult("stream_expired", s["expired"], "requests",
                    direction=EXACT),
        # the protocol guarantee the gate pins at zero forever
        BenchResult("stream_queue_full", s["queue_full"], "requests",
                    direction=EXACT),
        BenchResult("stream_out_of_order", s["out_of_order"], "completions",
                    direction=EXACT),
        BenchResult("stream_redispatches", s["redispatches"], "requests",
                    direction=EXACT),
        BenchResult("stream_scale_ups", s["scale_ups"], "events",
                    direction=EXACT),
        BenchResult("stream_scale_downs", s["scale_downs"], "events",
                    direction=EXACT),
        BenchResult("stream_peak_replicas", s["peak_replicas"], "replicas",
                    direction=EXACT),
        BenchResult("stream_mean_batch", s["mean_batch"], "images"),
        # the synchronous PR 5 front end on the same trace: it must shed
        # where the credit window merely delays
        BenchResult("sync_completed", sync["completed"], "requests",
                    direction=EXACT),
        BenchResult("sync_queue_full", sync["shed"]["queue_full"],
                    "requests", direction=EXACT),
        BenchResult("sync_throughput_rps", sync["throughput_rps"],
                    "requests/s"),
    ]
    return bench_payload("BENCH_serving_stream", rows, config={
        **{k: STREAM_BENCH_DEFAULTS[k]
           for k in ("num_requests", "pool_size", "skew", "base_rps",
                     "flash_rps", "flash_start_s", "flash_duration_s")},
        "seed": result["seed"],
        "trace": result["trace"],
        "latency_budget_s": result["latency_budget_s"],
        "model": result["config"]["model"],
        "accelerator": result["config"]["accelerator"],
        "replicas": result["config"]["replicas"],
        "credits": result["stream_config"]["credits"],
        "min_replicas": result["stream_config"]["min_replicas"],
        "max_replicas": result["stream_config"]["max_replicas"],
    })


def sharding_payload(result: Dict) -> Dict:
    """The canonical BENCH_sharding payload for one sharding-bench run.

    Shared by the harness, ``repro shard-bench``, and
    ``benchmarks/bench_sharding.py``.  Every headline is a deterministic
    integer counter for a given seed, so the gate pins them ``exact``:
    the ring's join/leave movement, the quota ledger's admission split,
    both distribution strategies' Tuner-egress bytes (fan-out strictly
    below unicast at equal freshness), and the migration ledger's
    moved/received/inflight books.  Wall-clock placement throughput is
    recorded but informational.
    """
    placement = result["placement"]
    fanout = result["fanout"]
    migration = result["migration"]
    rows: List[BenchResult] = [
        BenchResult("shard_keys_placed", placement["keys"], "keys",
                    direction=EXACT),
        BenchResult("shard_keys_per_s", placement["keys_per_s"], "keys/s"),
        BenchResult("shard_spread_max_over_mean",
                    placement["spread_max_over_mean"], "x",
                    direction=LOWER),
        BenchResult("shard_join_keys_moved", placement["join"]["moved"],
                    "keys", direction=EXACT),
        BenchResult("shard_join_moved_fraction",
                    placement["join"]["fraction"], "fraction",
                    direction=LOWER),
        BenchResult("shard_leave_keys_moved", placement["leave"]["moved"],
                    "keys", direction=EXACT),
        # movement clean-ness: every re-homed key landed on the newcomer
        BenchResult("shard_join_all_to_new",
                    int(placement["join"]["all_to_new_shard"]), "bool",
                    direction=EXACT),
    ]
    for tenant, a in sorted(placement["admission"].items()):
        rows += [
            BenchResult("tenant_admitted", a["admitted"], "uploads",
                        {"tenant": tenant}, direction=EXACT),
            BenchResult("tenant_rejected", a["rejected"], "uploads",
                        {"tenant": tenant}, direction=EXACT),
        ]
    rows += [
        BenchResult("fanout_tuner_egress_bytes",
                    fanout["fanout"]["tuner_egress_bytes"], "bytes",
                    {"strategy": "fanout"}, direction=EXACT),
        BenchResult("fanout_tuner_egress_bytes",
                    fanout["unicast"]["tuner_egress_bytes"], "bytes",
                    {"strategy": "unicast"}, direction=EXACT),
        BenchResult("fanout_egress_saving_bytes",
                    fanout["egress_saving_bytes"], "bytes",
                    direction=EXACT),
        BenchResult("fanout_freshness_equal",
                    int(fanout["freshness_equal"]), "bool",
                    direction=EXACT),
        BenchResult("fanout_relayed", fanout["fanout"]["relayed"],
                    "sends", direction=EXACT),
        BenchResult("shard_objects_moved",
                    migration["ledger"]["objects_moved"], "objects",
                    direction=EXACT),
        BenchResult("shard_objects_received",
                    migration["ledger"]["objects_received"], "objects",
                    direction=EXACT),
        BenchResult("shard_objects_inflight",
                    migration["ledger"]["objects_inflight"], "objects",
                    direction=EXACT),
        BenchResult("shard_rebalance_bytes",
                    migration["rebalance_bytes"], "bytes",
                    direction=EXACT),
        BenchResult("shard_join_within_bound",
                    int(migration["within_bound"]), "bool",
                    direction=EXACT),
        BenchResult("shard_unrecoverable", migration["unrecoverable"],
                    "photos", direction=EXACT),
    ]
    return bench_payload("BENCH_sharding", rows, config={
        **{k: v for k, v in SHARDING_BENCH_DEFAULTS.items()
           if k != "tenants"},
        "tenants": ",".join(sorted(SHARDING_BENCH_DEFAULTS["tenants"])),
        "seed": result["seed"],
    })


def run_harness(scale: HarnessScale, seed: int = 0,
                scenarios: Optional[Iterable[str]] = None) -> Dict[str, Dict]:
    """Run the requested scenarios; returns ``{bench_name: payload}``."""
    wanted = tuple(scenarios) if scenarios is not None else SCENARIOS
    unknown = sorted(set(wanted) - set(SCENARIOS))
    if unknown:
        raise ValueError(f"unknown scenarios {unknown}; pick from {SCENARIOS}")
    payloads: Dict[str, Dict] = {}
    lifecycle = [s for s in wanted
                 if s not in ("serving", "serving_stream", "sharding")]
    if lifecycle:
        payloads.update(_run_lifecycle(scale, seed, lifecycle))
    if "serving" in wanted:
        payloads["BENCH_serving"] = serving_payload(
            run_serving_comparison(seed=seed))
    if "serving_stream" in wanted:
        payloads["BENCH_serving_stream"] = serving_stream_payload(
            run_streaming_bench(seed=seed))
    if "sharding" in wanted:
        payloads["BENCH_sharding"] = sharding_payload(
            run_sharding_bench(seed=seed))
    return payloads


def bless_harness(scale: HarnessScale, seed: int = 0,
                  scenarios: Optional[Iterable[str]] = None,
                  reps: int = 3) -> Dict[str, Dict]:
    """Run the harness ``reps`` times and record per-metric medians.

    A single run's timing sits somewhere inside its noise band; if a
    baseline is blessed at one extreme, a later check at the other
    extreme can exceed the tolerance without any real regression.
    Blessing the *median of several runs* centres the baseline, so a
    check only fails when it drifts more than the tolerance from the
    middle of the distribution.  Deterministic scenarios (serving, and
    every ``exact`` counter) are identical across reps, so the median
    is a no-op for them.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    runs = [run_harness(scale, seed=seed, scenarios=scenarios)
            for _ in range(reps)]
    merged: Dict[str, Dict] = {}
    for bench, payload in runs[0].items():
        entries = []
        for i, entry in enumerate(payload["results"]):
            siblings = [run[bench]["results"][i] for run in runs]
            keys = {(e["metric"], tuple(sorted(e.get("labels", {}).items())))
                    for e in siblings}
            if len(keys) != 1:
                raise RuntimeError(
                    f"harness runs disagree on result order at {bench}[{i}]")
            vals = [e["value"] for e in siblings]
            if all(v == vals[0] for v in vals):  # deterministic: keep type
                entries.append(dict(entry))
            else:
                entries.append({**entry, "value": float(np.median(vals))})
        merged[bench] = {**payload, "results": entries}
    return merged


def write_results(payloads: Dict[str, Dict],
                  directory) -> List[Tuple[str, Path]]:
    """Persist each payload as ``<directory>/<bench>.json``."""
    written = []
    for bench, payload in sorted(payloads.items()):
        results = [
            BenchResult(
                metric=e["metric"], value=e["value"], unit=e["unit"],
                labels=dict(e.get("labels", {})),
                direction=e.get("direction"),
            )
            for e in payload["results"]
        ]
        path = write_bench_json(directory, bench, results,
                                config=payload["config"])
        written.append((bench, path))
    return written
