"""Perf regression gate: fresh harness results vs committed baselines.

The committed ``benchmarks/results/BENCH_*.json`` files are the perf
trajectory of record.  ``repro perf --check`` reruns the harness, then
this module compares every metric against its baseline according to
the per-result ``direction`` recorded in the schema:

* ``higher_is_better`` — fail if ``new < old * (1 - tolerance)``;
* ``lower_is_better``  — fail if ``new > old * (1 + tolerance)``;
* ``exact``            — fail on any difference (used for byte counts
  and work counters, which are deterministic for a given seed+scale);
* no direction         — informational: presence is checked, value is
  never failed on.

A metric present in the baseline but missing from the fresh run fails
(the harness lost coverage); a metric present only in the fresh run
fails too (the baseline is stale — rerun ``repro perf --bless``).
Config mismatches — different scale, seed, or scenario parameters —
raise :class:`GateError` instead of producing findings, because
comparing runs of different sizes would be meaningless, not merely a
regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.benchjson import DIRECTIONS, load_bench_payload

__all__ = ["GateError", "GateFinding", "compare_payloads",
           "gate_directories", "render_findings"]

DEFAULT_TOLERANCE = 0.15


class GateError(RuntimeError):
    """The comparison itself is invalid (not a perf regression)."""


@dataclass(frozen=True)
class GateFinding:
    """One metric's verdict against its baseline."""

    bench: str
    metric: str
    labels: Tuple[Tuple[str, str], ...]
    direction: Optional[str]
    baseline: Optional[float]
    current: Optional[float]
    #: ok | regression | mismatch | missing | unexpected
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def label_text(self) -> str:
        return ",".join(f"{k}={v}" for k, v in self.labels) or "-"


def _index(payload: Dict) -> Dict[Tuple, Dict]:
    out = {}
    for entry in payload["results"]:
        key = (entry["metric"],
               tuple(sorted(entry.get("labels", {}).items())))
        if key in out:
            raise GateError(
                f"{payload['bench']}: duplicate metric {key[0]!r} "
                f"with labels {dict(key[1])}"
            )
        out[key] = entry
    return out


def _compare_entry(bench: str, key: Tuple, old: Dict, new: Dict,
                   tolerance: float) -> GateFinding:
    metric, labels = key
    direction = old.get("direction")
    if direction not in (None,) + DIRECTIONS:
        raise GateError(f"{bench}: baseline {metric} has unknown "
                        f"direction {direction!r}")
    if new.get("direction") != direction:
        raise GateError(
            f"{bench}: {metric} changed direction "
            f"({direction!r} -> {new.get('direction')!r}); re-bless the "
            "baseline if this is intentional"
        )
    old_v, new_v = old["value"], new["value"]
    common = dict(bench=bench, metric=metric, labels=labels,
                  direction=direction, baseline=old_v, current=new_v)
    if direction == "exact":
        if old_v != new_v:
            return GateFinding(status="mismatch",
                               detail=f"expected exactly {old_v}", **common)
    elif direction == "higher_is_better":
        if new_v < old_v * (1.0 - tolerance):
            return GateFinding(
                status="regression",
                detail=f"dropped {_pct(old_v, new_v)} (tolerance "
                       f"{tolerance:.0%})", **common)
    elif direction == "lower_is_better":
        if new_v > old_v * (1.0 + tolerance):
            return GateFinding(
                status="regression",
                detail=f"rose {_pct(old_v, new_v)} (tolerance "
                       f"{tolerance:.0%})", **common)
    return GateFinding(status="ok", **common)


def _pct(old: float, new: float) -> str:
    if old == 0:
        return f"from 0 to {new:g}"
    return f"{abs(new - old) / abs(old):.1%}"


def compare_payloads(baseline: Dict, current: Dict,
                     tolerance: float = DEFAULT_TOLERANCE,
                     ) -> List[GateFinding]:
    """Compare one fresh payload against its committed baseline."""
    if baseline["bench"] != current["bench"]:
        raise GateError(f"bench name mismatch: baseline "
                        f"{baseline['bench']!r} vs {current['bench']!r}")
    bench = baseline["bench"]
    if baseline.get("config") != current.get("config"):
        raise GateError(
            f"{bench}: config mismatch (baseline "
            f"{baseline.get('config')} vs current {current.get('config')}); "
            "runs at different scales/seeds are not comparable — rerun at "
            "the baseline scale or re-bless"
        )
    old_idx, new_idx = _index(baseline), _index(current)
    findings = []
    for key, old in old_idx.items():
        if key not in new_idx:
            findings.append(GateFinding(
                bench=bench, metric=key[0], labels=key[1],
                direction=old.get("direction"), baseline=old["value"],
                current=None, status="missing",
                detail="metric vanished from the fresh run"))
            continue
        findings.append(_compare_entry(bench, key, old, new_idx[key],
                                       tolerance))
    for key, new in new_idx.items():
        if key not in old_idx:
            findings.append(GateFinding(
                bench=bench, metric=key[0], labels=key[1],
                direction=new.get("direction"), baseline=None,
                current=new["value"], status="unexpected",
                detail="not in the baseline — rerun 'repro perf --bless'"))
    return findings


def gate_directories(baseline_dir: Union[str, Path],
                     current_dir: Union[str, Path],
                     benches: Sequence[str],
                     tolerance: float = DEFAULT_TOLERANCE,
                     ) -> List[GateFinding]:
    """Gate every named bench file in ``current_dir`` against baselines."""
    baseline_dir, current_dir = Path(baseline_dir), Path(current_dir)
    findings: List[GateFinding] = []
    for bench in benches:
        baseline_path = baseline_dir / f"{bench}.json"
        current_path = current_dir / f"{bench}.json"
        if not baseline_path.exists():
            raise GateError(
                f"no committed baseline {baseline_path} — record one with "
                "'repro perf --bless'"
            )
        if not current_path.exists():
            raise GateError(f"fresh results missing {current_path}")
        findings += compare_payloads(load_bench_payload(baseline_path),
                                     load_bench_payload(current_path),
                                     tolerance)
    return findings


def render_findings(findings: Sequence[GateFinding]) -> str:
    """Human-readable gate report (one row per metric)."""
    from ..analysis.tables import format_table

    bad = [f for f in findings if not f.ok]
    rows = [
        [f.bench, f.metric, f.label_text, f.direction or "info",
         "-" if f.baseline is None else f"{f.baseline:g}",
         "-" if f.current is None else f"{f.current:g}",
         f.status + (f" ({f.detail})" if f.detail else "")]
        for f in findings if not f.ok
    ] or [["-", "-", "-", "-", "-", "-", "all within tolerance"]]
    title = (f"perf gate: {len(findings) - len(bad)}/{len(findings)} "
             f"metrics ok, {len(bad)} failing")
    return format_table(
        ["bench", "metric", "labels", "direction", "baseline", "current",
         "verdict"],
        rows, title=title,
    )
