"""Perf-trajectory harness and regression gate (``repro perf``).

:mod:`~repro.bench.harness` runs the seeded ingest / finetune /
relabel / serving scenarios and records ``BENCH_*.json`` files in the
schema-v2 benchjson format; :mod:`~repro.bench.gate` compares a fresh
run against the committed baselines in ``benchmarks/results/`` and
fails on regressions beyond tolerance.
"""

from .gate import (
    DEFAULT_TOLERANCE,
    GateError,
    GateFinding,
    compare_payloads,
    gate_directories,
    render_findings,
)
from .harness import (
    SCALES,
    SCENARIOS,
    HarnessScale,
    bless_harness,
    run_harness,
    serving_payload,
    serving_stream_payload,
    write_results,
)

__all__ = [
    "HarnessScale", "SCALES", "SCENARIOS",
    "run_harness", "bless_harness", "serving_payload",
    "serving_stream_payload", "write_results",
    "GateError", "GateFinding", "DEFAULT_TOLERANCE",
    "compare_payloads", "gate_directories", "render_findings",
]
