"""Streaming serving protocol: credits, statuses, outcomes, report.

The streaming front end replaces the synchronous request/response loop
with a request-id'd protocol.  Every client submission moves through a
small state machine::

    backlog -> pending -> inflight -> completed
        \\         \\          \\-----> cancelled   (cancel latched in flight)
         \\         \\--------------> cancelled | expired
          \\-----------------------> cancelled

``backlog`` holds submissions waiting for a send credit (client side),
``pending`` holds credited requests queued at the server, ``inflight``
requests ride a dispatched micro-batch.  Terminal states are exactly
``completed``, ``cancelled``, ``expired`` — there is no shed path, so
conservation reads ``offered == completed + cancelled + expired``.

Backpressure is a fixed credit window: the invariant checked on every
transition is ``granted == in_flight + available``.  A client may only
submit while it holds a credit; credits replenish when the server
resolves the request, so overload degrades to *delay* (backlog wait)
rather than drops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..lint.contracts import conserves

__all__ = [
    "COMPLETED",
    "CANCELLED",
    "EXPIRED",
    "TERMINAL_STATUSES",
    "CreditWindow",
    "StreamOutcome",
    "StreamingReport",
    "exact_percentile",
]

COMPLETED = "completed"
CANCELLED = "cancelled"
EXPIRED = "expired"
TERMINAL_STATUSES = (COMPLETED, CANCELLED, EXPIRED)


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Exact order-statistic percentile (no interpolation) so reported
    tails are deterministic for a deterministic trace."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


@conserves("granted == in_flight + available")
class CreditWindow:
    """Fixed-size send-credit window with a checked conservation law.

    ``granted`` credits exist for the lifetime of the window; at any
    instant each one is either ``available`` to the client or pinned to
    an ``in_flight`` request (pending or dispatched).  Every transition
    re-checks ``granted == in_flight + available`` and raises if the
    books ever disagree — a lost or double-spent credit is a protocol
    bug, not a tolerable drift.
    """

    def __init__(self, granted: int):
        if granted < 1:
            raise ValueError(f"granted credits must be >= 1, got {granted}")
        self.granted = int(granted)
        self.available = int(granted)
        self.in_flight = 0

    def acquire(self) -> bool:
        """Take one credit; ``False`` (no side effect) when exhausted."""
        if self.available == 0:
            self.check()
            return False
        self.available -= 1
        self.in_flight += 1
        self.check()
        return True

    def release(self) -> None:
        """Return one credit on request resolution."""
        if self.in_flight == 0:
            raise RuntimeError("credit released without a matching acquire")
        self.in_flight -= 1
        self.available += 1
        self.check()

    def check(self) -> None:
        if self.granted != self.in_flight + self.available:
            raise RuntimeError(
                f"credit conservation violated: granted={self.granted} != "
                f"in_flight={self.in_flight} + available={self.available}")


@dataclass
class StreamOutcome:
    """Terminal record for one request-id'd submission."""

    request_id: str
    status: str
    t_resolved_s: float
    label: Optional[int] = None
    confidence: Optional[float] = None
    latency_s: Optional[float] = None
    replica: Optional[str] = None
    batch_index: Optional[int] = None
    batch_size: Optional[int] = None
    cache_hit: Optional[bool] = None

    def __post_init__(self):
        if self.status not in TERMINAL_STATUSES:
            raise ValueError(f"unknown terminal status {self.status!r}")


@conserves("offered == completed + cancelled + expired", mode="group")
@dataclass
class StreamingReport:
    """Everything one StreamingFrontend.serve() run measured.

    The ``group`` conservation mode fits a ledger that closes at
    end-of-run: every resolution path must bump exactly one terminal
    counter (ND006 proves the path consistency statically), and the
    runtime :attr:`conserved` check settles the books when the event
    loop drains.
    """

    offered: int = 0
    completed: int = 0
    cancelled: int = 0
    expired: int = 0
    # structurally zero under credit flow — kept (and gated at zero) to
    # prove the protocol never sheds on a full queue
    queue_full: int = 0
    makespan_s: float = 0.0
    redispatches: int = 0
    out_of_order: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    final_replicas: int = 0
    peak_replicas: int = 0
    final_batch_target: int = 0
    replica_busy_s: float = 0.0
    replica_stalled_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_rejected_oversize: int = 0
    latencies_s: List[float] = field(default_factory=list)
    credit_waits_s: List[float] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)
    completion_order: List[str] = field(default_factory=list)
    outcomes: List[StreamOutcome] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return self.completed + self.cancelled + self.expired

    @property
    def conserved(self) -> bool:
        return self.offered == self.resolved

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def mean_batch(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def latency_percentile(self, q: float) -> float:
        return exact_percentile(self.latencies_s, q)

    def credit_wait_percentile(self, q: float) -> float:
        return exact_percentile(self.credit_waits_s, q)

    def to_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "expired": self.expired,
            "queue_full": self.queue_full,
            "conserved": self.conserved,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "p50_latency_s": self.latency_percentile(50),
            "p99_latency_s": self.latency_percentile(99),
            "p99_credit_wait_s": self.credit_wait_percentile(99),
            "mean_batch": self.mean_batch,
            "out_of_order": self.out_of_order,
            "redispatches": self.redispatches,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "final_replicas": self.final_replicas,
            "peak_replicas": self.peak_replicas,
            "final_batch_target": self.final_batch_target,
            "replica_busy_s": self.replica_busy_s,
            "replica_stalled_s": self.replica_stalled_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_rejected_oversize": self.cache_rejected_oversize,
        }
