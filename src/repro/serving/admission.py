"""Admission control: a bounded upload queue with per-request deadlines.

The front end of §3.1 flow 1 cannot serve unbounded backlog — a queue
deeper than what the replicas can drain inside the deadline only turns
timely requests into late ones.  So admission is where load is shed:

* **queue_full** — an arrival finds the bounded queue at capacity and is
  rejected immediately (the client sees fast failure, not slow success);
* **deadline** — at batch-formation time, a queued request that can no
  longer finish inside its deadline (wait already exceeds
  ``deadline - min_service``) is dropped instead of wasting accelerator
  time on an answer nobody is waiting for.

Every shed is counted by reason; the serving report's accounting
invariant ``offered == completed + shed`` is exact.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..lint.contracts import conserves
from ..lint.guards import guarded_by

__all__ = ["ServeRequest", "AdmissionQueue"]


@dataclass(frozen=True)
class ServeRequest:
    """One photo upload offered to the serving layer."""

    request_id: str
    #: open-loop arrival time on the deterministic clock
    arrival_s: float
    #: raw pixels (C, H, W) in [0, 1]
    pixels: np.ndarray
    #: optional user tag (becomes the training label on ingest)
    train_label: Optional[int] = None
    #: per-request deadline override (None = the config deadline)
    deadline_s: Optional[float] = None


@conserves("_offered == _admitted + _shed_full")
@guarded_by("_lock", "_pending", "_shed_full", "_offered", "_admitted")
class AdmissionQueue:
    """Bounded FIFO between the open-loop arrivals and the batcher.

    Every arrival is accounted exactly once at the admission boundary:
    ``_offered == _admitted + _shed_full`` holds on every path through
    :meth:`offer` (ND006 proves it statically; :meth:`stats` exposes the
    ledger so callers can cross-check the serving report against it).
    """

    def __init__(self, capacity: int, deadline_s: float):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.capacity = capacity
        self.deadline_s = deadline_s
        self._lock = threading.Lock()
        self._pending: Deque[ServeRequest] = deque()
        self._offered = 0
        self._admitted = 0
        self._shed_full = 0

    def offer(self, request: ServeRequest) -> bool:
        """Admit one arrival; False means it was shed (queue full)."""
        with self._lock:
            self._offered += 1
            if len(self._pending) >= self.capacity:
                self._shed_full += 1
                return False
            self._pending.append(request)
            self._admitted += 1
            return True

    def take(self, max_items: int, now_s: float, min_service_s: float,
             ) -> Tuple[List[ServeRequest], List[ServeRequest]]:
        """Form the next micro-batch at time ``now_s``.

        Returns ``(ready, expired)``: up to ``max_items`` requests that
        can still finish inside their deadline, plus every request popped
        on the way that no longer can (they are shed, not served late).
        """
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        ready: List[ServeRequest] = []
        expired: List[ServeRequest] = []
        with self._lock:
            while self._pending and len(ready) < max_items:
                request = self._pending.popleft()
                deadline = (self.deadline_s if request.deadline_s is None
                            else request.deadline_s)
                if now_s - request.arrival_s > deadline - min_service_s:
                    expired.append(request)
                else:
                    ready.append(request)
        return ready, expired

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def shed_full_count(self) -> int:
        """Arrivals rejected because the queue was at capacity."""
        with self._lock:
            return self._shed_full

    def drain(self) -> List[ServeRequest]:
        """Remove and return everything still queued (end of run)."""
        with self._lock:
            out = list(self._pending)
            self._pending.clear()
            return out

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"depth": len(self._pending),
                    "offered": self._offered,
                    "admitted": self._admitted,
                    "shed_full": self._shed_full}
