"""One registration site for every serving metric family (ND004).

Both front ends — the synchronous :class:`~repro.serving.frontend.
ServingFrontend` and the streaming :class:`~repro.serving.stream.
StreamingFrontend` — report into the same metric families, and ND004
requires each family to have exactly one registration call site
repo-wide.  This module is that site: a :class:`ServingMetrics` bundle
registers (or re-binds, via the registry's get-or-create semantics)
every family and hands out the instrument handles.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

__all__ = ["ServingMetrics"]


class ServingMetrics:
    """Instrument handles for the serving layer, one registry namespace.

    Constructing this against the same :class:`MetricsRegistry` twice
    returns handles to the same underlying families (registration is
    get-or-create), so a cluster can host both front ends without
    forking the accounting.
    """

    def __init__(self, metrics: MetricsRegistry):
        self.registry = metrics
        # -- shared request accounting ----------------------------------
        self.offered = metrics.counter(
            "serving_requests_offered_total",
            "requests offered to the serving front end")
        self.completed = metrics.counter(
            "serving_requests_completed_total",
            "requests classified and answered in time")
        self.shed = metrics.counter(
            "serving_requests_shed_total",
            "requests shed by admission control", label_names=("reason",))
        self.queue_depth = metrics.gauge(
            "serving_queue_depth", "admission-queue depth after each batch")
        self.batch = metrics.histogram(
            "serving_batch_size", "dispatched micro-batch sizes",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self.latency = metrics.histogram(
            "serving_latency_seconds", "request latency, arrival to answer")
        self.batches = metrics.counter(
            "serving_batches_dispatched_total",
            "micro-batches dispatched per replica",
            label_names=("replica",))
        # -- preprocessed-tensor cache ----------------------------------
        self.cache_hits = metrics.counter(
            "serving_cache_hits_total", "preprocessed-tensor cache hits")
        self.cache_misses = metrics.counter(
            "serving_cache_misses_total",
            "cache misses paying host preprocessing")
        self.cache_evictions = metrics.counter(
            "serving_cache_evictions_total",
            "cache entries evicted by the LRU byte budget")
        self.cache_rejected = metrics.counter(
            "serving_cache_rejected_total",
            "cache inserts rejected because one blob exceeds the whole "
            "byte budget")
        # -- streaming protocol -----------------------------------------
        self.stream_requests = metrics.counter(
            "serving_stream_requests_total",
            "streaming requests resolved, by terminal status",
            label_names=("status",))
        self.stream_inflight = metrics.gauge(
            "serving_stream_inflight",
            "streaming requests dispatched and awaiting completion")
        self.stream_credits = metrics.gauge(
            "serving_stream_credits_available",
            "client send credits currently available")
        self.stream_credit_wait = metrics.histogram(
            "serving_stream_credit_wait_seconds",
            "client-side wait for a send credit before submission")
        self.stream_redispatches = metrics.counter(
            "serving_stream_redispatches_total",
            "requests re-queued after a failed batch dispatch")
        # -- elasticity --------------------------------------------------
        self.replica_count = metrics.gauge(
            "serving_replica_count", "replicas behind the dispatcher")
        self.scale_events = metrics.counter(
            "serving_scale_events_total",
            "autoscaler replica-set changes", label_names=("direction",))
