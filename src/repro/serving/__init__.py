"""High-throughput online serving layer (admission, batching, caching).

The request-level front end in front of replica
:class:`~repro.core.cluster.InferenceServer`\\ s: a bounded admission
queue with load shedding and per-request deadlines, an adaptive
micro-batcher steered by a latency-SLO controller seeded from the NPE
batch-size-enlargement model, a content-addressed cache of
deflate-compressed preprocessed tensors, and a multi-replica dispatcher
riding the cluster's fault-injectable fabric and retry policy.
"""

from .admission import AdmissionQueue, ServeRequest
from .batcher import SloController, slo_batch_size
from .cache import TensorCache, content_key
from .config import ACCELERATORS, ServingConfig
from .dispatcher import FRONTEND_NODE, ReplicaDispatcher
from .frontend import (
    SHED_REASONS,
    ServeOutcome,
    ServingFrontend,
    ServingReport,
)

__all__ = [
    "ACCELERATORS",
    "AdmissionQueue",
    "FRONTEND_NODE",
    "ReplicaDispatcher",
    "SHED_REASONS",
    "ServeOutcome",
    "ServeRequest",
    "ServingConfig",
    "ServingFrontend",
    "ServingReport",
    "SloController",
    "TensorCache",
    "content_key",
    "slo_batch_size",
]
