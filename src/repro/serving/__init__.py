"""High-throughput online serving layer (admission, batching, caching).

The request-level front end in front of replica
:class:`~repro.core.cluster.InferenceServer`\\ s: a bounded admission
queue with load shedding and per-request deadlines, an adaptive
micro-batcher steered by a latency-SLO controller seeded from the NPE
batch-size-enlargement model, a content-addressed cache of
deflate-compressed preprocessed tensors, and a multi-replica dispatcher
riding the cluster's fault-injectable fabric and retry policy.

On top of the synchronous front end sits the streaming protocol
(:mod:`~repro.serving.stream`): request-id'd out-of-order completion,
per-request cancellation and deadlines, credit-window backpressure in
place of queue-full shedding, and SLO-headroom replica autoscaling
(:mod:`~repro.serving.autoscale`).
"""

from .admission import AdmissionQueue, ServeRequest
from .autoscale import ElasticityController
from .batcher import SloController, slo_batch_size
from .cache import TensorCache, content_key
from .config import ACCELERATORS, ServingConfig, StreamConfig
from .dispatcher import FRONTEND_NODE, ReplicaDispatcher
from .frontend import (
    SHED_REASONS,
    ServeOutcome,
    ServingFrontend,
    ServingReport,
)
from .metrics import ServingMetrics
from .protocol import (
    CANCELLED,
    COMPLETED,
    EXPIRED,
    TERMINAL_STATUSES,
    CreditWindow,
    StreamOutcome,
    StreamingReport,
)
from .stream import StreamingFrontend

__all__ = [
    "ACCELERATORS",
    "AdmissionQueue",
    "CANCELLED",
    "COMPLETED",
    "CreditWindow",
    "EXPIRED",
    "ElasticityController",
    "FRONTEND_NODE",
    "ReplicaDispatcher",
    "SHED_REASONS",
    "ServeOutcome",
    "ServeRequest",
    "ServingConfig",
    "ServingFrontend",
    "ServingMetrics",
    "ServingReport",
    "SloController",
    "StreamConfig",
    "StreamOutcome",
    "StreamingFrontend",
    "StreamingReport",
    "TERMINAL_STATUSES",
    "TensorCache",
    "content_key",
    "slo_batch_size",
]
