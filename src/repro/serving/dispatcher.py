"""Replica dispatch: spread micro-batches over inference servers.

The dispatcher owns the replica fleet's timeline on the deterministic
clock: each replica has a ``free_at`` time, batches go to the
earliest-free replica, and the batch's modelled service time (CPU
preprocess for cache misses, inflate for hits, wire transfer, the
calibrated accelerator batch time, and per-request database upserts)
advances that replica's clock.  Transfers ride the cluster's
byte-accounted fabric inside the shared
:class:`~repro.faults.retry.RetryPolicy`, so injected drops surface as
shed batches and injected latency is charged to the requests it
delayed — chaos tests cover the serving path like every other flow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.fabric import NetworkFabric
from ..faults.errors import TransientFaultError
from ..faults.retry import RetryPolicy, call_with_retry
from ..lint.contracts import conserves
from ..models.catalog import model_graph
from ..sim.specs import CpuSpec
from .config import ServingConfig

__all__ = ["ReplicaDispatcher", "FRONTEND_NODE"]

#: fabric node name of the serving front end
FRONTEND_NODE = "serving-frontend"


@conserves("batches_attempted == batches_dispatched + batches_failed")
class ReplicaDispatcher:
    """Earliest-free scheduling of batches over replica servers.

    Dispatch accounting is a closed ledger: every attempt lands in
    exactly one of ``batches_dispatched`` (delivered, time charged to
    ``busy_s``) or ``batches_failed`` (every retry dropped, lost time
    charged to ``stalled_s``).  ND006 proves the balance on every path
    through :meth:`dispatch`, including the raising one.
    """

    def __init__(self, replicas: Sequence, config: ServingConfig,
                 network: NetworkFabric, retry_policy: RetryPolicy):
        if not replicas:
            raise ValueError("need at least one replica InferenceServer")
        self.replicas = list(replicas)
        self.config = config
        self.network = network
        self.retry = retry_policy
        self.graph = model_graph(config.model)
        self.accelerator = config.accelerator_spec()
        self._free_at = [0.0] * len(self.replicas)
        #: replica names a failure detector has drained: no new batches
        #: land on them until :meth:`undrain` (membership, not removal —
        #: the timeline slot survives so a rejoin resumes where it was)
        self._drained: set = set()
        self.batches_attempted = 0
        self.batches_dispatched = 0
        self.batches_failed = 0
        #: modelled work only: service + wire seconds of delivered batches
        self.busy_s = 0.0
        #: waiting, not working: retry backoff, injected fault latency,
        #: and the failure path's lost time
        self.stalled_s = 0.0

    # -- timeline -----------------------------------------------------------
    def earliest_free_s(self) -> float:
        return min(self._free_at)

    def _pick_replica(self) -> int:
        candidates = [i for i in range(len(self._free_at))
                      if self.replicas[i].name not in self._drained]
        if not candidates:
            # every replica drained: degrade to the full fleet rather
            # than erroring — serving a suspect replica beats serving none
            candidates = list(range(len(self._free_at)))
        return min(candidates, key=self._free_at.__getitem__)

    # -- membership (driven by the HA failure detector) ---------------------
    def drain(self, name: str) -> bool:
        """Stop routing new batches to ``name``; True if newly drained."""
        if name in self._drained or not any(
                r.name == name for r in self.replicas):
            return False
        self._drained.add(name)
        return True

    def undrain(self, name: str) -> bool:
        """Resume routing to ``name``; True if it was drained."""
        if name not in self._drained:
            return False
        self._drained.discard(name)
        return True

    def drained(self) -> List[str]:
        return sorted(self._drained)

    # -- elasticity ---------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def add_replica(self, replica, now_s: float) -> None:
        """Grow the fleet: the new replica is free from ``now_s`` on."""
        self.replicas.append(replica)
        self._free_at.append(now_s)

    def remove_idle_replica(self, now_s: float) -> Optional[str]:
        """Retire one idle replica (highest index first, deterministic).

        Returns the retired replica's name, or ``None`` when every
        replica is busy or only one remains — the caller decides whether
        to retry later.  Busy replicas are never interrupted.
        """
        if len(self.replicas) <= 1:
            return None
        for index in range(len(self.replicas) - 1, -1, -1):
            if self._free_at[index] <= now_s:
                replica = self.replicas.pop(index)
                del self._free_at[index]
                self._drained.discard(replica.name)
                return replica.name
        return None

    # -- the calibrated service model ---------------------------------------
    def min_service_s(self) -> float:
        """Deadline-feasibility floor: a batch of one that misses the cache.

        Admission uses this to drop requests that cannot finish in time
        even if served alone next; including the miss-preprocess cost
        keeps completed batch=1 requests inside the deadline too.
        """
        return self.service_s(num_requests=1, num_misses=1, hit_bytes=0)

    def service_s(self, num_requests: int, num_misses: int,
                  hit_bytes: int) -> float:
        """Modelled seconds to serve one micro-batch.

        Misses pay host preprocessing, hits pay deflate inflation of
        their cached blob, everyone shares the accelerator forward pass
        (the Fig. 19 launch-overhead curve) and a database upsert.
        """
        cpu: CpuSpec = self.config.cpu_spec()
        preprocess_s = (num_misses
                        / cpu.preprocess_ips(self.config.preprocess_cores))
        decompress_rate = (cpu.decompress_mbps_per_core * 1e6
                           * min(self.config.decompress_cores, cpu.cores))
        decompress_s = hit_bytes / decompress_rate
        inference_s = (num_requests
                       / self.accelerator.inference_ips(self.graph,
                                                        num_requests))
        db_s = num_requests * self.config.db_update_s
        return preprocess_s + decompress_s + inference_s + db_s

    # -- dispatch -----------------------------------------------------------
    def dispatch(self, batch: np.ndarray, payload_bytes: int,
                 t_start: float, num_misses: int, hit_bytes: int,
                 ) -> Tuple[List[Tuple[int, float]], float, str]:
        """Serve one micro-batch on the earliest-free replica.

        Returns ``(results, t_done, replica_name)``.  The wire transfer
        to the replica runs under the retry policy; a transfer that every
        retry drops raises :class:`~repro.faults.TransientFaultError`
        after charging the replica for the wasted retry/backoff time
        (the batch is then shed by the caller).
        """
        index = self._pick_replica()
        replica = self.replicas[index]
        self.batches_attempted += 1
        backoff_before = self.retry.backoff_s
        injected_before = self.network.injected_latency_s
        try:
            call_with_retry(
                lambda: self.network.send(FRONTEND_NODE, replica.name,
                                          payload_bytes, "serve"),
                self.retry)
        except TransientFaultError:
            self.batches_failed += 1
            # the replica was tied up for the retries and backoff even
            # though no inference happened — waiting, not working
            lost_s = max((self.retry.backoff_s - backoff_before)
                         + (self.network.injected_latency_s - injected_before),
                         1e-6)
            self._free_at[index] = t_start + lost_s
            self.stalled_s += lost_s
            raise
        injected_s = self.network.injected_latency_s - injected_before
        backoff_s = self.retry.backoff_s - backoff_before
        wire_s = payload_bytes / self.network.spec.bytes_per_s
        work_s = self.service_s(len(batch), num_misses, hit_bytes) + wire_s
        stall_s = injected_s + backoff_s
        results = replica.classify_preprocessed(batch)
        t_done = t_start + work_s + stall_s
        self._free_at[index] = t_done
        self.batches_dispatched += 1
        self.busy_s += work_s
        self.stalled_s += stall_s
        return results, t_done, replica.name
