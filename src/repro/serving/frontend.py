"""ServingFrontend — the high-throughput online upload path.

A deterministic discrete-event loop (no wall clock, no threads) that
plays an open-loop arrival trace through admission control, the
preprocessed-tensor cache, the adaptive micro-batcher, and the replica
dispatcher:

1. the earliest-free replica sets the batch-formation time ``t_start``;
2. every arrival at or before ``t_start`` is offered to the bounded
   admission queue (overflow is shed as ``queue_full``);
3. the queue yields up to the controller's batch-size target, dropping
   requests that can no longer meet their deadline (``deadline`` sheds);
4. cache hits inflate their stored tensors, misses are preprocessed and
   cached; the batch moves to the replica over the byte-accounted fabric
   under the retry policy (a dropped batch is shed as
   ``dispatch_failed``) and one forward pass classifies the whole batch;
5. the batch's slowest request latency feeds the AIMD controller.

Identical inputs produce identical reports: arrival times come from the
traffic trace, service times from the calibrated hardware specs plus
whatever latency the fault injector adds, and classification from the
seeded tiny models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fabric import NetworkFabric
from ..faults.errors import TransientFaultError
from ..faults.retry import RetryPolicy
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..storage.imageformat import preprocess
from .admission import AdmissionQueue, ServeRequest
from .batcher import SloController, slo_batch_size
from .cache import TensorCache
from .config import ServingConfig
from .dispatcher import ReplicaDispatcher
from .metrics import ServingMetrics

__all__ = ["ServeOutcome", "ServingReport", "ServingFrontend",
           "SHED_REASONS"]

#: every way a request can be shed, for exact accounting
SHED_REASONS = ("queue_full", "deadline", "dispatch_failed")


@dataclass
class ServeOutcome:
    """One completed request: its answer and how long it took."""

    request: ServeRequest
    label: int
    confidence: float
    latency_s: float
    batch_index: int
    batch_size: int
    cache_hit: bool
    replica: str
    #: the preprocessed tensor, kept only when the caller lands uploads
    preprocessed: Optional[np.ndarray] = None


@dataclass
class ServingReport:
    """Everything one :meth:`ServingFrontend.serve` run produced."""

    offered: int = 0
    completed: int = 0
    shed: Dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in SHED_REASONS})
    makespan_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_rejected_oversize: int = 0
    final_batch_target: int = 0
    completed_requests: List[ServeOutcome] = field(default_factory=list)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated run time."""
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def mean_batch(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def latency_percentile(self, q: float) -> float:
        """Exact order-statistic percentile of completed-request latency."""
        if not self.latencies_s:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        ordered = sorted(self.latencies_s)
        rank = max(1, int(np.ceil(q / 100.0 * len(ordered))))
        return ordered[rank - 1]

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    def to_dict(self) -> Dict:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": dict(self.shed),
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_batch": self.mean_batch,
            "final_batch_target": self.final_batch_target,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_rejected_oversize": self.cache_rejected_oversize,
        }


class ServingFrontend:
    """Admission + cache + batcher + dispatcher in front of replicas."""

    def __init__(self, replicas: Sequence, config: ServingConfig, *,
                 network: Optional[NetworkFabric] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config.validated()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.retry = (retry_policy if retry_policy is not None
                      else RetryPolicy())
        self.network = (network if network is not None
                        else NetworkFabric(metrics=self.metrics))
        self.dispatcher = ReplicaDispatcher(replicas, self.config,
                                            self.network, self.retry)
        self.cache = TensorCache(self.config.cache_capacity_bytes,
                                 self.config.compression_level)
        initial = self.config.initial_batch
        if initial is None:
            initial = max(self.config.min_batch, min(
                self.config.max_batch,
                slo_batch_size(self.dispatcher.graph,
                               self.dispatcher.accelerator,
                               self.config.slo_s,
                               min_batch=self.config.min_batch,
                               max_batch=self.config.max_batch)))
        self.controller = SloController(
            slo_s=self.config.slo_s, min_batch=self.config.min_batch,
            max_batch=self.config.max_batch, initial_batch=initial,
            headroom=self.config.slo_headroom,
            additive_step=self.config.additive_step)
        self.m = ServingMetrics(self.metrics)
        self._evictions_seen = 0
        self._rejected_seen = 0

    # -- the deterministic event loop ---------------------------------------
    def serve(self, requests: Sequence[ServeRequest],
              collect_tensors: bool = False) -> ServingReport:
        """Play an arrival trace to completion; returns the report."""
        arrivals = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        report = ServingReport(offered=len(arrivals))
        self.m.offered.inc(len(arrivals))
        queue = AdmissionQueue(self.config.queue_capacity,
                               self.config.effective_deadline_s)
        min_service_s = self.dispatcher.min_service_s()
        next_arrival = 0
        now_s = 0.0
        last_done_s = 0.0
        batch_index = 0
        with self.tracer.span("serving.serve", offered=len(arrivals)):
            while next_arrival < len(arrivals) or queue.depth() > 0:
                if queue.depth() == 0:
                    now_s = max(now_s, arrivals[next_arrival].arrival_s)
                t_start = max(now_s, self.dispatcher.earliest_free_s())
                while (next_arrival < len(arrivals)
                       and arrivals[next_arrival].arrival_s <= t_start):
                    if not queue.offer(arrivals[next_arrival]):
                        self._shed(report, "queue_full")
                    next_arrival += 1
                ready, expired = queue.take(self.controller.batch_size,
                                            t_start, min_service_s)
                for _ in expired:
                    self._shed(report, "deadline")
                now_s = t_start
                if not ready:
                    continue
                batch_index += 1
                t_done = self._run_batch(ready, t_start, batch_index, report,
                                         collect_tensors)
                if t_done is not None:
                    # replicas finish out of step, so the last completion
                    # is a max over batches, not the final t_done
                    last_done_s = max(last_done_s, t_done)
                self.m.queue_depth.set(queue.depth())
        # the run ends when the last batch *finishes*, not when it starts
        report.makespan_s = last_done_s
        stats = self.cache.stats()
        report.cache_hits = stats["hits"]
        report.cache_misses = stats["misses"]
        report.cache_evictions = stats["evictions"]
        report.cache_rejected_oversize = stats["rejected_oversize"]
        report.final_batch_target = self.controller.batch_size
        return report

    def _run_batch(self, ready: List[ServeRequest], t_start: float,
                   batch_index: int, report: ServingReport,
                   collect_tensors: bool) -> Optional[float]:
        """Serve one batch; returns its ``t_done`` (None when shed)."""
        tensors: List[np.ndarray] = []
        hits: List[bool] = []
        num_misses = 0
        hit_bytes = 0
        payload_bytes = 0
        for request in ready:
            key, tensor, blob_bytes = self.cache.lookup(request.pixels)
            if tensor is None:
                tensor = preprocess(request.pixels)
                blob_bytes = self.cache.insert(key, tensor)
                num_misses += 1
                hits.append(False)
            else:
                hit_bytes += blob_bytes
                hits.append(True)
            payload_bytes += blob_bytes
            tensors.append(tensor)
        batch = np.stack(tensors)
        try:
            results, t_done, replica = self.dispatcher.dispatch(
                batch, payload_bytes, t_start, num_misses, hit_bytes)
        except TransientFaultError:
            for _ in ready:
                self._shed(report, "dispatch_failed")
            return None
        report.batch_sizes.append(len(ready))
        self.m.batch.observe(len(ready))
        self.m.batches.inc(replica=replica)
        worst_latency_s = 0.0
        for row, request in enumerate(ready):
            label, confidence = results[row]
            latency_s = t_done - request.arrival_s
            worst_latency_s = max(worst_latency_s, latency_s)
            report.latencies_s.append(latency_s)
            report.completed += 1
            self.m.completed.inc()
            self.m.latency.observe(latency_s)
            report.completed_requests.append(ServeOutcome(
                request=request, label=label, confidence=confidence,
                latency_s=latency_s, batch_index=batch_index,
                batch_size=len(ready), cache_hit=hits[row],
                replica=replica,
                preprocessed=tensors[row] if collect_tensors else None))
        hit_count = sum(hits)
        if hit_count:
            self.m.cache_hits.inc(hit_count)
        if num_misses:
            self.m.cache_misses.inc(num_misses)
        stats = self.cache.stats()
        if stats["evictions"] > self._evictions_seen:
            self.m.cache_evictions.inc(stats["evictions"]
                                       - self._evictions_seen)
            self._evictions_seen = stats["evictions"]
        if stats["rejected_oversize"] > self._rejected_seen:
            self.m.cache_rejected.inc(stats["rejected_oversize"]
                                      - self._rejected_seen)
            self._rejected_seen = stats["rejected_oversize"]
        self.controller.observe(worst_latency_s)
        return t_done

    def _shed(self, report: ServingReport, reason: str) -> None:
        report.shed[reason] += 1
        self.m.shed.inc(reason=reason)
