"""Shared serving benchmark: adaptive micro-batching vs batch=1 baseline.

One traffic trace, two front ends under the same p99 latency budget:

* **adaptive** — the full serving layer (NPE-seeded batch controller,
  tensor cache, replica dispatch);
* **baseline** — the same machinery pinned to synchronous batch=1, i.e.
  the pre-serving ``InferenceServer.classify`` path with admission
  control bolted on so shedding (and therefore the latency budget) is
  identical.

Both ``repro serve-bench`` and ``benchmarks/bench_serving.py`` run this,
so the CLI smoke number and the recorded BENCH_serving.json trajectory
can never drift apart.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from ..core.cluster import InferenceServer
from ..models.registry import tiny_model
from ..workloads.continuous import open_loop_requests
from .config import ServingConfig
from .frontend import ServingFrontend

__all__ = ["run_serving_comparison", "BENCH_DEFAULTS"]

#: the trace the recorded BENCH_serving.json numbers come from
BENCH_DEFAULTS = {
    "num_requests": 3000,
    "rate_rps": 1500.0,
    "pool_size": 64,
    "skew": 1.1,
}


def _build_frontend(config: ServingConfig, seed: int) -> ServingFrontend:
    replicas = [
        InferenceServer(tiny_model(config.model, seed=seed + i),
                        name=f"serve-replica-{i}")
        for i in range(config.replicas)
    ]
    return ServingFrontend(replicas, config)


def run_serving_comparison(seed: int = 0,
                           num_requests: int = BENCH_DEFAULTS["num_requests"],
                           rate_rps: float = BENCH_DEFAULTS["rate_rps"],
                           pool_size: int = BENCH_DEFAULTS["pool_size"],
                           skew: float = BENCH_DEFAULTS["skew"],
                           config: Optional[ServingConfig] = None) -> Dict:
    """Serve one Poisson trace adaptively and synchronously; compare.

    Returns a plain dict (JSON-ready): both reports, the offered load,
    and the throughput speedup at the shared latency budget.
    """
    adaptive_config = (config if config is not None
                       else ServingConfig()).validated()
    baseline_config = replace(adaptive_config, min_batch=1, max_batch=1,
                              initial_batch=1)
    requests = open_loop_requests(num_requests=num_requests,
                                  rate_rps=rate_rps, seed=seed,
                                  pool_size=pool_size, skew=skew)
    adaptive = _build_frontend(adaptive_config, seed).serve(requests)
    baseline = _build_frontend(baseline_config, seed).serve(requests)
    speedup = (adaptive.throughput_rps / baseline.throughput_rps
               if baseline.throughput_rps > 0 else float("inf"))
    return {
        "seed": seed,
        "offered_rps": rate_rps,
        "num_requests": num_requests,
        "pool_size": pool_size,
        "skew": skew,
        "latency_budget_s": adaptive_config.effective_deadline_s,
        "config": adaptive_config.to_dict(),
        "adaptive": adaptive.to_dict(),
        "baseline": baseline.to_dict(),
        "speedup": speedup,
    }
