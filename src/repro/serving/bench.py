"""Shared serving benchmark: adaptive micro-batching vs batch=1 baseline.

One traffic trace, two front ends under the same p99 latency budget:

* **adaptive** — the full serving layer (NPE-seeded batch controller,
  tensor cache, replica dispatch);
* **baseline** — the same machinery pinned to synchronous batch=1, i.e.
  the pre-serving ``InferenceServer.classify`` path with admission
  control bolted on so shedding (and therefore the latency budget) is
  identical.

Both ``repro serve-bench`` and ``benchmarks/bench_serving.py`` run this,
so the CLI smoke number and the recorded BENCH_serving.json trajectory
can never drift apart.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from ..core.cluster import InferenceServer
from ..models.registry import tiny_model
from ..workloads.continuous import (
    diurnal_requests,
    flash_crowd_requests,
    open_loop_requests,
)
from .config import ServingConfig, StreamConfig
from .frontend import ServingFrontend
from .stream import StreamingFrontend

__all__ = ["run_serving_comparison", "run_streaming_bench",
           "BENCH_DEFAULTS", "STREAM_BENCH_DEFAULTS"]

#: the trace the recorded BENCH_serving.json numbers come from
BENCH_DEFAULTS = {
    "num_requests": 3000,
    "rate_rps": 1500.0,
    "pool_size": 64,
    "skew": 1.1,
}

#: the flash-crowd trace the recorded BENCH_serving_stream.json numbers
#: come from: steady base load with a burst the static PR 5 queue sheds
STREAM_BENCH_DEFAULTS = {
    "num_requests": 3000,
    "pool_size": 64,
    "skew": 1.1,
    "base_rps": 600.0,
    "flash_rps": 6000.0,
    "flash_start_s": 1.0,
    "flash_duration_s": 0.5,
    "peak_rps": 3000.0,
    "period_s": 4.0,
}


def _build_frontend(config: ServingConfig, seed: int) -> ServingFrontend:
    replicas = [
        InferenceServer(tiny_model(config.model, seed=seed + i),
                        name=f"serve-replica-{i}")
        for i in range(config.replicas)
    ]
    return ServingFrontend(replicas, config)


def run_serving_comparison(seed: int = 0,
                           num_requests: int = BENCH_DEFAULTS["num_requests"],
                           rate_rps: float = BENCH_DEFAULTS["rate_rps"],
                           pool_size: int = BENCH_DEFAULTS["pool_size"],
                           skew: float = BENCH_DEFAULTS["skew"],
                           config: Optional[ServingConfig] = None) -> Dict:
    """Serve one Poisson trace adaptively and synchronously; compare.

    Returns a plain dict (JSON-ready): both reports, the offered load,
    and the throughput speedup at the shared latency budget.
    """
    adaptive_config = (config if config is not None
                       else ServingConfig()).validated()
    baseline_config = replace(adaptive_config, min_batch=1, max_batch=1,
                              initial_batch=1)
    requests = open_loop_requests(num_requests=num_requests,
                                  rate_rps=rate_rps, seed=seed,
                                  pool_size=pool_size, skew=skew)
    adaptive = _build_frontend(adaptive_config, seed).serve(requests)
    baseline = _build_frontend(baseline_config, seed).serve(requests)
    speedup = (adaptive.throughput_rps / baseline.throughput_rps
               if baseline.throughput_rps > 0 else float("inf"))
    return {
        "seed": seed,
        "offered_rps": rate_rps,
        "num_requests": num_requests,
        "pool_size": pool_size,
        "skew": skew,
        "latency_budget_s": adaptive_config.effective_deadline_s,
        "config": adaptive_config.to_dict(),
        "adaptive": adaptive.to_dict(),
        "baseline": baseline.to_dict(),
        "speedup": speedup,
    }


def _stream_trace(trace: str, seed: int, num_requests: int, pool_size: int,
                  skew: float):
    d = STREAM_BENCH_DEFAULTS
    if trace == "flash":
        return flash_crowd_requests(
            num_requests=num_requests, base_rps=d["base_rps"],
            flash_rps=d["flash_rps"], flash_start_s=d["flash_start_s"],
            flash_duration_s=d["flash_duration_s"], seed=seed,
            pool_size=pool_size, skew=skew)
    if trace == "diurnal":
        return diurnal_requests(
            num_requests=num_requests, base_rps=d["base_rps"],
            peak_rps=d["peak_rps"], period_s=d["period_s"], seed=seed,
            pool_size=pool_size, skew=skew)
    if trace == "poisson":
        return open_loop_requests(
            num_requests=num_requests, rate_rps=d["base_rps"], seed=seed,
            pool_size=pool_size, skew=skew)
    raise ValueError(f"unknown trace {trace!r}; "
                     f"expected flash, diurnal, or poisson")


def run_streaming_bench(seed: int = 0, trace: str = "flash",
                        num_requests: int =
                        STREAM_BENCH_DEFAULTS["num_requests"],
                        pool_size: int = STREAM_BENCH_DEFAULTS["pool_size"],
                        skew: float = STREAM_BENCH_DEFAULTS["skew"],
                        config: Optional[ServingConfig] = None,
                        stream: Optional[StreamConfig] = None) -> Dict:
    """Streaming protocol vs the synchronous PR 5 front end on one trace.

    The same offered load plays through both: the streaming credit-window
    path (with autoscaling) and the synchronous hard-bounded-queue path
    at a static replica count.  The headline comparison is the shedding
    behaviour — the streaming side must show zero ``queue_full`` while
    the synchronous side drops — plus the out-of-order completion count
    that only the streaming protocol can exhibit.
    """
    # one replica to start, a 1 s client deadline (the SLO still steers
    # batching at 100 ms): the flash then *delays* the streaming side
    # while it scales out, and drowns the synchronous bounded queue
    serving_config = (config if config is not None
                      else ServingConfig(replicas=1,
                                         deadline_s=1.0)).validated()
    stream_config = (stream if stream is not None
                     else StreamConfig(min_replicas=1,
                                       max_replicas=6)).validated()
    requests = _stream_trace(trace, seed, num_requests, pool_size, skew)

    def factory(index: int):
        return InferenceServer(
            tiny_model(serving_config.model, seed=seed + index),
            name=f"stream-replica-{index}")

    streaming = StreamingFrontend(factory, serving_config,
                                  stream_config).serve(requests)
    sync = _build_frontend(serving_config, seed).serve(requests)
    return {
        "seed": seed,
        "trace": trace,
        "num_requests": num_requests,
        "pool_size": pool_size,
        "skew": skew,
        "latency_budget_s": serving_config.effective_deadline_s,
        "config": serving_config.to_dict(),
        "stream_config": stream_config.to_dict(),
        "streaming": streaming.to_dict(),
        "sync": sync.to_dict(),
    }
