"""Adaptive micro-batching under a latency SLO.

Two pieces, both reusing the paper's batching math:

* :func:`slo_batch_size` — the NPE batch-size-enlargement logic of §5.4,
  applied to serving: walk batch sizes through the calibrated
  :func:`~repro.core.npe.npe_task_times` cost model and pick the largest
  batch whose accelerator service time still fits inside a fraction of
  the SLO (and whose working set fits device memory, the Fig. 19
  constraint).  This seeds the controller near its operating point
  instead of cold-starting at batch 1.
* :class:`SloController` — an AIMD loop around observed request latency:
  a batch whose slowest request exceeded the SLO halves the target
  (multiplicative decrease); latency under ``slo * headroom`` earns an
  additive increase.  The asymmetry makes SLO violations transient and
  self-correcting while still climbing back to the throughput-optimal
  batch when load allows.
"""

from __future__ import annotations

from ..core.npe import NpeConfig, npe_task_times
from ..models.graph import ModelGraph
from ..sim.specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    AcceleratorSpec,
)

__all__ = ["slo_batch_size", "SloController"]


def slo_batch_size(graph: ModelGraph, accelerator: AcceleratorSpec,
                   slo_s: float, fraction: float = 0.5,
                   min_batch: int = 1, max_batch: int = 256) -> int:
    """Largest batch whose accelerator time fits ``fraction * slo_s``.

    Batch sizes are swept in powers of two from ``min_batch``; each is
    costed through the NPE serving profile (compressed preprocessed
    reads, §5.4 +Comp) and accepted while the whole-batch FE&Cl time
    stays inside the budget and the batch fits accelerator memory.
    """
    if slo_s <= 0:
        raise ValueError(f"slo_s must be > 0, got {slo_s}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if min_batch < 1 or max_batch < min_batch:
        raise ValueError(
            f"need 1 <= min_batch <= max_batch, got [{min_batch}, "
            f"{max_batch}]")
    budget_s = slo_s * fraction
    best = min_batch
    batch = min_batch
    while batch <= max_batch:
        profile = NpeConfig(
            level="serve",
            read_bytes_inference=COMPRESSED_PREPROCESSED_BYTES,
            read_bytes_finetune=COMPRESSED_PREPROCESSED_BYTES,
            preprocess_on_store=False, decompress=True, batch_size=batch,
        )
        times = npe_task_times(graph, profile, "inference", accelerator)
        batch_service_s = batch * times["FE&Cl"] / 1e3
        if batch_service_s <= budget_s and accelerator.fits_batch(graph,
                                                                  batch):
            best = batch
        batch *= 2
    return best


class SloController:
    """AIMD batch-size controller steering p99 latency toward the SLO."""

    def __init__(self, slo_s: float, min_batch: int, max_batch: int,
                 initial_batch: int, headroom: float = 0.8,
                 additive_step: int = 4):
        if slo_s <= 0:
            raise ValueError(f"slo_s must be > 0, got {slo_s}")
        if not min_batch <= initial_batch <= max_batch:
            raise ValueError(
                f"initial_batch {initial_batch} outside [{min_batch}, "
                f"{max_batch}]")
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1], got {headroom}")
        if additive_step < 1:
            raise ValueError(
                f"additive_step must be >= 1, got {additive_step}")
        self.slo_s = slo_s
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.headroom = headroom
        self.additive_step = additive_step
        self.batch_size = initial_batch
        self.decreases = 0
        self.increases = 0

    def observe(self, worst_latency_s: float) -> int:
        """Feed back one dispatched batch's slowest request latency.

        Returns the new batch-size target.
        """
        if worst_latency_s < 0:
            raise ValueError(
                f"latency must be >= 0, got {worst_latency_s}")
        if worst_latency_s > self.slo_s:
            shrunk = max(self.min_batch, self.batch_size // 2)
            if shrunk < self.batch_size:
                self.decreases += 1
            self.batch_size = shrunk
        elif worst_latency_s < self.slo_s * self.headroom:
            grown = min(self.max_batch, self.batch_size + self.additive_step)
            if grown > self.batch_size:
                self.increases += 1
            self.batch_size = grown
        return self.batch_size
