"""ElasticityController — replica-set sizing from SLO headroom.

Consumes the same signal the AIMD :class:`~repro.serving.batcher.
SloController` steers batch size with — the worst request latency of
each delivered micro-batch — and turns sustained SLO pressure into
replica-count decisions:

* **scale up** (+1) when the windowed *median* worst-batch latency
  exceeds ``slo_s * scale_up_headroom`` — one bad batch is the batch
  controller's problem; a violated median means batching alone cannot
  absorb the load;
* **scale down** (-1) when *every* latency in the window sits under
  ``slo_s * scale_down_headroom`` — the whole window must be
  comfortable before capacity is taken away.

Decisions are rate-limited: the window must be full, a ``cooldown``
number of observations must separate actions, and the window resets
after each action so a single burst cannot trigger a staircase of
scale-ups.  The controller only *recommends* a delta; the front end
applies it subject to the replica bounds and to having an idle replica
to retire.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

__all__ = ["ElasticityController"]


class ElasticityController:
    """SLO-headroom autoscaler companion to the AIMD batch controller."""

    def __init__(self, slo_s: float, min_replicas: int, max_replicas: int, *,
                 scale_up_headroom: float = 1.0,
                 scale_down_headroom: float = 0.4,
                 window: int = 8, cooldown: int = 16):
        if not math.isfinite(slo_s) or slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {slo_s}")
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{min_replicas}, {max_replicas}]")
        if not 0.0 < scale_down_headroom < scale_up_headroom:
            raise ValueError(
                "need 0 < scale_down_headroom < scale_up_headroom, got "
                f"{scale_down_headroom} vs {scale_up_headroom}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.slo_s = slo_s
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_up_headroom = scale_up_headroom
        self.scale_down_headroom = scale_down_headroom
        self.window = window
        self.cooldown = cooldown
        self.scale_ups = 0
        self.scale_downs = 0
        self._latencies: Deque[float] = deque(maxlen=window)
        # start past the cooldown so the first full window may act
        self._since_action = cooldown

    def observe(self, worst_latency_s: float, replicas: int) -> int:
        """Feed one batch's worst latency; returns -1, 0, or +1."""
        if worst_latency_s < 0:
            raise ValueError(
                f"worst_latency_s must be >= 0, got {worst_latency_s}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._latencies.append(worst_latency_s)
        self._since_action += 1
        if len(self._latencies) < self.window or \
                self._since_action < self.cooldown:
            return 0
        ordered = sorted(self._latencies)
        median = ordered[len(ordered) // 2]
        if median > self.slo_s * self.scale_up_headroom and \
                replicas < self.max_replicas:
            self.scale_ups += 1
            self._acted()
            return 1
        if ordered[-1] < self.slo_s * self.scale_down_headroom and \
                replicas > self.min_replicas:
            self.scale_downs += 1
            self._acted()
            return -1
        return 0

    def _acted(self) -> None:
        self._latencies.clear()
        self._since_action = 0
