"""StreamingFrontend — async request-id'd serving with backpressure.

The synchronous :class:`~repro.serving.frontend.ServingFrontend`
completes requests in submission order and sheds on a full queue.  This
front end runs the production shape instead, still as a deterministic
discrete-event simulation on the logical clock:

* **out-of-order completion** — micro-batches land on whichever replica
  is free, so a small batch on an idle replica finishes before a large
  earlier batch still running elsewhere; answers are reassembled per
  request id as completion callbacks fire, and the report counts the
  inversions (completions whose submission sequence number is lower
  than one already delivered);
* **backpressure credits, not sheds** — clients hold send credits
  (:class:`~repro.serving.protocol.CreditWindow`); an arrival with no
  credit waits in a client-side backlog until a completion replenishes
  the window.  Overload therefore degrades to *delay* (visible as
  ``credit_wait``) instead of ``queue_full`` drops, and conservation is
  exact: ``offered == completed + cancelled + expired``;
* **cancellation and deadlines** — a cancel resolves a backlog or
  pending request immediately and is latched for in-flight requests
  (the answer is discarded at completion); requests that can no longer
  meet their deadline expire at batch-formation time;
* **no shed on dispatch faults** — a batch whose transfer every retry
  drops is re-queued at the front of the pending line (counted as
  ``redispatches``) rather than shed, preserving conservation;
* **elasticity** — each delivered batch's worst latency feeds both the
  AIMD :class:`~repro.serving.batcher.SloController` (batch size) and
  the :class:`~repro.serving.autoscale.ElasticityController`, which
  grows/shrinks the replica set inside the configured bounds.

Identical traces (arrivals + cancellations) produce identical reports.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    Callable, Deque, Dict, Iterable, List, Mapping, Optional, Sequence,
    Tuple, Union,
)

import numpy as np

from ..core.fabric import NetworkFabric
from ..faults.errors import TransientFaultError
from ..faults.retry import RetryPolicy
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..storage.imageformat import preprocess
from .admission import ServeRequest
from .autoscale import ElasticityController
from .batcher import SloController, slo_batch_size
from .cache import TensorCache
from .config import ServingConfig, StreamConfig
from .dispatcher import ReplicaDispatcher
from .metrics import ServingMetrics
from .protocol import (
    CANCELLED,
    COMPLETED,
    EXPIRED,
    CreditWindow,
    StreamOutcome,
    StreamingReport,
)

__all__ = ["StreamingFrontend"]

# event kinds; ties at one instant break on insertion sequence, and
# arrivals are inserted before cancels before anything scheduled later
_ARRIVAL = "arrival"
_CANCEL = "cancel"
_COMPLETE = "complete"
_WAKE = "wake"

Cancellations = Union[Mapping[str, float], Iterable[Tuple[str, float]]]


class StreamingFrontend:
    """Credit-windowed async serving over an elastic replica set."""

    def __init__(self, replica_factory: Callable[[int], object],
                 config: ServingConfig,
                 stream: Optional[StreamConfig] = None, *,
                 network: Optional[NetworkFabric] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config.validated()
        self.stream = (stream if stream is not None
                       else StreamConfig()).validated()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.retry = (retry_policy if retry_policy is not None
                      else RetryPolicy())
        self.network = (network if network is not None
                        else NetworkFabric(metrics=self.metrics))
        self.replica_factory = replica_factory
        self._replica_seq = 0
        initial = max(self.stream.min_replicas,
                      min(self.stream.max_replicas, self.config.replicas))
        replicas = [self._new_replica() for _ in range(initial)]
        self.dispatcher = ReplicaDispatcher(replicas, self.config,
                                            self.network, self.retry)
        self.cache = TensorCache(self.config.cache_capacity_bytes,
                                 self.config.compression_level)
        initial_batch = self.config.initial_batch
        if initial_batch is None:
            initial_batch = max(self.config.min_batch, min(
                self.config.max_batch,
                slo_batch_size(self.dispatcher.graph,
                               self.dispatcher.accelerator,
                               self.config.slo_s,
                               min_batch=self.config.min_batch,
                               max_batch=self.config.max_batch)))
        self.controller = SloController(
            slo_s=self.config.slo_s, min_batch=self.config.min_batch,
            max_batch=self.config.max_batch, initial_batch=initial_batch,
            headroom=self.config.slo_headroom,
            additive_step=self.config.additive_step)
        self.autoscaler = (ElasticityController(
            slo_s=self.config.slo_s,
            min_replicas=self.stream.min_replicas,
            max_replicas=self.stream.max_replicas,
            scale_up_headroom=self.stream.scale_up_headroom,
            scale_down_headroom=self.stream.scale_down_headroom,
            window=self.stream.window, cooldown=self.stream.cooldown)
            if self.stream.autoscale else None)
        self.m = ServingMetrics(self.metrics)
        self._evictions_seen = 0
        self._rejected_seen = 0

    def _new_replica(self):
        replica = self.replica_factory(self._replica_seq)
        self._replica_seq += 1
        return replica

    def serve(self, requests: Sequence[ServeRequest],
              cancellations: Optional[Cancellations] = None,
              ) -> StreamingReport:
        """Play an arrival trace (plus optional cancels) to completion.

        ``cancellations`` maps request ids to the logical time the
        client cancels them; a cancel for an already-resolved request is
        a no-op (the race is legal in the protocol), a cancel for an id
        not in the trace is an error.
        """
        run = _StreamRun(self, requests, cancellations)
        with self.tracer.span("serving.stream", offered=run.offered):
            report = run.run()
        report.final_batch_target = self.controller.batch_size
        report.final_replicas = self.dispatcher.num_replicas
        report.replica_busy_s = self.dispatcher.busy_s
        report.replica_stalled_s = self.dispatcher.stalled_s
        stats = self.cache.stats()
        report.cache_hits = stats["hits"]
        report.cache_misses = stats["misses"]
        report.cache_evictions = stats["evictions"]
        report.cache_rejected_oversize = stats["rejected_oversize"]
        if not report.conserved:
            raise RuntimeError(
                f"request conservation violated: offered={report.offered} "
                f"!= completed={report.completed} + "
                f"cancelled={report.cancelled} + expired={report.expired}")
        return report


class _StreamRun:
    """Mutable state of one serve() invocation's event loop."""

    def __init__(self, frontend: StreamingFrontend,
                 requests: Sequence[ServeRequest],
                 cancellations: Optional[Cancellations]):
        self.f = frontend
        self.arrivals = sorted(requests,
                               key=lambda r: (r.arrival_s, r.request_id))
        ids = [r.request_id for r in self.arrivals]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate request_id in trace")
        cancels = dict(cancellations or {})
        unknown = sorted(set(cancels) - set(ids))
        if unknown:
            raise ValueError(f"cancellations for unknown request ids: "
                             f"{unknown}")
        self.offered = len(self.arrivals)
        self.by_id: Dict[str, ServeRequest] = {
            r.request_id: r for r in self.arrivals}
        #: submission sequence = arrival order; inversions are counted
        #: against it when completions are delivered
        self.submit_seq: Dict[str, int] = {
            rid: i for i, rid in enumerate(ids)}
        self.report = StreamingReport(offered=self.offered)
        self.credits = CreditWindow(self.f.stream.credits)
        self.state: Dict[str, str] = {}
        self.backlog: Deque[ServeRequest] = deque()
        self.pending: Deque[ServeRequest] = deque()
        self.min_service_s = self.f.dispatcher.min_service_s()
        self.heap: List[Tuple[float, int, str, object]] = []
        self.seq = 0
        for request in self.arrivals:
            self._push(request.arrival_s, _ARRIVAL, request)
        for rid, t in sorted(cancels.items(), key=lambda kv: (kv[1], kv[0])):
            self._push(float(t), _CANCEL, rid)
        self.now = 0.0
        self.last_done = 0.0
        self.batch_index = 0
        self.inflight = 0
        self.max_completed_seq = -1
        self.wake_times: set = set()
        self.report.peak_replicas = self.f.dispatcher.num_replicas

    # -- event plumbing ------------------------------------------------------
    def _push(self, t: float, kind: str, payload: object) -> None:
        heapq.heappush(self.heap, (t, self.seq, kind, payload))
        self.seq += 1

    def _schedule_wake(self, t: float) -> None:
        if t not in self.wake_times:
            self.wake_times.add(t)
            self._push(t, _WAKE, None)

    # -- the loop ------------------------------------------------------------
    def run(self) -> StreamingReport:
        while self.heap:
            t, _seq, kind, payload = heapq.heappop(self.heap)
            self.now = max(self.now, t)
            if kind == _ARRIVAL:
                self._on_arrival(payload)
            elif kind == _CANCEL:
                self._on_cancel(payload)
            elif kind == _COMPLETE:
                self._on_complete(payload)
            else:
                self.wake_times.discard(t)
                self._maybe_dispatch()
        if self.backlog or self.pending or self.inflight:
            raise RuntimeError(
                f"event loop drained with work left: "
                f"backlog={len(self.backlog)} pending={len(self.pending)} "
                f"inflight={self.inflight}")
        self.credits.check()
        self.report.makespan_s = self.last_done
        return self.report

    def _on_arrival(self, request: ServeRequest) -> None:
        if self.credits.acquire():
            self._submit(request)
            self._maybe_dispatch()
        else:
            self.state[request.request_id] = "backlog"
            self.backlog.append(request)
        self.m.stream_credits.set(self.credits.available)

    def _submit(self, request: ServeRequest) -> None:
        """Move a credited request into the server-side pending line."""
        self.state[request.request_id] = "pending"
        self.pending.append(request)
        wait_s = self.now - request.arrival_s
        self.report.credit_waits_s.append(wait_s)
        self.m.stream_credit_wait.observe(wait_s)

    def _admit_backlog(self) -> None:
        while self.backlog and self.credits.acquire():
            self._submit(self.backlog.popleft())
        self.m.stream_credits.set(self.credits.available)

    def _on_cancel(self, request_id: str) -> None:
        status = self.state.get(request_id)
        if status == "backlog":
            self.backlog.remove(self.by_id[request_id])
            self._resolve(StreamOutcome(request_id, CANCELLED, self.now))
        elif status == "pending":
            self.pending.remove(self.by_id[request_id])
            self._resolve(StreamOutcome(request_id, CANCELLED, self.now))
            self.credits.release()
            self._admit_backlog()
            self._maybe_dispatch()
        elif status == "inflight":
            # latch: the batch keeps running, the answer is discarded at
            # completion and the credit returns then
            self.state[request_id] = "cancel-latched"
        # terminal/cancel-latched: the cancel lost the race, no-op

    def _maybe_dispatch(self) -> None:
        while self.pending and \
                self.f.dispatcher.earliest_free_s() <= self.now:
            ready = self._take_ready()
            if ready and not self._dispatch(ready):
                break

    def _take_ready(self) -> List[ServeRequest]:
        """Form a batch like AdmissionQueue.take: pop until the target
        fills, expiring requests that can no longer meet the deadline."""
        ready: List[ServeRequest] = []
        expired = 0
        target = self.f.controller.batch_size
        while self.pending and len(ready) < target:
            request = self.pending.popleft()
            deadline = (self.f.config.effective_deadline_s
                        if request.deadline_s is None else request.deadline_s)
            if self.now - request.arrival_s > deadline - self.min_service_s:
                self._resolve(StreamOutcome(
                    request.request_id, EXPIRED, self.now))
                self.credits.release()
                expired += 1
            else:
                ready.append(request)
        if expired:
            self._admit_backlog()
        return ready

    def _dispatch(self, ready: List[ServeRequest]) -> bool:
        tensors: List[np.ndarray] = []
        hits: List[bool] = []
        num_misses = 0
        hit_bytes = 0
        payload_bytes = 0
        for request in ready:
            key, tensor, blob_bytes = self.f.cache.lookup(request.pixels)
            if tensor is None:
                tensor = preprocess(request.pixels)
                blob_bytes = self.f.cache.insert(key, tensor)
                num_misses += 1
                hits.append(False)
            else:
                hit_bytes += blob_bytes
                hits.append(True)
            payload_bytes += blob_bytes
            tensors.append(tensor)
        batch = np.stack(tensors)
        try:
            results, t_done, replica = self.f.dispatcher.dispatch(
                batch, payload_bytes, self.now, num_misses, hit_bytes)
        except TransientFaultError:
            # degrade to delayed, never dropped: back to the front of the
            # line, retried once the stalled replica (or any other) frees
            self.report.redispatches += len(ready)
            self.m.stream_redispatches.inc(len(ready))
            self.pending.extendleft(reversed(ready))
            self._schedule_wake(self.f.dispatcher.earliest_free_s())
            return False
        self.batch_index += 1
        self.report.batch_sizes.append(len(ready))
        self.m.batch.observe(len(ready))
        self.m.batches.inc(replica=replica)
        hit_count = sum(hits)
        if hit_count:
            self.m.cache_hits.inc(hit_count)
        if num_misses:
            self.m.cache_misses.inc(num_misses)
        self._sync_cache_counters()
        for request in ready:
            self.state[request.request_id] = "inflight"
        self.inflight += len(ready)
        self.m.stream_inflight.set(self.inflight)
        self._push(t_done, _COMPLETE,
                   (ready, results, hits, t_done, replica, self.batch_index))
        return True

    def _on_complete(self, payload) -> None:
        ready, results, hits, t_done, replica, batch_index = payload
        self.last_done = max(self.last_done, t_done)
        self.inflight -= len(ready)
        self.m.stream_inflight.set(self.inflight)
        worst_latency_s = 0.0
        for row, request in enumerate(ready):
            rid = request.request_id
            if self.state.get(rid) == "cancel-latched":
                self._resolve(StreamOutcome(
                    rid, CANCELLED, t_done, replica=replica,
                    batch_index=batch_index, batch_size=len(ready)))
            else:
                label, confidence = results[row]
                latency_s = t_done - request.arrival_s
                worst_latency_s = max(worst_latency_s, latency_s)
                self.report.latencies_s.append(latency_s)
                self.m.latency.observe(latency_s)
                seq = self.submit_seq[rid]
                if seq < self.max_completed_seq:
                    self.report.out_of_order += 1
                else:
                    self.max_completed_seq = seq
                self.report.completion_order.append(rid)
                self._resolve(StreamOutcome(
                    rid, COMPLETED, t_done, label=label,
                    confidence=confidence, latency_s=latency_s,
                    replica=replica, batch_index=batch_index,
                    batch_size=len(ready), cache_hit=hits[row]))
            self.credits.release()
        self._admit_backlog()
        if worst_latency_s > 0.0:
            self.f.controller.observe(worst_latency_s)
            if self.f.autoscaler is not None:
                self._apply_scale(self.f.autoscaler.observe(
                    worst_latency_s, self.f.dispatcher.num_replicas))
        self._maybe_dispatch()

    def _apply_scale(self, delta: int) -> None:
        if delta > 0:
            self.f.dispatcher.add_replica(self.f._new_replica(), self.now)
            self.report.scale_ups += 1
            self.m.scale_events.inc(direction="up")
        elif delta < 0:
            if self.f.dispatcher.remove_idle_replica(self.now) is not None:
                self.report.scale_downs += 1
                self.m.scale_events.inc(direction="down")
        count = self.f.dispatcher.num_replicas
        self.report.peak_replicas = max(self.report.peak_replicas, count)
        self.m.replica_count.set(count)

    def _resolve(self, outcome: StreamOutcome) -> None:
        self.state[outcome.request_id] = outcome.status
        self.report.outcomes.append(outcome)
        if outcome.status == COMPLETED:
            self.report.completed += 1
            self.m.completed.inc()
        elif outcome.status == CANCELLED:
            self.report.cancelled += 1
        else:
            self.report.expired += 1
        self.m.stream_requests.inc(status=outcome.status)

    def _sync_cache_counters(self) -> None:
        stats = self.f.cache.stats()
        if stats["evictions"] > self.f._evictions_seen:
            self.m.cache_evictions.inc(stats["evictions"]
                                       - self.f._evictions_seen)
            self.f._evictions_seen = stats["evictions"]
        if stats["rejected_oversize"] > self.f._rejected_seen:
            self.m.cache_rejected.inc(stats["rejected_oversize"]
                                      - self.f._rejected_seen)
            self.f._rejected_seen = stats["rejected_oversize"]

    @property
    def m(self) -> ServingMetrics:
        return self.f.m
