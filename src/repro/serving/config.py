"""ServingConfig — every plain-value knob of the online serving layer.

Mirrors :class:`~repro.core.config.ClusterConfig`: a frozen dataclass
with a single ``validated()`` choke point, strict ``from_dict``, and a
``to_dict`` round-trip for manifests and CLI plumbing.  Collaborator
objects (replica servers, the shared fabric, retry policy, metrics,
tracer) stay constructor arguments on
:class:`~repro.serving.frontend.ServingFrontend`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

from ..models.catalog import ALL_MODELS
from ..sim.specs import (
    AcceleratorSpec,
    CpuSpec,
    HOST_CPU,
    NEURONCORE_V1,
    TESLA_T4,
    TESLA_V100,
)

__all__ = ["ServingConfig", "StreamConfig", "ACCELERATORS"]

#: accelerators the serving layer can model, by catalog name
ACCELERATORS: Dict[str, AcceleratorSpec] = {
    "Tesla T4": TESLA_T4,
    "Tesla V100": TESLA_V100,
    "NeuronCoreV1": NEURONCORE_V1,
}


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for admission control, batching, caching, and dispatch."""

    #: bounded admission-queue capacity; arrivals beyond it are shed
    queue_capacity: int = 256
    #: the p99 latency objective the batch controller steers toward
    slo_s: float = 0.1
    #: per-request deadline (None = the SLO); requests that cannot finish
    #: inside it are shed at batch-formation time instead of served late
    deadline_s: Optional[float] = None
    #: micro-batch bounds for the SLO controller
    min_batch: int = 1
    max_batch: int = 256
    #: starting batch size (None = NPE batch-size enlargement picks it)
    initial_batch: Optional[int] = None
    #: grow the batch only while latency stays under ``slo_s * headroom``
    slo_headroom: float = 0.8
    #: additive-increase step of the AIMD controller
    additive_step: int = 4
    #: preprocessed-tensor cache budget (compressed bytes resident)
    cache_capacity_bytes: int = 32 * 1024 * 1024
    #: deflate level for cached tensors (§5.4 +Comp)
    compression_level: int = 6
    #: host cores preprocessing cache misses (JPEG decode+normalise)
    preprocess_cores: int = 32
    #: host cores inflating cache hits
    decompress_cores: int = 8
    #: label-database upsert cost per request
    db_update_s: float = 0.0002
    #: replica InferenceServers behind the dispatcher
    replicas: int = 1
    #: paper model served (sets the calibrated latency model)
    model: str = "ResNet50"
    #: accelerator each replica runs on (key of :data:`ACCELERATORS`)
    accelerator: str = "Tesla V100"
    #: seed for any stochastic tie-breaking downstream
    seed: int = 0

    # -- derived views -------------------------------------------------------
    @property
    def effective_deadline_s(self) -> float:
        return self.slo_s if self.deadline_s is None else self.deadline_s

    def accelerator_spec(self) -> AcceleratorSpec:
        return ACCELERATORS[self.accelerator]

    def cpu_spec(self) -> CpuSpec:
        return HOST_CPU

    def validated(self) -> "ServingConfig":
        """Return self after checking every field; raises ``ValueError``."""
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if not math.isfinite(self.slo_s) or self.slo_s <= 0:
            raise ValueError(
                f"slo_s must be a positive finite float, got {self.slo_s}")
        if self.deadline_s is not None and (
                not math.isfinite(self.deadline_s) or self.deadline_s <= 0):
            raise ValueError(
                f"deadline_s must be positive (or None), got {self.deadline_s}")
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be >= 1, got {self.min_batch}")
        if self.max_batch < self.min_batch:
            raise ValueError(
                f"max_batch {self.max_batch} must be >= min_batch "
                f"{self.min_batch}")
        if self.initial_batch is not None and not (
                self.min_batch <= self.initial_batch <= self.max_batch):
            raise ValueError(
                f"initial_batch {self.initial_batch} must lie in "
                f"[{self.min_batch}, {self.max_batch}] or be None")
        if not 0.0 < self.slo_headroom <= 1.0:
            raise ValueError(
                f"slo_headroom must be in (0, 1], got {self.slo_headroom}")
        if self.additive_step < 1:
            raise ValueError(
                f"additive_step must be >= 1, got {self.additive_step}")
        if self.cache_capacity_bytes < 0:
            raise ValueError(
                f"cache_capacity_bytes must be >= 0, got "
                f"{self.cache_capacity_bytes}")
        if not 0 <= self.compression_level <= 9:
            raise ValueError(
                f"compression_level must be in [0, 9], got "
                f"{self.compression_level}")
        if self.preprocess_cores < 1 or self.decompress_cores < 1:
            raise ValueError("preprocess/decompress core counts must be >= 1")
        if self.db_update_s < 0:
            raise ValueError(
                f"db_update_s must be >= 0, got {self.db_update_s}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.model not in ALL_MODELS:
            raise ValueError(
                f"unknown model {self.model!r}; available: "
                f"{sorted(ALL_MODELS)}")
        if self.accelerator not in ACCELERATORS:
            raise ValueError(
                f"unknown accelerator {self.accelerator!r}; available: "
                f"{sorted(ACCELERATORS)}")
        return self

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ServingConfig":
        """Build and validate a config from a plain dict (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ServingConfig fields {unknown}; known fields: "
                f"{sorted(known)}")
        return cls(**data).validated()

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(f.name for f in cls.__dataclass_fields__.values())


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the streaming protocol layered on a ServingConfig.

    Covers the credit window (backpressure), and the elasticity
    controller bounds/policy.  Batching, SLO, cache, and dispatch knobs
    stay on :class:`ServingConfig` — a StreamConfig only adds what the
    asynchronous protocol introduces.
    """

    #: send credits granted to the client population; the server never
    #: holds more than this many unresolved requests, and arrivals
    #: beyond it wait client-side instead of being shed
    credits: int = 256
    #: replica-set bounds for the elasticity controller
    min_replicas: int = 1
    max_replicas: int = 8
    #: grow/shrink the replica set from SLO headroom (False = static set)
    autoscale: bool = True
    #: scale up when the windowed median worst-batch latency exceeds
    #: ``slo_s * scale_up_headroom``
    scale_up_headroom: float = 1.0
    #: scale down when every latency in the window sits under
    #: ``slo_s * scale_down_headroom``
    scale_down_headroom: float = 0.4
    #: batches of signal required before the autoscaler may act
    window: int = 8
    #: batches that must pass between two scaling actions
    cooldown: int = 16

    def validated(self) -> "StreamConfig":
        """Return self after checking every field; raises ``ValueError``."""
        if self.credits < 1:
            raise ValueError(f"credits must be >= 1, got {self.credits}")
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas {self.max_replicas} must be >= min_replicas "
                f"{self.min_replicas}")
        if not math.isfinite(self.scale_up_headroom) or \
                self.scale_up_headroom <= 0:
            raise ValueError(
                f"scale_up_headroom must be positive, got "
                f"{self.scale_up_headroom}")
        if not 0.0 < self.scale_down_headroom < self.scale_up_headroom:
            raise ValueError(
                f"scale_down_headroom must be in (0, scale_up_headroom), "
                f"got {self.scale_down_headroom}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        return self

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "StreamConfig":
        """Build and validate a config from a plain dict (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown StreamConfig fields {unknown}; known fields: "
                f"{sorted(known)}")
        return cls(**data).validated()
