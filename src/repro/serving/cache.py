"""Content-addressed preprocessed-tensor cache (§5.4 reused online).

The paper's +Offload/+Comp artifacts — preprocessed fp32 binaries,
deflate-compressed — exist because preprocessing is the expensive CPU
step and the compressed binary is the cheap one to move and keep.  The
online path gets the same artifact here: the first upload of a given
photo pays the preprocess cost and leaves a compressed tensor behind;
every re-upload of identical content (retries, shared photos, thumbnail
refreshes) is a cache hit that only pays a deflate inflate.

Keys are content hashes of the raw pixels (bytes + dtype + shape), so
hits are deterministic across arrival orders and seeds: identical pixels
always map to the same entry.  Eviction is LRU by compressed bytes
against a fixed budget.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..lint.guards import guarded_by
from ..storage.compression import compress_array, decompress_array

__all__ = ["TensorCache", "content_key"]


def content_key(pixels: np.ndarray) -> str:
    """Content address of one photo: hash of bytes, dtype, and shape."""
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(pixels).tobytes())
    digest.update(str(pixels.dtype).encode())
    digest.update(str(pixels.shape).encode())
    return digest.hexdigest()


@guarded_by("_lock", "_entries", "_resident_bytes", "_hits", "_misses",
            "_evictions", "_rejected_oversize")
class TensorCache:
    """LRU cache of deflate-compressed preprocessed tensors."""

    def __init__(self, capacity_bytes: int, compression_level: int = 6):
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if not 0 <= compression_level <= 9:
            raise ValueError(
                f"compression_level must be in [0, 9], got "
                f"{compression_level}")
        self.capacity_bytes = capacity_bytes
        self.compression_level = compression_level
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._resident_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected_oversize = 0

    def lookup(self, pixels: np.ndarray,
               ) -> Tuple[str, Optional[np.ndarray], int]:
        """Probe for a photo's preprocessed tensor.

        Returns ``(key, tensor_or_None, compressed_bytes)``; a hit
        inflates the stored blob (bit-exact fp32 round-trip) and renews
        the entry's LRU position.
        """
        key = content_key(pixels)
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self._misses += 1
                return key, None, 0
            self._entries.move_to_end(key)
            self._hits += 1
        return key, decompress_array(blob), len(blob)

    def insert(self, key: str, tensor: np.ndarray) -> int:
        """Store a freshly preprocessed tensor; returns its blob size."""
        blob = compress_array(tensor, level=self.compression_level)
        with self._lock:
            if len(blob) > self.capacity_bytes:
                # would evict everything and still not fit; count it so a
                # never-cacheable photo re-preprocessed forever is visible
                self._rejected_oversize += 1
                return len(blob)
            old = self._entries.pop(key, None)
            if old is not None:
                self._resident_bytes -= len(old)
            self._entries[key] = blob
            self._resident_bytes += len(blob)
            while self._resident_bytes > self.capacity_bytes:
                _evicted_key, evicted_blob = self._entries.popitem(last=False)
                self._resident_bytes -= len(evicted_blob)
                self._evictions += 1
        return len(blob)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "resident_bytes": self._resident_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected_oversize": self._rejected_oversize,
            }
