"""A small generator-based discrete-event simulation kernel.

Processes are Python generators that ``yield`` events (timeouts, resource
acquisitions, store gets/puts).  The kernel is a classic (time, seq) heap;
ties break in schedule order so runs are fully deterministic.

This powers the datacenter experiments: PipeStore/Tuner pipelines, network
links, disks and CPU pools are processes contending for
:class:`~repro.sim.resources` wrappers built on the primitives here.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional


class Event:
    """A one-shot event; processes waiting on it resume when triggered."""

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class Process(Event):
    """Wraps a generator; completes (triggers) when the generator returns."""

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulation", generator: Generator):
        super().__init__(sim)
        self._generator = generator
        sim._schedule(0.0, self._resume, None)

    def _resume(self, event: Optional[Event]) -> None:
        value = event.value if event is not None else None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Events"
            )
        target.add_callback(self._resume)


class Simulation:
    """Deterministic event loop with a monotone clock."""

    def __init__(self):
        self.now = 0.0
        self._heap: List = []
        self._seq = 0

    # -- scheduling -------------------------------------------------------
    def _schedule(self, delay: float, callback, value) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, value))

    def timeout(self, delay: float, value: Any = None) -> Event:
        event = Event(self)
        self._schedule(delay, lambda _: event.trigger(value), None)
        return event

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; returns the final clock value."""
        while self._heap:
            time, _seq, callback, value = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if time < self.now - 1e-12:
                raise RuntimeError("event heap produced a time in the past")
            self.now = time
            if value is None:
                callback(None)
            else:
                callback(value)
        return self.now

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` finishes; returns its return value."""
        while not process.triggered:
            if not self._heap:
                raise RuntimeError("simulation starved: process never completes")
            self.run_step()
        return process.value

    def run_step(self) -> None:
        time, _seq, callback, value = heapq.heappop(self._heap)
        self.now = time
        callback(value)


class Resource:
    """FIFO resource with integer capacity and busy-time accounting."""

    def __init__(self, sim: Simulation, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: List[Event] = []
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def _grant(self, event: Event) -> None:
        self.in_use += 1
        if self._busy_since is None:
            self._busy_since = self.sim.now
        event.trigger(self)

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"{self.name}: release without acquire")
        self.in_use -= 1
        if self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters and self.in_use < self.capacity:
            self._grant(self._waiters.pop(0))

    def utilization(self, makespan: float) -> float:
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        if makespan <= 0:
            return 0.0
        return min(busy / makespan, 1.0)


class Store:
    """Bounded FIFO queue connecting pipeline stages."""

    def __init__(self, sim: Simulation, capacity: float = float("inf"),
                 name: str = "store"):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List = []  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        if self._getters:
            self._getters.pop(0).trigger(item)
            event.trigger(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.trigger(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            item = self._items.pop(0)
            event.trigger(item)
            if self._putters and len(self._items) < self.capacity:
                put_event, pending = self._putters.pop(0)
                self._items.append(pending)
                put_event.trigger(None)
        else:
            self._getters.append(event)
        return event


def all_of(sim: Simulation, events: List[Event]) -> Event:
    """An event that triggers when every input event has triggered."""
    gate = Event(sim)
    remaining = len(events)
    if remaining == 0:
        gate.trigger([])
        return gate
    values: List[Any] = [None] * remaining

    def make_callback(index: int):
        def callback(event: Event) -> None:
            nonlocal remaining
            values[index] = event.value
            remaining -= 1
            if remaining == 0:
                gate.trigger(values)

        return callback

    for i, event in enumerate(events):
        event.add_callback(make_callback(i))
    return gate
