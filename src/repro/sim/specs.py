"""Hardware catalog calibrated against the paper's testbed (§6.1).

Every timing experiment in the paper reduces to pipeline-stage service
rates on this catalog: accelerator throughput per model, disk and network
bandwidth, CPU preprocessing/decompression rates, and per-component power.

Calibration targets (from the paper's measurements):

* per-PipeStore (T4, TensorRT, batch 128) offline-inference IPS:
  ResNet50 2129, InceptionV3 2439, ResNeXt101 449, ViT 277 (§6.2);
* per-PipeStore feature-extraction throughput ~1913 IPS for ResNet50
  fine-tuning (artifact appendix A.6);
* SRV-I (2x V100) equals NDPipe at 5-7 PipeStores (Fig. 13 P3)
  -> V100 ~ 3x T4 effective throughput;
* APO picks 8 PipeStores for ResNet50 with one V100 Tuner (Fig. 11)
  -> Tuner classifier-training rate ~ 8x a PipeStore's FE rate;
* Typical offline inference 94 IPS vs Ideal 123 IPS (Fig. 5b) -> host
  preprocessing 15.4 images/s/core on 2.7 MB JPEGs, *sequential* stage
  execution in the §3 strawman systems (the NPE's 3-stage pipelining is
  precisely what the strawmen lack);
* SRV-C stops scaling beyond 20 Gbps because 8 host cores cannot
  decompress faster (Fig. 18) -> host decompression ~330 MB/s/core over
  compressed bytes; storage-server cores (shared with the storage daemons)
  sustain about half of that;
* NDPipe-Inf1 needs 11-16 PipeStores to match SRV-C where T4 needs 4-7
  (Fig. 20) -> NeuronCoreV1 ~ 0.41x T4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..models.graph import ModelGraph

# ---------------------------------------------------------------------------
# Workload byte sizes (§3.4, §5.4)
# ---------------------------------------------------------------------------
#: average raw photo (JPEG) size
RAW_IMAGE_BYTES = 2_700_000
#: preprocessed input binary (fp32 tensor, 0.59 MB for 224x224x3)
PREPROCESSED_BYTES = 590_000
#: deflate ratio on preprocessed binaries (typical for zlib over fp32 image
#: tensors; makes SRV-C network-bound at ~5.7 KIPS over 10 Gbps, which
#: reproduces the paper's fine-tuning crossover at 3 PipeStores for
#: ResNet50/InceptionV3 and 6 for ResNeXt101, Fig. 15)
PREPROCESSED_DEFLATE_RATIO = 2.86
#: compressed preprocessed binary
COMPRESSED_PREPROCESSED_BYTES = int(PREPROCESSED_BYTES / PREPROCESSED_DEFLATE_RATIO)
#: an extracted label shipped back from offline inference
LABEL_BYTES = 16

#: default experiment scale (paper fine-tunes over ImageNet-1K's 1.2M images)
DEFAULT_DATASET_IMAGES = 1_200_000

#: extra working-set memory per image during batched inference, used for the
#: Fig. 19 OOM model (ViT OOMs on a 16 GB T4 at batch >= 256)
INFERENCE_MEM_MB_PER_IMAGE: Dict[str, float] = {
    "ShuffleNetV2": 4.0,
    "ResNet50": 12.0,
    "InceptionV3": 16.0,
    "ResNeXt101": 25.0,
    "ViT": 60.0,
}


# ---------------------------------------------------------------------------
# Accelerators
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AcceleratorSpec:
    """A GPU / inference accelerator with calibrated sustained throughput.

    ``effective_tflops`` is the sustained dense rate on the reference model
    (ResNet50); ``model_efficiency`` rescales it per architecture (TensorRT
    loves Inception's convs, dislikes transformers on T4-class parts).
    """

    name: str
    effective_tflops: float
    idle_watts: float
    active_watts: float
    mem_gb: float
    #: multiplier when running training-mode frameworks instead of an
    #: inference runtime (NPE-optimised TensorFlow vs TensorRT)
    train_efficiency: float
    #: multiplier for the *unoptimised* §3/§4 strawman engines (no 3-stage
    #: pipelining, stock framework defaults)
    naive_train_efficiency: float
    #: fraction of peak achieved on tiny classifier-only kernels
    #: (launch-bound); sets the Tuner-stage rate
    clf_train_efficiency: float
    #: fixed per-batch launch/setup overhead (drives the Fig. 19 curve)
    batch_overhead_s: float
    model_efficiency: Mapping[str, float] = field(default_factory=dict)

    # -- throughput -------------------------------------------------------
    def _rate_flops(self, model_name: str) -> float:
        eff = self.model_efficiency.get(model_name, 1.0)
        return self.effective_tflops * 1e12 * eff

    def flops_ips(self, model_name: str, flops_per_image: float) -> float:
        """Saturated images/s pushing ``flops_per_image`` through the device."""
        if flops_per_image <= 0:
            return float("inf")
        return self._rate_flops(model_name) / flops_per_image

    def inference_ips(self, graph: ModelGraph, batch_size: int = 128) -> float:
        """Offline-inference throughput at a given batch size.

        Models the launch-overhead saturation curve of Fig. 19:
        ``ips(b) = b / (b / ips_max + overhead)``.
        """
        ips_max = self.flops_ips(graph.name, graph.total_flops)
        per_image = 1.0 / ips_max
        return batch_size / (batch_size * per_image + self.batch_overhead_s)

    def fe_ips(self, graph: ModelGraph, split: int, batch_size: int = 512,
               training: bool = True) -> float:
        """Feature-extraction throughput through the first ``split`` stages."""
        point = graph.partition_point(split)
        if point.front_flops <= 0:
            return float("inf")
        ips_max = self.flops_ips(graph.name, point.front_flops)
        if training:
            ips_max *= self.train_efficiency
        per_image = 1.0 / ips_max
        return batch_size / (batch_size * per_image + self.batch_overhead_s)

    def tail_train_ips(self, graph: ModelGraph, split: int) -> float:
        """Tuner-side training throughput over stages ``split:``.

        The trainable classifier runs tiny launch-bound kernels, hence the
        separate efficiency knob.
        """
        point = graph.partition_point(split)
        flops = point.back_flops_train
        if flops <= 0:
            return float("inf")
        rate = self.effective_tflops * 1e12 * self.clf_train_efficiency
        return rate / flops

    def full_finetune_ips(self, graph: ModelGraph, naive: bool = False) -> float:
        """Monolithic fine-tuning rate (FE forward + classifier update)."""
        flops = sum(s.flops_train for s in graph.stages)
        eff = self.naive_train_efficiency if naive else self.train_efficiency
        return self.flops_ips(graph.name, flops) * eff

    def full_train_ips(self, graph: ModelGraph) -> float:
        """Full-training rate (forward + backward through every stage)."""
        flops = 3.0 * graph.total_flops
        return self.flops_ips(graph.name, flops) * self.train_efficiency

    # -- memory -------------------------------------------------------------
    def fits_batch(self, graph: ModelGraph, batch_size: int) -> bool:
        """Does a batch fit in device memory? (fp16 weights + activations)"""
        per_image_mb = INFERENCE_MEM_MB_PER_IMAGE.get(graph.name, 10.0)
        weights_mb = graph.total_params * 2 / 1e6
        needed_mb = weights_mb + batch_size * per_image_mb
        return needed_mb <= self.mem_gb * 1024


_MODEL_EFFICIENCY = {
    # calibrated so a T4 at batch 128 hits the paper's per-PipeStore IPS
    # (2129 / 2439 / 449 / 277 for the four figure models, §6.2)
    "ResNet50": 1.000,
    "InceptionV3": 1.559,
    "ResNeXt101": 0.775,
    "ViT": 0.508,
    "ShuffleNetV2": 0.081,  # tiny model, launch-bound
}

TESLA_T4 = AcceleratorSpec(
    name="Tesla T4",
    effective_tflops=9.66,
    idle_watts=10.0,
    active_watts=65.0,
    mem_gb=16.0,
    train_efficiency=0.85,
    naive_train_efficiency=0.28,
    clf_train_efficiency=0.0035,
    batch_overhead_s=0.004,
    model_efficiency=_MODEL_EFFICIENCY,
)

TESLA_V100 = AcceleratorSpec(
    name="Tesla V100",
    effective_tflops=28.98,  # ~3x T4 sustained (Fig. 13 P3 calibration)
    idle_watts=35.0,
    active_watts=300.0,
    mem_gb=16.0,
    train_efficiency=0.84,
    naive_train_efficiency=0.26,
    clf_train_efficiency=0.0065,
    batch_overhead_s=0.003,
    model_efficiency=_MODEL_EFFICIENCY,
)

#: NeuronCoreV1 relative efficiency differs from the T4's: the systolic
#: matmul engine handles ResNeXt's grouped convolutions comparatively well
#: (calibrated so 11-16 Inf1 stores match SRV-C inference and 8-13 match
#: SRV-C fine-tuning, Fig. 20)
_NEURON_MODEL_EFFICIENCY = {
    "ResNet50": 1.000,
    "InceptionV3": 1.559,
    "ResNeXt101": 1.700,
    "ViT": 0.508,
    "ShuffleNetV2": 0.081,
}

NEURONCORE_V1 = AcceleratorSpec(
    name="NeuronCoreV1",
    effective_tflops=1.90,  # ~0.2x T4 on ResNet50
    idle_watts=4.0,
    active_watts=22.0,
    mem_gb=8.0,
    # FE is an inference workload and runs through the compiled Neuron
    # graph at full efficiency
    train_efficiency=1.0,
    naive_train_efficiency=0.28,
    clf_train_efficiency=0.0035,
    batch_overhead_s=0.006,
    model_efficiency=_NEURON_MODEL_EFFICIENCY,
)


# ---------------------------------------------------------------------------
# CPUs, disks, network
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CpuSpec:
    """Per-core service rates and a linear power model."""

    name: str
    cores: int
    #: raw 2.7 MB JPEG decode+resize+normalise, images/s per core
    preprocess_ips_per_core: float
    #: deflate decompression, MB/s of *compressed* input per core
    decompress_mbps_per_core: float
    base_watts: float
    per_core_watts: float

    def preprocess_ips(self, cores: int) -> float:
        return self._clamp(cores) * self.preprocess_ips_per_core

    def decompress_ips(self, cores: int, compressed_bytes: int) -> float:
        mbps = self._clamp(cores) * self.decompress_mbps_per_core
        return mbps * 1e6 / compressed_bytes

    def _clamp(self, cores: int) -> int:
        if cores < 0:
            raise ValueError("core count must be non-negative")
        return min(cores, self.cores)


HOST_CPU = CpuSpec(
    name="host-32vcpu-2.7GHz",
    cores=32,
    preprocess_ips_per_core=15.4,
    decompress_mbps_per_core=330.0,
    base_watts=100.0,
    per_core_watts=6.0,
)

STORAGE_CPU = CpuSpec(
    name="storage-16vcpu-2.5GHz",
    cores=16,
    preprocess_ips_per_core=15.4,
    # storage-server cores are shared with the storage daemons, sustaining
    # ~78% of the host rate; two cores decompress ~2500 images/s — above
    # the T4's batch-128 inference rate for every model (so the
    # accelerator bounds the NPE pipeline, §6.2) but below InceptionV3's
    # large-batch rate (the Fig. 19 decompression wall)
    decompress_mbps_per_core=258.0,
    base_watts=25.0,
    per_core_watts=6.0,
)

INF1_CPU = CpuSpec(
    name="inf1-8vcpu",
    cores=8,
    preprocess_ips_per_core=15.4,
    decompress_mbps_per_core=258.0,
    base_watts=15.0,
    per_core_watts=6.0,
)


@dataclass(frozen=True)
class DiskSpec:
    """An st1-style throughput-optimised HDD RAID volume."""

    name: str
    read_mbps: float
    write_mbps: float
    active_watts: float

    def read_ips(self, object_bytes: int) -> float:
        return self.read_mbps * 1e6 / object_bytes


ST1_RAID = DiskSpec(name="st1-16xHDD-RAID5", read_mbps=560.0,
                    write_mbps=420.0, active_watts=30.0)


@dataclass(frozen=True)
class NetworkSpec:
    """A full-duplex link; ``gbps`` is the paper's provisioned bandwidth."""

    gbps: float
    #: protocol efficiency (TCP/framing overhead)
    efficiency: float = 0.94

    @property
    def bytes_per_s(self) -> float:
        return self.gbps * 1e9 / 8.0 * self.efficiency

    def transfer_ips(self, object_bytes: int) -> float:
        if object_bytes <= 0:
            return float("inf")
        return self.bytes_per_s / object_bytes

    def transfer_time(self, total_bytes: float) -> float:
        return total_bytes / self.bytes_per_s


TEN_GBE = NetworkSpec(gbps=10.0)
#: intra-server GPU interconnect used for the Typical system's 2-GPU
#: weight synchronisation (Fig. 6a)
PCIE = NetworkSpec(gbps=96.0, efficiency=1.0)
NVLINK = NetworkSpec(gbps=400.0, efficiency=1.0)


# ---------------------------------------------------------------------------
# Servers (EC2 instance types of §6.1)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServerSpec:
    name: str
    accelerator: Optional[AcceleratorSpec]
    accelerator_count: int
    cpu: CpuSpec
    disk: Optional[DiskSpec]
    other_watts: float
    price_per_hour: float

    @property
    def has_accelerator(self) -> bool:
        return self.accelerator is not None and self.accelerator_count > 0


P3_8XLARGE = ServerSpec(
    name="p3.8xlarge",
    accelerator=TESLA_V100,
    accelerator_count=2,  # paper enables two of the four V100s
    cpu=HOST_CPU,
    disk=None,
    other_watts=250.0,
    price_per_hour=12.24,
)

P3_2XLARGE = ServerSpec(
    name="p3.2xlarge",
    accelerator=TESLA_V100,
    accelerator_count=1,
    cpu=HOST_CPU,
    disk=None,
    other_watts=120.0,
    price_per_hour=3.06,
)

G4DN_4XLARGE = ServerSpec(
    name="g4dn.4xlarge",
    accelerator=TESLA_T4,
    accelerator_count=1,
    cpu=STORAGE_CPU,
    disk=ST1_RAID,
    other_watts=130.0,
    price_per_hour=1.204,
)

G4DN_4XLARGE_NOGPU = ServerSpec(
    name="g4dn.4xlarge (GPU disabled)",
    accelerator=None,
    accelerator_count=0,
    cpu=STORAGE_CPU,
    disk=ST1_RAID,
    other_watts=130.0,
    price_per_hour=1.204,
)

INF1_2XLARGE = ServerSpec(
    name="inf1.2xlarge",
    accelerator=NEURONCORE_V1,
    accelerator_count=1,
    cpu=INF1_CPU,
    disk=ST1_RAID,
    other_watts=20.0,
    price_per_hour=0.362,
)

SERVERS: Dict[str, ServerSpec] = {
    spec.name: spec
    for spec in (P3_8XLARGE, P3_2XLARGE, G4DN_4XLARGE, G4DN_4XLARGE_NOGPU,
                 INF1_2XLARGE)
}
