"""Component power model (GPU / CPU / other) and energy-efficiency metrics.

Mirrors the paper's measurement methodology (§6.2): GPU power via gpustat,
CPU and 'others' via powerstat/ipmitool on matched local machines.  We model
each server's draw as

* accelerator: ``idle + util * (active - idle)`` per device,
* CPU: ``base + active_cores * per_core``,
* other (PSU, SoC, I/O, disks): a constant per server class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .specs import ServerSpec


@dataclass(frozen=True)
class PowerDraw:
    """Average draw of one server, split the way Fig. 14 plots it."""

    gpu_watts: float
    cpu_watts: float
    other_watts: float

    @property
    def total_watts(self) -> float:
        return self.gpu_watts + self.cpu_watts + self.other_watts

    def __add__(self, other: "PowerDraw") -> "PowerDraw":
        return PowerDraw(
            self.gpu_watts + other.gpu_watts,
            self.cpu_watts + other.cpu_watts,
            self.other_watts + other.other_watts,
        )

    def scaled(self, factor: float) -> "PowerDraw":
        return PowerDraw(self.gpu_watts * factor, self.cpu_watts * factor,
                         self.other_watts * factor)


ZERO_POWER = PowerDraw(0.0, 0.0, 0.0)


def server_power(spec: ServerSpec, gpu_util: float = 0.0,
                 active_cores: int = 0, disk_active: bool = False) -> PowerDraw:
    """Average power of one server at the given operating point."""
    if not 0.0 <= gpu_util <= 1.0:
        raise ValueError(f"gpu_util must be in [0, 1], got {gpu_util}")
    if active_cores < 0:
        raise ValueError("active_cores must be non-negative")
    gpu = 0.0
    if spec.has_accelerator:
        acc = spec.accelerator
        gpu = spec.accelerator_count * (
            acc.idle_watts + gpu_util * (acc.active_watts - acc.idle_watts)
        )
    cores = min(active_cores, spec.cpu.cores)
    cpu = spec.cpu.base_watts + cores * spec.cpu.per_core_watts
    other = spec.other_watts
    if disk_active and spec.disk is not None:
        other += spec.disk.active_watts
    return PowerDraw(gpu, cpu, other)


def total_power(draws: Iterable[PowerDraw]) -> PowerDraw:
    total = ZERO_POWER
    for draw in draws:
        total = total + draw
    return total


def energy_joules(draw: PowerDraw, seconds: float) -> float:
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    return draw.total_watts * seconds


def ips_per_watt(throughput_ips: float, draw: PowerDraw) -> float:
    """Power efficiency (Fig. 14 / Fig. 18 metric)."""
    if draw.total_watts <= 0:
        raise ValueError("power must be positive")
    return throughput_ips / draw.total_watts


def ips_per_kilojoule(num_images: int, seconds: float, draw: PowerDraw) -> float:
    """Energy efficiency in images per kJ (Fig. 11/16 metric)."""
    energy_kj = energy_joules(draw, seconds) / 1e3
    if energy_kj <= 0:
        raise ValueError("energy must be positive")
    return num_images / energy_kj
