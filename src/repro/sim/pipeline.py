"""Analytic pipeline-throughput models plus a DES cross-check.

The paper's throughput results are bottleneck analyses over multi-stage
pipelines (disk -> CPU -> network -> accelerator).  Two execution
disciplines appear:

* **sequential** — the §3 strawman (Typical/Ideal) runs the stages of each
  batch back-to-back, so throughput is the harmonic composition
  ``1 / sum(1/r_i)``;
* **pipelined** — the NPE's 3-stage pipelining (§5.4) overlaps stages, so
  steady-state throughput is the bottleneck stage ``min(r_i)``.

``simulate_pipeline`` runs the same stage network on the discrete-event
kernel with finite inter-stage buffers; property tests check that its
steady-state rate converges to the analytic value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .engine import Simulation, Store


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: a name and a service rate in items/second."""

    name: str
    rate: float

    @property
    def time_per_item(self) -> float:
        if self.rate == float("inf"):
            return 0.0
        if self.rate <= 0:
            raise ValueError(f"stage {self.name} has non-positive rate")
        return 1.0 / self.rate


def pipelined_throughput(stages: Sequence[Stage]) -> Tuple[float, str]:
    """Steady-state rate and bottleneck name under full stage overlap."""
    if not stages:
        raise ValueError("need at least one stage")
    bottleneck = min(stages, key=lambda s: s.rate)
    return bottleneck.rate, bottleneck.name


def sequential_throughput(stages: Sequence[Stage]) -> float:
    """Rate when each item's stages run back-to-back (no overlap)."""
    if not stages:
        raise ValueError("need at least one stage")
    total_time = sum(s.time_per_item for s in stages)
    if total_time == 0:
        return float("inf")
    return 1.0 / total_time


def makespan(num_items: int, rate: float) -> float:
    """Seconds to push ``num_items`` through at ``rate`` items/s."""
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    if rate <= 0:
        raise ValueError("rate must be positive")
    return num_items / rate


def stage_breakdown(stages: Sequence[Stage], num_items: int) -> dict:
    """Total busy seconds per stage for ``num_items`` items.

    This is what Fig. 6 and Fig. 12 plot: the per-subprocess execution time
    irrespective of overlap.
    """
    return {s.name: num_items * s.time_per_item for s in stages}


def simulate_pipeline(stages: Sequence[Stage], num_items: int,
                      buffer_depth: int = 4,
                      batch: int = 1) -> float:
    """Run the stage network on the DES kernel; returns the makespan.

    Items flow through bounded buffers between stages, so the simulation
    exhibits genuine pipeline fill/drain and back-pressure behaviour rather
    than assuming steady state.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if batch <= 0:
        raise ValueError("batch must be positive")
    sim = Simulation()
    num_batches = (num_items + batch - 1) // batch

    queues: List[Store] = [Store(sim, capacity=buffer_depth) for _ in stages]
    done = Store(sim)

    def source():
        for item in range(num_batches):
            yield queues[0].put(item)

    def worker(index: int, stage: Stage):
        out = queues[index + 1] if index + 1 < len(stages) else done
        service = batch * stage.time_per_item
        while True:
            item = yield queues[index].get()
            if service:
                yield sim.timeout(service)
            yield out.put(item)

    def sink():
        for _ in range(num_batches):
            yield done.get()

    sim.process(source())
    for i, stage in enumerate(stages):
        sim.process(worker(i, stage))
    finish = sim.process(sink())
    sim.run_until_complete(finish)
    return sim.now
