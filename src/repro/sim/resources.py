"""Typed DES resources: disks, network links, CPU pools, accelerators.

These wrap :class:`repro.sim.engine.Resource` with service-time semantics
derived from the hardware catalog, and account busy time for utilisation
and energy integration.
"""

from __future__ import annotations

from typing import Generator, Optional

from .engine import Resource, Simulation
from .specs import AcceleratorSpec, CpuSpec, DiskSpec, NetworkSpec


class TimedResource:
    """A capacity-limited resource whose uses are timed holds."""

    def __init__(self, sim: Simulation, capacity: int, name: str):
        self.sim = sim
        self.name = name
        self._resource = Resource(sim, capacity=capacity, name=name)

    def use(self, duration: float) -> Generator:
        """A process fragment: acquire, hold for ``duration``, release."""
        if duration < 0:
            raise ValueError(f"{self.name}: negative service time {duration}")
        yield self._resource.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self._resource.release()

    def utilization(self, makespan: Optional[float] = None) -> float:
        return self._resource.utilization(makespan or self.sim.now)


class DiskResource(TimedResource):
    """A storage volume; reads are serialised at the volume's bandwidth."""

    def __init__(self, sim: Simulation, spec: DiskSpec, name: str = "disk"):
        super().__init__(sim, capacity=1, name=name)
        self.spec = spec

    def read(self, num_bytes: int) -> Generator:
        yield from self.use(num_bytes / (self.spec.read_mbps * 1e6))

    def write(self, num_bytes: int) -> Generator:
        yield from self.use(num_bytes / (self.spec.write_mbps * 1e6))


class LinkResource(TimedResource):
    """A network link; transfers serialise at the provisioned bandwidth."""

    def __init__(self, sim: Simulation, spec: NetworkSpec, name: str = "link"):
        super().__init__(sim, capacity=1, name=name)
        self.spec = spec
        self.bytes_sent = 0

    def transfer(self, num_bytes: int) -> Generator:
        self.bytes_sent += num_bytes
        yield from self.use(num_bytes / self.spec.bytes_per_s)


class CpuPool(TimedResource):
    """A pool of worker cores performing preprocessing / decompression."""

    def __init__(self, sim: Simulation, spec: CpuSpec, cores: int,
                 name: str = "cpu"):
        super().__init__(sim, capacity=max(1, min(cores, spec.cores)), name=name)
        self.spec = spec

    def preprocess(self, images: int = 1) -> Generator:
        yield from self.use(images / self.spec.preprocess_ips_per_core)

    def decompress(self, compressed_bytes: int) -> Generator:
        yield from self.use(
            compressed_bytes / (self.spec.decompress_mbps_per_core * 1e6)
        )


class AcceleratorResource(TimedResource):
    """A GPU / inference accelerator executing batched kernels."""

    def __init__(self, sim: Simulation, spec: AcceleratorSpec,
                 name: str = "accelerator"):
        super().__init__(sim, capacity=1, name=name)
        self.spec = spec

    def run_flops(self, model_name: str, flops: float) -> Generator:
        rate = self.spec.flops_ips(model_name, flops)
        yield from self.use(1.0 / rate)

    def infer_batch(self, graph, batch_size: int) -> Generator:
        ips = self.spec.inference_ips(graph, batch_size)
        yield from self.use(batch_size / ips)

    def extract_batch(self, graph, split: int, batch_size: int) -> Generator:
        ips = self.spec.fe_ips(graph, split, batch_size)
        yield from self.use(batch_size / ips)
