"""AWS on-demand cost model (§7.2, Fig. 21).

Prices are the us-east-1 on-demand rates of the paper's instance types,
taken from the AWS pricing tool the authors used.  Cost of a run is simply
``sum(instance price) x wall-clock hours``; storage (st1) is billed per
GB-month and identical across configurations, so it cancels out of the
comparison exactly as in the paper.
"""

from __future__ import annotations

from typing import Iterable

from .specs import ServerSpec


def fleet_price_per_hour(servers: Iterable[ServerSpec]) -> float:
    """Total $/hour of a set of running instances."""
    return sum(s.price_per_hour for s in servers)


def run_cost(servers: Iterable[ServerSpec], seconds: float) -> float:
    """Dollar cost of running the fleet for ``seconds``."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    return fleet_price_per_hour(servers) * seconds / 3600.0
