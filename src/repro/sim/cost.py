"""AWS on-demand cost model (§7.2, Fig. 21).

Prices are the us-east-1 on-demand rates of the paper's instance types,
taken from the AWS pricing tool the authors used.  Cost of a run is simply
``sum(instance price) x wall-clock hours``; storage (st1) is billed per
GB-month and identical across configurations, so it cancels out of the
comparison exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .specs import ServerSpec

#: AWS inter-region data transfer, us-east-1 outbound ($/GB) — what a
#: geo-sharded fleet pays for every byte that crosses a shard boundary
INTER_SHARD_PRICE_PER_GB = 0.02


def fleet_price_per_hour(servers: Iterable[ServerSpec]) -> float:
    """Total $/hour of a set of running instances."""
    return sum(s.price_per_hour for s in servers)


def run_cost(servers: Iterable[ServerSpec], seconds: float) -> float:
    """Dollar cost of running the fleet for ``seconds``."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    return fleet_price_per_hour(servers) * seconds / 3600.0


@dataclass(frozen=True)
class ShardedRunCost:
    """Cost breakdown of a geo-sharded run: instances plus transfer.

    Within one shard traffic is free (intra-AZ); bytes crossing shards —
    fan-out model relays, rebalance migrations — bill at the inter-region
    rate.  This is the term that makes O(log N)-depth fan-out
    distribution cheaper than Tuner unicast at fleet scale: both move
    ~N deltas, but the tree's uplink hops leave the Tuner's (single)
    region once per subtree instead of once per store.
    """

    instance_cost: float
    transfer_cost: float

    @property
    def total(self) -> float:
        return self.instance_cost + self.transfer_cost


def sharded_run_cost(store_spec: ServerSpec, num_shards: int,
                     tuner_spec: ServerSpec, seconds: float,
                     cross_shard_bytes: int = 0,
                     price_per_gb: float = INTER_SHARD_PRICE_PER_GB,
                     ) -> ShardedRunCost:
    """Price a sharded topology: N store shards + one Tuner + transfer.

    ``cross_shard_bytes`` is read straight off the byte-accounted fabric
    (e.g. ``bytes_of_kind("model-delta") + bytes_of_kind("rebalance")``),
    so the bench's unicast-vs-fanout comparison prices exactly the bytes
    each strategy actually moved.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if cross_shard_bytes < 0:
        raise ValueError("cross_shard_bytes must be non-negative")
    if price_per_gb < 0:
        raise ValueError("price_per_gb must be non-negative")
    instances = [store_spec] * num_shards + [tuner_spec]
    return ShardedRunCost(
        instance_cost=run_cost(instances, seconds),
        transfer_cost=cross_shard_bytes / 2**30 * price_per_gb,
    )
