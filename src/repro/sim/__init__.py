"""``repro.sim`` — discrete-event datacenter simulator and hardware models.

Substitutes for the paper's AWS EC2 testbed: a DES kernel, typed resources,
a calibrated hardware catalog (accelerators, CPUs, disks, networks, EC2
instance types), a component power model, and the AWS cost model.
"""

from .cluster_sim import (
    ClusterSimResult,
    MixedWorkloadResult,
    simulate_ftdmp_finetune,
    simulate_mixed_workload,
    simulate_offline_inference,
)
from .cost import (INTER_SHARD_PRICE_PER_GB, ShardedRunCost,
                   fleet_price_per_hour, run_cost, sharded_run_cost)
from .engine import Event, Process, Resource, Simulation, Store, all_of
from .pipeline import (
    Stage,
    makespan,
    pipelined_throughput,
    sequential_throughput,
    simulate_pipeline,
    stage_breakdown,
)
from .power import (
    PowerDraw,
    ZERO_POWER,
    energy_joules,
    ips_per_kilojoule,
    ips_per_watt,
    server_power,
    total_power,
)
from .resources import (
    AcceleratorResource,
    CpuPool,
    DiskResource,
    LinkResource,
    TimedResource,
)
from .specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    DEFAULT_DATASET_IMAGES,
    G4DN_4XLARGE,
    G4DN_4XLARGE_NOGPU,
    HOST_CPU,
    INF1_2XLARGE,
    INFERENCE_MEM_MB_PER_IMAGE,
    LABEL_BYTES,
    NEURONCORE_V1,
    NVLINK,
    PCIE,
    P3_2XLARGE,
    P3_8XLARGE,
    PREPROCESSED_BYTES,
    PREPROCESSED_DEFLATE_RATIO,
    RAW_IMAGE_BYTES,
    SERVERS,
    ST1_RAID,
    STORAGE_CPU,
    TEN_GBE,
    TESLA_T4,
    TESLA_V100,
    AcceleratorSpec,
    CpuSpec,
    DiskSpec,
    NetworkSpec,
    ServerSpec,
)

__all__ = [
    "Simulation", "Event", "Process", "Resource", "Store", "all_of",
    "Stage", "pipelined_throughput", "sequential_throughput", "makespan",
    "stage_breakdown", "simulate_pipeline",
    "PowerDraw", "ZERO_POWER", "server_power", "total_power",
    "energy_joules", "ips_per_watt", "ips_per_kilojoule",
    "fleet_price_per_hour", "run_cost", "sharded_run_cost",
    "ShardedRunCost", "INTER_SHARD_PRICE_PER_GB",
    "ClusterSimResult", "MixedWorkloadResult", "simulate_offline_inference",
    "simulate_ftdmp_finetune", "simulate_mixed_workload",
    "TimedResource", "DiskResource", "LinkResource", "CpuPool",
    "AcceleratorResource",
    "AcceleratorSpec", "CpuSpec", "DiskSpec", "NetworkSpec", "ServerSpec",
    "TESLA_T4", "TESLA_V100", "NEURONCORE_V1",
    "HOST_CPU", "STORAGE_CPU", "ST1_RAID", "TEN_GBE", "PCIE", "NVLINK",
    "P3_8XLARGE", "P3_2XLARGE", "G4DN_4XLARGE", "G4DN_4XLARGE_NOGPU",
    "INF1_2XLARGE", "SERVERS",
    "RAW_IMAGE_BYTES", "PREPROCESSED_BYTES", "COMPRESSED_PREPROCESSED_BYTES",
    "PREPROCESSED_DEFLATE_RATIO", "LABEL_BYTES", "DEFAULT_DATASET_IMAGES",
    "INFERENCE_MEM_MB_PER_IMAGE",
]
