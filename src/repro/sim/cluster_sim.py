"""Event-driven NDPipe cluster simulation.

The figure drivers use closed-form pipeline models; this module runs the
same fleets on the discrete-event kernel with explicit resources — per
PipeStore a disk, a 2-core decompression pool, and an accelerator; a
shared front-end link into the Tuner; the Tuner's GPU — with genuine
queueing, batching, pipeline fill/drain, and run-boundary barriers.

Property tests assert the DES results converge to the analytic models
(`tests/sim/test_cluster_sim.py`), which is the strongest evidence the
closed forms used throughout the figure drivers are right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..models.graph import ModelGraph
from .engine import Event, Simulation, Store, all_of
from .resources import AcceleratorResource, CpuPool, DiskResource, LinkResource
from .specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    G4DN_4XLARGE,
    P3_2XLARGE,
    NetworkSpec,
    ServerSpec,
    TEN_GBE,
)

_DECOMPRESS_CORES = 2


@dataclass(frozen=True)
class ClusterSimResult:
    """Outcome of one simulated campaign."""

    makespan_s: float
    images: int
    feature_bytes: int
    #: resource-name -> busy fraction over the makespan; lets the APO
    #: balance story (§5.3) be checked directly: at the APO pick the
    #: Tuner GPU and store accelerators are near-equally utilised
    utilization: Dict[str, float] = None

    @property
    def throughput_ips(self) -> float:
        return self.images / self.makespan_s

    def utilization_of(self, prefix: str) -> float:
        """Mean utilisation across resources whose name starts with prefix."""
        if not self.utilization:
            raise ValueError("no utilisation was recorded")
        values = [v for k, v in self.utilization.items()
                  if k.startswith(prefix)]
        if not values:
            raise KeyError(f"no resource matches prefix {prefix!r}")
        return sum(values) / len(values)


@dataclass(frozen=True)
class _Batch:
    run: int
    size: int
    #: None = whole-model inference; otherwise FE through `split` stages
    split: "int | None" = None
    #: ship the extracted features over the Tuner link
    ship_features: bool = False
    #: which logical job this batch belongs to ("inference" / "finetune")
    job: str = "finetune"


class _StoreNode:
    """One PipeStore's resources plus its NPE stage pipeline.

    Stages (disk read -> decompress x2 cores -> accelerator -> optional
    link send) are independent processes joined by bounded queues, so
    they overlap exactly like the real NPE (§5.4).
    """

    def __init__(self, sim: Simulation, server: ServerSpec, name: str,
                 queue_depth: int):
        self.sim = sim
        self.name = name
        self.disk = DiskResource(sim, server.disk, name=f"{name}-disk")
        self.cpu = CpuPool(sim, server.cpu, cores=_DECOMPRESS_CORES,
                           name=f"{name}-cpu")
        self.accelerator = AcceleratorResource(sim, server.accelerator,
                                               name=f"{name}-accel")
        self.q_read = Store(sim, capacity=queue_depth)
        self.q_cpu = Store(sim, capacity=queue_depth)

    def start(self, graph: ModelGraph, batches: List[_Batch], link,
              on_batch_done) -> Event:
        """Launch the stage processes; returns the last stage's Process.

        Each batch carries its own job shape: whole-model inference
        (``split is None``) or feature extraction through ``batch.split``
        (optionally shipping the activations over ``link``).
        """
        sim = self.sim

        def reader():
            for batch in batches:
                yield from self.disk.read(
                    COMPRESSED_PREPROCESSED_BYTES * batch.size)
                yield self.q_read.put(batch)

        def decompress_worker():
            while True:
                batch = yield self.q_read.get()
                yield from self.cpu.decompress(
                    COMPRESSED_PREPROCESSED_BYTES * batch.size)
                yield self.q_cpu.put(batch)

        def accelerator_stage():
            for _ in range(len(batches)):
                batch = yield self.q_cpu.get()
                if batch.split is None:
                    yield from self.accelerator.infer_batch(graph, batch.size)
                else:
                    yield from self.accelerator.extract_batch(
                        graph, batch.split, batch.size)
                if batch.ship_features and link is not None:
                    feature_bytes = graph.partition_point(
                        batch.split).feature_bytes
                    yield from link.transfer(feature_bytes * batch.size)
                on_batch_done(batch)

        sim.process(reader())
        for _ in range(_DECOMPRESS_CORES):
            sim.process(decompress_worker())
        return sim.process(accelerator_stage())


def _collect_utilization(nodes: List["_StoreNode"], sim: Simulation,
                         ) -> Dict[str, float]:
    utilization: Dict[str, float] = {}
    for node in nodes:
        utilization[node.disk.name] = node.disk.utilization(sim.now)
        utilization[node.cpu.name] = node.cpu.utilization(sim.now)
        utilization[node.accelerator.name] = node.accelerator.utilization(sim.now)
    return utilization


def _plan_batches(images: int, batch_size: int, run: int = 0,
                  split=None, ship_features: bool = False,
                  job: str = "finetune") -> List[_Batch]:
    batches = []
    remaining = images
    while remaining > 0:
        size = min(batch_size, remaining)
        batches.append(_Batch(run=run, size=size, split=split,
                              ship_features=ship_features, job=job))
        remaining -= size
    return batches


def _interleave(a: List[_Batch], b: List[_Batch]) -> List[_Batch]:
    """Round-robin merge of two batch streams (fair sharing at the NPE)."""
    merged: List[_Batch] = []
    for i in range(max(len(a), len(b))):
        if i < len(a):
            merged.append(a[i])
        if i < len(b):
            merged.append(b[i])
    return merged


def _shard(total: int, parts: int) -> List[int]:
    base = total // parts
    shares = [base] * parts
    for i in range(total - base * parts):
        shares[i] += 1
    return shares


def simulate_offline_inference(graph: ModelGraph, num_stores: int,
                               images: int, batch_size: int = 128,
                               store_server: ServerSpec = G4DN_4XLARGE,
                               queue_depth: int = 4,
                               failed_stores: int = 0) -> ClusterSimResult:
    """DES run of an offline-inference campaign across PipeStores.

    ``failed_stores`` models a degraded fleet: that many stores are down
    and their shards are re-sharded over the survivors (what the cluster's
    re-ingest path does), so the campaign still covers every image at the
    cost of a longer makespan.
    """
    if num_stores < 1 or images < 1:
        raise ValueError("need at least one store and one image")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0 <= failed_stores < num_stores:
        raise ValueError("failed_stores must leave at least one survivor")
    survivors = num_stores - failed_stores
    sim = Simulation()
    finishers = []
    nodes = []
    for index, shard in enumerate(_shard(images, survivors)):
        if shard == 0:
            continue
        node = _StoreNode(sim, store_server, f"store{index}", queue_depth)
        nodes.append(node)
        finishers.append(node.start(
            graph,
            _plan_batches(shard, batch_size, split=None, job="inference"),
            link=None, on_batch_done=lambda b: None,
        ))
    gate = all_of(sim, finishers)
    while not gate.triggered:
        sim.run_step()
    return ClusterSimResult(makespan_s=sim.now, images=images,
                            feature_bytes=0,
                            utilization=_collect_utilization(nodes, sim))


def simulate_ftdmp_finetune(graph: ModelGraph, num_stores: int, images: int,
                            num_runs: int = 1, batch_size: int = 512,
                            tuner_epochs: int = 1,
                            store_server: ServerSpec = G4DN_4XLARGE,
                            tuner_server: ServerSpec = P3_2XLARGE,
                            network: NetworkSpec = TEN_GBE,
                            queue_depth: int = 4) -> ClusterSimResult:
    """DES run of (optionally pipelined) FT-DMP fine-tuning.

    PipeStores stream through all runs back to back; the Tuner trains a
    run's classifier only after every store has shipped that run's
    features (the Fig. 10 barrier), overlapping with extraction of the
    next run.
    """
    if num_stores < 1 or images < 1:
        raise ValueError("need at least one store and one image")
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    sim = Simulation()
    split = graph.num_partition_points() - 2
    feature_bytes = graph.partition_point(split).feature_bytes
    link = LinkResource(sim, network, name="tuner-link")
    tuner_gpu = AcceleratorResource(sim, tuner_server.accelerator,
                                    name="tuner-gpu")
    tuner_rate = tuner_server.accelerator.tail_train_ips(graph, split)

    run_sizes = _shard(images, num_runs)
    # how many batches each run expects across the whole fleet
    expected: Dict[int, int] = {}
    per_store_batches: List[List[_Batch]] = [[] for _ in range(num_stores)]
    for run_index, run_images in enumerate(run_sizes):
        for store_index, shard in enumerate(_shard(run_images, num_stores)):
            batches = _plan_batches(shard, batch_size, run=run_index,
                                    split=split, ship_features=True)
            per_store_batches[store_index].extend(batches)
            expected[run_index] = expected.get(run_index, 0) + len(batches)

    run_done = [sim.event() for _ in range(num_runs)]
    arrived: Dict[int, int] = {k: 0 for k in range(num_runs)}

    def on_batch_done(batch: _Batch) -> None:
        arrived[batch.run] += 1
        if arrived[batch.run] == expected[batch.run]:
            run_done[batch.run].trigger()

    nodes = []
    for store_index in range(num_stores):
        batches = per_store_batches[store_index]
        if not batches:
            continue
        node = _StoreNode(sim, store_server, f"store{store_index}",
                          queue_depth)
        nodes.append(node)
        node.start(graph, batches, link=link, on_batch_done=on_batch_done)

    def tuner_process():
        for run_index, run_images in enumerate(run_sizes):
            if expected.get(run_index, 0) == 0:
                continue
            yield run_done[run_index]
            service = tuner_epochs * run_images / tuner_rate
            yield from tuner_gpu.use(service)

    finish = sim.process(tuner_process())
    sim.run_until_complete(finish)
    utilization = _collect_utilization(nodes, sim)
    utilization["tuner-gpu"] = tuner_gpu.utilization(sim.now)
    utilization["tuner-link"] = link.utilization(sim.now)
    return ClusterSimResult(makespan_s=sim.now, images=images,
                            feature_bytes=feature_bytes * images,
                            utilization=utilization)


@dataclass(frozen=True)
class MixedWorkloadResult:
    """Per-job outcomes when inference and fine-tuning share the fleet."""

    inference: ClusterSimResult
    finetune: ClusterSimResult
    #: per-job makespans when each job had the fleet to itself
    inference_solo_s: float
    finetune_solo_s: float

    @property
    def inference_slowdown(self) -> float:
        return self.inference.makespan_s / self.inference_solo_s

    @property
    def finetune_slowdown(self) -> float:
        return self.finetune.makespan_s / self.finetune_solo_s


def simulate_mixed_workload(graph: ModelGraph, num_stores: int,
                            inference_images: int, finetune_images: int,
                            batch_size: int = 128,
                            finetune_batch_size: int = 512,
                            tuner_epochs: int = 1,
                            store_server: ServerSpec = G4DN_4XLARGE,
                            tuner_server: ServerSpec = P3_2XLARGE,
                            network: NetworkSpec = TEN_GBE,
                            queue_depth: int = 4) -> MixedWorkloadResult:
    """Offline inference and FT-DMP fine-tuning contending for one fleet.

    The paper's PipeStore runs both near-data jobs on the same hardware
    (§5); when a relabelling campaign overlaps a continuous-training round
    they contend for every store's disk, CPU pool, and accelerator.  Both
    jobs start at t = 0, their batch streams interleave fairly at each
    store's NPE, and the per-job makespans are reported next to what each
    job would have taken alone.
    """
    if num_stores < 1:
        raise ValueError("need at least one PipeStore")
    if inference_images < 1 or finetune_images < 1:
        raise ValueError("both workloads need at least one image")
    sim = Simulation()
    split = graph.num_partition_points() - 2
    feature_bytes = graph.partition_point(split).feature_bytes
    link = LinkResource(sim, network, name="tuner-link")
    tuner_gpu = AcceleratorResource(sim, tuner_server.accelerator,
                                    name="tuner-gpu")
    tuner_rate = tuner_server.accelerator.tail_train_ips(graph, split)

    nodes = []
    job_last_done = {"inference": 0.0, "finetune": 0.0}
    job_remaining = {"inference": 0, "finetune": 0}
    ft_features_done = sim.event()

    plans = []
    for inf_shard, ft_shard in zip(_shard(inference_images, num_stores),
                                   _shard(finetune_images, num_stores)):
        inf_batches = _plan_batches(inf_shard, batch_size, split=None,
                                    job="inference")
        ft_batches = _plan_batches(ft_shard, finetune_batch_size,
                                   split=split, ship_features=True,
                                   job="finetune")
        job_remaining["inference"] += len(inf_batches)
        job_remaining["finetune"] += len(ft_batches)
        plans.append(_interleave(inf_batches, ft_batches))

    def on_batch_done(batch: _Batch) -> None:
        job_remaining[batch.job] -= 1
        job_last_done[batch.job] = sim.now
        if batch.job == "finetune" and job_remaining["finetune"] == 0:
            ft_features_done.trigger()

    for index, batches in enumerate(plans):
        if not batches:
            continue
        node = _StoreNode(sim, store_server, f"store{index}", queue_depth)
        nodes.append(node)
        node.start(graph, batches, link=link, on_batch_done=on_batch_done)

    def tuner_process():
        yield ft_features_done
        yield from tuner_gpu.use(tuner_epochs * finetune_images / tuner_rate)

    finish = sim.process(tuner_process())
    sim.run_until_complete(finish)
    ft_makespan = sim.now
    utilization = _collect_utilization(nodes, sim)
    utilization["tuner-gpu"] = tuner_gpu.utilization(sim.now)
    utilization["tuner-link"] = link.utilization(sim.now)

    inference_result = ClusterSimResult(
        makespan_s=job_last_done["inference"], images=inference_images,
        feature_bytes=0, utilization=utilization,
    )
    finetune_result = ClusterSimResult(
        makespan_s=ft_makespan, images=finetune_images,
        feature_bytes=feature_bytes * finetune_images,
        utilization=utilization,
    )
    solo_inf = simulate_offline_inference(
        graph, num_stores, inference_images, batch_size, store_server,
        queue_depth).makespan_s
    solo_ft = simulate_ftdmp_finetune(
        graph, num_stores, finetune_images, 1, finetune_batch_size,
        tuner_epochs, store_server, tuner_server, network,
        queue_depth).makespan_s
    return MixedWorkloadResult(
        inference=inference_result, finetune=finetune_result,
        inference_solo_s=solo_inf, finetune_solo_s=solo_ft,
    )
