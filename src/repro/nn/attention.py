"""Transformer building blocks for the tiny ViT model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import GELU, Dropout, LayerNorm, Linear, _default_rng
from .module import Module, Parameter
from .tensor import Tensor, softmax


class MultiHeadSelfAttention(Module):
    """Standard scaled-dot-product self-attention over (N, T, D) inputs."""

    def __init__(self, dim: int, num_heads: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = _default_rng(rng)
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.qkv = Linear(dim, dim * 3, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        n, t, d = x.shape
        h, hd = self.num_heads, self.head_dim
        qkv = self.qkv(x)  # (n, t, 3d)
        qkv = qkv.reshape(n, t, 3, h, hd).transpose(2, 0, 3, 1, 4)  # (3, n, h, t, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))
        attn = softmax(scores, axis=-1)
        out = attn @ v  # (n, h, t, hd)
        out = out.transpose(0, 2, 1, 3).reshape(n, t, d)
        return self.proj(out)


class TransformerBlock(Module):
    """Pre-norm transformer encoder block (attention + MLP)."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = _default_rng(rng)
        hidden = int(dim * mlp_ratio)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        x = x + self.drop(self.fc2(self.act(self.fc1(self.norm2(x)))))
        return x


class PatchEmbedding(Module):
    """Flattened-patch linear embedding, the ViT stem."""

    def __init__(self, image_size: int, patch_size: int, in_channels: int, dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image size must be divisible by patch size")
        rng = _default_rng(rng)
        self.patch_size = patch_size
        self.num_patches = (image_size // patch_size) ** 2
        self.proj = Linear(in_channels * patch_size * patch_size, dim, rng=rng)
        self.pos = Parameter(rng.normal(0, 0.02, size=(1, self.num_patches + 1, dim)))
        self.cls_token = Parameter(np.zeros((1, 1, dim)))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        p = self.patch_size
        gh, gw = h // p, w // p
        # (n, c, gh, p, gw, p) -> (n, gh, gw, c, p, p) -> (n, gh*gw, c*p*p)
        x = x.reshape(n, c, gh, p, gw, p).transpose(0, 2, 4, 1, 3, 5)
        x = x.reshape(n, gh * gw, c * p * p)
        tokens = self.proj(x)  # (n, patches, dim)
        cls = Tensor(np.zeros((n, 1, tokens.shape[-1]))) + self.cls_token
        from .tensor import concat

        out = concat([cls, tokens], axis=1)
        return out + self.pos
