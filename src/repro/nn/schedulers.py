"""Learning-rate schedules for the training engines.

Full training from scratch (the paper's biweekly gold standard, 90 epochs
at batch 128) conventionally uses step or cosine decay with warmup; these
schedulers plug into :func:`repro.train.fulltrain.full_train`.
"""

from __future__ import annotations

import math
from typing import Optional

from .optim import Optimizer


class Scheduler:
    """Base class: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer, base_lr: Optional[float] = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        if self.base_lr <= 0:
            raise ValueError("base learning rate must be positive")
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns (and applies) the new learning rate."""
        self.epoch += 1
        lr = self.lr_at(self.epoch)
        if lr <= 0:
            raise ValueError(f"schedule produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr


class StepLR(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_epochs``."""

    def __init__(self, optimizer: Optimizer, step_epochs: int,
                 gamma: float = 0.1, base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if step_epochs < 1:
            raise ValueError("step_epochs must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_epochs = step_epochs
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_epochs)


class CosineLR(Scheduler):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 1e-6, base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        if min_lr <= 0:
            raise ValueError("min_lr must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress))


class WarmupLR(Scheduler):
    """Linear warmup for ``warmup_epochs``, then delegate to ``after``."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after: Optional[Scheduler] = None,
                 base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def lr_at(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        if self.after is not None:
            return self.after.lr_at(epoch - self.warmup_epochs)
        return self.base_lr


def clip_gradients(params, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for grad in grads:
        total += float((grad * grad).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm
