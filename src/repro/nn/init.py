"""Weight initialisation schemes (Kaiming / Xavier), seedable."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He initialisation for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot initialisation for tanh/linear/attention layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def conv_fan_in(in_channels: int, kernel: int) -> int:
    return in_channels * kernel * kernel
