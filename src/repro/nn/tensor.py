"""A small reverse-mode autograd engine over numpy arrays.

This is the DNN substrate for the NDPipe reproduction: the paper's models
(ResNet50, InceptionV3, ShuffleNetV2, ResNeXt101, ViT) are built as tiny
runnable variants on top of this engine, and the FT-DMP training strategy
(feature extraction on PipeStores, classifier training on the Tuner) runs
real forward/backward passes through it.

The design is deliberately explicit: every differentiable primitive creates
a ``Tensor`` node holding a closure that accumulates gradients into its
parents.  Broadcasting follows numpy semantics; gradients of broadcast
operands are reduced back to the operand's shape by :func:`_unbroadcast`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from typing import Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64

_GRAD_MODE = threading.local()


def grad_enabled() -> bool:
    """Whether new ops record autograd graph nodes (thread-local)."""
    return getattr(_GRAD_MODE, "enabled", True)


@contextmanager
def no_grad():
    """Disable graph construction for forward-only code.

    The data math is untouched — every op computes the exact same numpy
    arrays — only the backward closures and parent links are skipped, so
    inference paths (classify, feature extraction) avoid building and
    retaining a graph they never traverse.  Thread-local, reentrant.
    """
    previous = grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def inference_mode():
    """:func:`no_grad` when the vectorized-autograd fast path is on.

    Forward-only call sites (classify, feature extraction, offline
    relabel) wrap themselves in this; under ``scalar_mode()`` it is a
    null context so the historical graph-building behaviour is preserved
    for perf A/B runs.
    """
    from ..fastpath import flags  # local import: fastpath has no nn dep

    return no_grad() if flags().vectorized_autograd else nullcontext()


def _as_array(data: ArrayLike) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype.kind in "fc":
            return data
        return data.astype(_DEFAULT_DTYPE)
    return np.asarray(data, dtype=_DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum the leading axes that broadcasting added.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum the axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward=None,
        name: Optional[str] = None,
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (i.e. the tensor is treated as a scalar
        loss, or the gradient of an elementwise sum).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        # Iterative topological sort to avoid recursion limits on deep nets.
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Primitive ops
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data, parents, backward) -> "Tensor":
        requires = grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else ())
        if requires:
            out._backward = backward
        return out

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other):
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim >= 2:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                else:
                    g = np.outer(grad, other.data) if grad.ndim else grad * other.data
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim >= 2:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                else:
                    g = np.outer(self.data, grad)
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def sqrt(self):
        return self ** 0.5

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis: int, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = self.data == expanded
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g / counts)

        return self._make(out_data, (self,), backward)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def pad2d(self, pad: int):
        """Zero-pad the last two axes of an (N, C, H, W) tensor."""
        if pad == 0:
            return self
        widths = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, widths)

        def backward(grad):
            if self.requires_grad:
                sl = tuple(
                    slice(None) if i < self.ndim - 2 else slice(pad, -pad)
                    for i in range(self.ndim)
                )
                self._accumulate(grad[sl])

        return self._make(out_data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    requires = grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires,
                 _parents=tuple(tensors) if requires else ())

    if requires:
        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if not tensor.requires_grad:
                    continue
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(sl)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [Tensor._coerce(t) for t in tensors]
    expanded = []
    for t in tensors:
        shape = list(t.shape)
        shape.insert(axis % (t.ndim + 1), 1)
        expanded.append(t.reshape(*shape))
    return concat(expanded, axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax as a fused primitive."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    sums = exps.sum(axis=axis, keepdims=True)
    out_data = shifted - np.log(sums)
    softmax = exps / sums

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return x._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(x, axis=axis).exp()


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    a, b = Tensor._coerce(a), Tensor._coerce(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return a._make(out_data, (a, b), backward)


def gelu(x: Tensor) -> Tensor:
    """GELU via the tanh approximation (the ViT block activation)."""
    c = np.sqrt(2.0 / np.pi)
    inner = (x + x * x * x * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)
