"""Optimisers: SGD with momentum/weight decay, and Adam.

Optimisers skip parameters whose ``requires_grad`` is False, which is how
fine-tuning trains only the classifier while the frozen feature extractor
keeps its weights bit-identical (tested in ``tests/core/test_ftdmp.py``).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
