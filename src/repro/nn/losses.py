"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, log_softmax


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``labels``."""
    labels = np.asarray(labels)
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), labels]
    return -picked.mean()


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of raw logits / probabilities."""
    return float((logits.argmax(axis=-1) == labels).mean())


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy: fraction of rows whose label is among the k largest logits."""
    if k >= logits.shape[-1]:
        return 1.0
    topk = np.argpartition(logits, -k, axis=-1)[:, -k:]
    return float((topk == labels[:, None]).any(axis=-1).mean())
