"""Convolution / pooling primitives with hand-written backward passes.

These are registered as autograd nodes on :class:`repro.nn.tensor.Tensor`.
``im2col``/``col2im`` use a small loop over kernel offsets (kernels are
3x3-7x7) and vectorise over batch and spatial dimensions, which is the
standard trade-off for a numpy implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..fastpath import flags
from .tensor import Tensor


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> Tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, C*kh*kw, OH*OW) patch columns."""
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_stop = i + stride * oh
        for j in range(kw):
            j_stop = j + stride * ow
            cols[:, :, i, j] = x[:, :, i:i_stop:stride, j:j_stop:stride]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch columns back to (N, C, H, W), accumulating overlaps."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_stop = i + stride * oh
        for j in range(kw):
            j_stop = j + stride * ow
            padded[:, :, i:i_stop:stride, j:j_stop:stride] += cols[:, :, i, j]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2D convolution.  ``weight`` has shape (F, C/groups, KH, KW)."""
    n, c, h, w = x.shape
    f, c_per_group, kh, kw = weight.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"channel mismatch: input has {c} channels, weight expects "
            f"{c_per_group * groups} ({groups} groups x {c_per_group})"
        )
    if f % groups:
        raise ValueError(f"output channels {f} not divisible by groups {groups}")

    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    f_per_group = f // groups

    if groups == c and f == c and c_per_group == 1:
        return _depthwise_conv2d(x, weight, stride, padding, oh, ow)

    if flags().vectorized_autograd:
        return _conv2d_matmul(x, weight, stride, padding, groups, oh, ow)
    return _conv2d_grouped(x, weight, stride, padding, groups, oh, ow)


def _conv2d_grouped(x: Tensor, weight: Tensor, stride: int, padding: int,
                    groups: int, oh: int, ow: int) -> Tensor:
    """Scalar reference: per-group loop, one im2col and GEMM per group.

    Performs the exact arithmetic of :func:`_conv2d_matmul` group by
    group (same contraction element order), so the vectorized path is
    provably bit-identical to this baseline
    (``tests/nn/test_functional_equivalence.py``).
    """
    n, c, h, w = x.shape
    f, c_per_group, kh, kw = weight.shape
    f_per_group = f // groups
    k = c_per_group * kh * kw
    p = oh * ow

    cols_list = []
    outs = np.empty((n, f, p), dtype=x.data.dtype)
    w2 = weight.data.reshape(groups, f_per_group, k)
    for g in range(groups):
        xg = x.data[:, g * c_per_group:(g + 1) * c_per_group]
        cols, _, _ = im2col(xg, kh, kw, stride, padding)
        cols_list.append(cols)
        outs[:, g * f_per_group:(g + 1) * f_per_group] = np.matmul(w2[g], cols)
    out_data = outs.reshape(n, f, oh, ow)

    def backward(grad):
        grad = grad.reshape(n, f, p)
        if weight.requires_grad:
            dw = np.empty_like(weight.data).reshape(groups, f_per_group, k)
            for g in range(groups):
                gg = grad[:, g * f_per_group:(g + 1) * f_per_group]
                gf = gg.transpose(1, 0, 2).reshape(f_per_group, n * p)
                ck = cols_list[g].transpose(1, 0, 2).reshape(k, n * p)
                dw[g] = np.matmul(gf, ck.T)
            weight._accumulate(dw.reshape(weight.shape))
        if x.requires_grad:
            dx = np.empty_like(x.data)
            xg_shape = (n, c_per_group, h, w)
            for g in range(groups):
                gg = grad[:, g * f_per_group:(g + 1) * f_per_group]
                dcols = np.matmul(w2[g].T, gg)
                dx[:, g * c_per_group:(g + 1) * c_per_group] = col2im(
                    dcols, xg_shape, kh, kw, stride, padding
                )
            x._accumulate(dx)

    return x._make(out_data, (x, weight), backward)


def _conv2d_matmul(x: Tensor, weight: Tensor, stride: int, padding: int,
                   groups: int, oh: int, ow: int) -> Tensor:
    """Vectorized conv: one im2col, one batched GEMM per contraction.

    Each per-(sample, group) GEMM sees the same operands in the same
    element order as the per-group loop of :func:`_conv2d_grouped`, so
    outputs and gradients are bit-identical to the scalar reference —
    the win is one unfold and one BLAS dispatch instead of ``groups`` of
    each.
    """
    n, c, h, w = x.shape
    f, c_per_group, kh, kw = weight.shape
    f_per_group = f // groups
    k = c_per_group * kh * kw
    p = oh * ow

    # im2col keeps channels outermost, so group g's columns are the
    # contiguous slice [g*k:(g+1)*k] — one unfold serves every group.
    # The GEMM promotes float32 columns to float64; results are cast back
    # to the input dtype exactly like the reference's assignment into its
    # input-dtype output buffer.
    cols, _, _ = im2col(x.data, kh, kw, stride, padding)
    if groups == 1:
        w2 = weight.data.reshape(f, k)
        out = np.matmul(w2, cols)
    else:
        cols_g = cols.reshape(n, groups, k, p)
        w2 = weight.data.reshape(groups, f_per_group, k)
        out = np.matmul(w2, cols_g)
    out_data = out.astype(x.data.dtype, copy=False).reshape(n, f, oh, ow)

    def backward(grad):
        grad = grad.reshape(n, f, p)
        if groups == 1:
            if weight.requires_grad:
                gf = grad.transpose(1, 0, 2).reshape(f, n * p)
                ck = cols.transpose(1, 0, 2).reshape(k, n * p)
                weight._accumulate(np.matmul(gf, ck.T).reshape(weight.shape))
            if x.requires_grad:
                dcols = np.matmul(w2.T, grad)
                dx = col2im(dcols, x.shape, kh, kw, stride, padding)
                x._accumulate(dx.astype(x.data.dtype, copy=False))
        else:
            gg = grad.reshape(n, groups, f_per_group, p)
            if weight.requires_grad:
                gf = gg.transpose(1, 2, 0, 3).reshape(groups, f_per_group, n * p)
                ck = cols_g.transpose(1, 2, 0, 3).reshape(groups, k, n * p)
                dw = np.matmul(gf, ck.swapaxes(1, 2))
                weight._accumulate(dw.reshape(weight.shape))
            if x.requires_grad:
                dcols = np.matmul(w2.swapaxes(1, 2), gg)
                dx = col2im(dcols.reshape(n, c * kh * kw, p),
                            x.shape, kh, kw, stride, padding)
                x._accumulate(dx.astype(x.data.dtype, copy=False))

    return x._make(out_data, (x, weight), backward)


def _depthwise_conv2d(x: Tensor, weight: Tensor, stride: int, padding: int,
                      oh: int, ow: int) -> Tensor:
    """Fast path for depthwise convolution (groups == channels).

    Loops over the kh x kw kernel offsets (<= 9 iterations) instead of over
    channels, which matters for ShuffleNet-style nets with many channels.
    """
    n, c, h, w = x.shape
    _f, _one, kh, kw = weight.shape
    if padding:
        xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                             (padding, padding)))
    else:
        xp = x.data
    out_data = np.zeros((n, c, oh, ow), dtype=x.data.dtype)
    for i in range(kh):
        i_stop = i + stride * oh
        for j in range(kw):
            j_stop = j + stride * ow
            out_data += (xp[:, :, i:i_stop:stride, j:j_stop:stride]
                         * weight.data[None, :, 0, i, j, None, None])

    def backward(grad):
        if weight.requires_grad:
            dw = np.zeros_like(weight.data)
            for i in range(kh):
                i_stop = i + stride * oh
                for j in range(kw):
                    j_stop = j + stride * ow
                    patch = xp[:, :, i:i_stop:stride, j:j_stop:stride]
                    dw[:, 0, i, j] = (patch * grad).sum(axis=(0, 2, 3))
            weight._accumulate(dw)
        if x.requires_grad:
            dxp = np.zeros_like(xp)
            for i in range(kh):
                i_stop = i + stride * oh
                for j in range(kw):
                    j_stop = j + stride * ow
                    dxp[:, :, i:i_stop:stride, j:j_stop:stride] += (
                        grad * weight.data[None, :, 0, i, j, None, None]
                    )
            if padding:
                dxp = dxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(dxp)

    return x._make(out_data, (x, weight), backward)


def max_pool2d(x: Tensor, kernel: int, stride: int = None, padding: int = 0) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    if padding:
        data = np.pad(
            x.data,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=-np.inf,
        )
    else:
        data = x.data
    cols, oh, ow = _pool_cols(data, kernel, stride)
    # cols: (n, c, k*k, oh*ow)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2)[:, :, 0, :]
    out_data = out_data.reshape(n, c, oh, ow)

    def backward(grad):
        if not x.requires_grad:
            return
        grad = grad.reshape(n, c, 1, oh * ow)
        dcols = np.zeros_like(cols)
        np.put_along_axis(dcols, argmax[:, :, None, :], grad, axis=2)
        dx = _pool_uncols(dcols, data.shape, kernel, stride, oh, ow)
        if padding:
            dx = dx[:, :, padding:-padding, padding:-padding]
        x._accumulate(dx)

    return x._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int = None, padding: int = 0) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    if padding:
        data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        data = x.data
    cols, oh, ow = _pool_cols(data, kernel, stride)
    out_data = cols.mean(axis=2).reshape(n, c, oh, ow)

    def backward(grad):
        if not x.requires_grad:
            return
        grad = grad.reshape(n, c, 1, oh * ow) / (kernel * kernel)
        dcols = np.broadcast_to(grad, cols.shape).copy()
        dx = _pool_uncols(dcols, data.shape, kernel, stride, oh, ow)
        if padding:
            dx = dx[:, :, padding:-padding, padding:-padding]
        x._accumulate(dx)

    return x._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def _pool_cols(data: np.ndarray, kernel: int, stride: int) -> Tuple[np.ndarray, int, int]:
    n, c, h, w = data.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=data.dtype)
    for i in range(kernel):
        for j in range(kernel):
            cols[:, :, i, j] = data[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride]
    return cols.reshape(n, c, kernel * kernel, oh * ow), oh, ow


def _pool_uncols(
    dcols: np.ndarray,
    data_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    n, c, h, w = data_shape
    dcols = dcols.reshape(n, c, kernel, kernel, oh, ow)
    dx = np.zeros(data_shape, dtype=dcols.dtype)
    for i in range(kernel):
        for j in range(kernel):
            dx[:, :, i:i + stride * oh:stride, j:j + stride * ow:stride] += dcols[:, :, i, j]
    return dx


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep
    return x * Tensor(mask)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((len(labels), num_classes))
    out[np.arange(len(labels)), labels] = 1.0
    return out
