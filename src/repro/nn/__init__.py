"""``repro.nn`` — a from-scratch numpy deep-learning substrate.

Exposes a PyTorch-flavoured API: :class:`Tensor` autograd, :class:`Module`
layers, optimisers, and losses.  This is the execution engine underneath the
NDPipe model zoo and the FT-DMP training strategy.
"""

from .attention import MultiHeadSelfAttention, PatchEmbedding, TransformerBlock
from .functional import (
    avg_pool2d,
    col2im,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    im2col,
    max_pool2d,
    one_hot,
)
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from .losses import accuracy, cross_entropy, mse, topk_accuracy
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .schedulers import CosineLR, Scheduler, StepLR, WarmupLR, clip_gradients
from .tensor import (
    Tensor,
    concat,
    gelu,
    grad_enabled,
    inference_mode,
    log_softmax,
    no_grad,
    softmax,
    stack,
    where,
)

__all__ = [
    "Tensor", "concat", "stack", "softmax", "log_softmax", "where", "gelu",
    "no_grad", "grad_enabled", "inference_mode",
    "Module", "Parameter",
    "Linear", "Conv2d", "BatchNorm2d", "LayerNorm", "ReLU", "GELU",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "Sequential", "Identity",
    "MultiHeadSelfAttention", "TransformerBlock", "PatchEmbedding",
    "SGD", "Adam", "Optimizer",
    "Scheduler", "StepLR", "CosineLR", "WarmupLR", "clip_gradients",
    "cross_entropy", "mse", "accuracy", "topk_accuracy",
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "im2col", "col2im", "conv_output_size", "one_hot",
]
