"""Module base class: parameter registry, train/eval mode, state dicts.

State dicts are plain ``{name: np.ndarray}`` mappings; they are what the
Check-N-Run delta encoder (:mod:`repro.core.checknrun`) serialises and what
the Tuner redistributes to PipeStores after fine-tuning.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is registered as a trainable weight of a Module."""

    def __init__(self, data, name=None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network building blocks."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- attribute magic ------------------------------------------------
    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    # -- traversal -------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode ------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def cast(self, dtype) -> "Module":
        """Cast all parameters and buffers to ``dtype`` (e.g. np.float32)."""
        for param in self.parameters():
            param.data = param.data.astype(dtype)
        for module in self.modules():
            for name in module._buffers:
                module._buffers[name] = module._buffers[name].astype(dtype)
        return self

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (weight-freeze layers)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # -- state -----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffer_holders = self._buffer_holders()
        for key, value in state.items():
            if key in own_params:
                if own_params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{own_params[key].shape} vs {value.shape}"
                    )
                own_params[key].data = value.copy()
            elif key in own_buffer_holders:
                holder, name = own_buffer_holders[key]
                holder._buffers[name] = value.copy()
            else:
                raise KeyError(f"unexpected key in state dict: {key}")

    def _buffer_holders(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        holders = {prefix + name: (self, name) for name in self._buffers}
        for name, module in self._modules.items():
            holders.update(module._buffer_holders(prefix + name + "."))
        return holders

    # -- call ------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
