"""Standard layers used by the model zoo.

All layers accept an explicit ``rng`` so that model construction is fully
deterministic — the drift experiments depend on reproducible initial models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fastpath import flags
from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, gelu, grad_enabled


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(0)


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((in_features, out_features), in_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = False, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = _default_rng(rng)
        if in_channels % groups:
            raise ValueError(f"in_channels {in_channels} not divisible by groups {groups}")
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = init.conv_fan_in(in_channels // groups, kernel_size)
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                fan_in, rng,
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv2d(x, self.weight, self.stride, self.padding, self.groups)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1, 1, 1)
        return out


class BatchNorm2d(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self._buffers["running_mean"] = np.zeros(num_features)
        self._buffers["running_var"] = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self._buffers["running_mean"] = (
                (1 - m) * self._buffers["running_mean"] + m * mean.data.reshape(-1)
            )
            self._buffers["running_var"] = (
                (1 - m) * self._buffers["running_var"] + m * var.data.reshape(-1)
            )
        else:
            if not grad_enabled() and flags().vectorized_autograd:
                return self._eval_fast(x)
            mean = Tensor(self._buffers["running_mean"].reshape(1, -1, 1, 1))
            var = Tensor(self._buffers["running_var"].reshape(1, -1, 1, 1))
        inv = (var + self.eps) ** -0.5
        normed = (x - mean) * inv
        return normed * self.gamma.reshape(1, -1, 1, 1) + self.beta.reshape(1, -1, 1, 1)

    def _eval_fast(self, x: Tensor) -> Tensor:
        """Raw-numpy eval normalisation, used only under ``no_grad``.

        Performs the exact operation sequence of the Tensor path —
        ``(var + eps) ** -0.5`` then ``((x - mean) * inv) * gamma + beta``
        with the same float64 broadcasts — so outputs are bit-identical;
        it merely skips boxing each intermediate in a Tensor.
        """
        rm = self._buffers["running_mean"].reshape(1, -1, 1, 1)
        rv = self._buffers["running_var"].reshape(1, -1, 1, 1)
        inv = (rv + self.eps) ** -0.5
        out = ((x.data - rm) * inv) * self.gamma.data.reshape(1, -1, 1, 1)
        return Tensor(out + self.beta.data.reshape(1, -1, 1, 1))


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) * (var + self.eps) ** -0.5
        return normed * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = _default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self._layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def __iter__(self):
        return iter(self._layers)

    def __len__(self):
        return len(self._layers)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*self._layers[index])
        return self._layers[index]

    def append(self, layer: Module) -> "Sequential":
        setattr(self, f"layer{len(self._layers)}", layer)
        self._layers.append(layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
