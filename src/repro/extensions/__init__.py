"""``repro.extensions`` — §7.1 media extensions: video, audio, documents."""

from .media import (
    AudioAdapter,
    DocumentAdapter,
    DocumentEncoder,
    SyntheticAudio,
    SyntheticVideo,
    VideoAdapter,
    extract_key_frames,
    spectrogram,
    synthesize_audio,
    synthesize_document,
    synthesize_video,
)

__all__ = [
    "VideoAdapter", "SyntheticVideo", "synthesize_video",
    "extract_key_frames",
    "AudioAdapter", "SyntheticAudio", "synthesize_audio", "spectrogram",
    "DocumentAdapter", "DocumentEncoder", "synthesize_document",
]
