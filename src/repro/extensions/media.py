"""Media adapters: extending NDPipe beyond photos (§7.1).

The paper sketches three extensions, each reducing a heavy medium to the
image-shaped (or embedding-shaped) inputs the NDPipe pipeline already
handles near the data:

* **video** — key-frame extraction: pick the most informative frames and
  process them like photos (Gowda et al.'s smart frame selection,
  approximated here by frame-difference energy);
* **audio** — audio spectrogram transformation (AST): STFT magnitude in
  dB, rendered as an image for CNN/transformer models;
* **documents** — transformer-style embeddings: a fixed random-projection
  encoder over hashed token counts stands in for BERT; only the small
  embedding crosses the network to the Tuner.

Each adapter exposes ``prepare`` (medium -> model-ready arrays) and
``wire_bytes_saved`` style accounting so the traffic argument of §7.1 can
be measured, plus synthetic generators so everything runs offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


# ---------------------------------------------------------------------------
# Video
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticVideo:
    """A clip: (T, 3, H, W) float frames in [0, 1] plus nominal byte size."""

    frames: np.ndarray
    fps: float
    nominal_bytes: int

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def duration_s(self) -> float:
        return self.num_frames / self.fps


def synthesize_video(world, label: int, num_frames: int = 24,
                     image_size: Optional[int] = None,
                     motion: float = 0.15, fps: float = 24.0,
                     seed: int = 0,
                     bytes_per_frame: int = 40_000) -> SyntheticVideo:
    """A clip of one class drifting smoothly in latent space.

    Consecutive frames are near-duplicates (latent random walk), so
    frame-difference key-frame selection has real structure to exploit.
    """
    rng = np.random.default_rng(seed)
    config = world.config
    proto = world.prototypes_at(0)[label]
    latents = np.empty((num_frames, config.latent_dim))
    position = proto + rng.normal(0, config.noise, size=config.latent_dim)
    for t in range(num_frames):
        # occasional shot change, otherwise smooth motion
        if t and rng.random() < 0.1:
            position = proto + rng.normal(0, config.noise * 3,
                                          size=config.latent_dim)
        else:
            position = position + rng.normal(0, motion,
                                             size=config.latent_dim)
        latents[t] = position
    frames = world._render(latents)
    return SyntheticVideo(frames=frames, fps=fps,
                          nominal_bytes=bytes_per_frame * num_frames)


def extract_key_frames(video: SyntheticVideo, num_key_frames: int = 4,
                       ) -> Tuple[np.ndarray, List[int]]:
    """Pick the ``num_key_frames`` most informative frames.

    Greedy selection by frame-difference energy: the first frame always
    qualifies; afterwards the frames with the largest change from their
    predecessor win (shot boundaries score highest).
    """
    if num_key_frames < 1:
        raise ValueError("need at least one key frame")
    frames = video.frames
    if num_key_frames >= len(frames):
        return frames.copy(), list(range(len(frames)))
    diffs = np.zeros(len(frames))
    diffs[1:] = np.abs(np.diff(frames, axis=0)).mean(axis=(1, 2, 3))
    diffs[0] = np.inf  # the opening frame is always a key frame
    chosen = sorted(np.argsort(diffs)[-num_key_frames:])
    return frames[chosen], [int(i) for i in chosen]


class VideoAdapter:
    """Video -> key frames -> per-frame labels -> majority summary."""

    def __init__(self, num_key_frames: int = 4):
        if num_key_frames < 1:
            raise ValueError("need at least one key frame")
        self.num_key_frames = num_key_frames

    def prepare(self, video: SyntheticVideo) -> np.ndarray:
        """Model-ready frames (K, 3, H, W)."""
        frames, _ = extract_key_frames(video, self.num_key_frames)
        return frames

    def summarize(self, frame_labels: Sequence[int],
                  frame_confidences: Sequence[float]) -> Tuple[int, float]:
        """Majority vote over key-frame labels, confidence-weighted."""
        if not frame_labels:
            raise ValueError("no frame labels to summarise")
        votes = {}
        for label, conf in zip(frame_labels, frame_confidences):
            votes[label] = votes.get(label, 0.0) + conf
        best = max(votes, key=votes.get)
        return best, votes[best] / sum(votes.values())

    def compute_saved_fraction(self, video: SyntheticVideo) -> float:
        """Fraction of per-frame inference work key-framing avoids."""
        return 1.0 - min(self.num_key_frames, video.num_frames) / video.num_frames


# ---------------------------------------------------------------------------
# Audio
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SyntheticAudio:
    """A mono waveform at ``sample_rate`` Hz with a class label."""

    waveform: np.ndarray
    sample_rate: int
    nominal_bytes: int


def synthesize_audio(label: int, num_classes: int, duration_s: float = 1.0,
                     sample_rate: int = 8000, seed: int = 0,
                     ) -> SyntheticAudio:
    """A class-dependent harmonic stack plus noise (a 'genre')."""
    rng = np.random.default_rng(seed)
    t = np.arange(int(duration_s * sample_rate)) / sample_rate
    base = 110.0 * (1.0 + label)  # class-specific fundamental
    wave = np.zeros_like(t)
    for harmonic in range(1, 4):
        wave += rng.uniform(0.4, 1.0) / harmonic * np.sin(
            2 * np.pi * base * harmonic * t + rng.uniform(0, 2 * np.pi))
    wave += rng.normal(0, 0.3, size=t.shape)
    wave /= np.abs(wave).max()
    return SyntheticAudio(waveform=wave.astype(np.float32),
                          sample_rate=sample_rate,
                          nominal_bytes=2 * wave.size)


def spectrogram(waveform: np.ndarray, n_fft: int = 128,
                hop: Optional[int] = None) -> np.ndarray:
    """Log-magnitude STFT, (freq_bins, time_frames), normalised to [0, 1]."""
    if len(waveform) < n_fft:
        raise ValueError(f"waveform shorter than one FFT window ({n_fft})")
    hop = hop or n_fft // 2
    window = np.hanning(n_fft)
    num_frames = 1 + (len(waveform) - n_fft) // hop
    frames = np.stack([
        waveform[i * hop:i * hop + n_fft] * window for i in range(num_frames)
    ])
    mags = np.abs(np.fft.rfft(frames, axis=1)).T  # (bins, frames)
    db = 20 * np.log10(mags + 1e-6)
    db -= db.min()
    peak = db.max()
    return db / peak if peak > 0 else db


class AudioAdapter:
    """Audio -> spectrogram 'photo' the visual models can classify (AST)."""

    def __init__(self, image_size: int = 16, n_fft: int = 128):
        self.image_size = image_size
        self.n_fft = n_fft

    def prepare(self, audio: SyntheticAudio) -> np.ndarray:
        """(3, image_size, image_size) spectrogram image in [0, 1]."""
        spec = spectrogram(audio.waveform, self.n_fft)
        image = _resize_bilinear(spec, self.image_size, self.image_size)
        return np.repeat(image[None], 3, axis=0).astype(np.float32)


def _resize_bilinear(array: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Minimal bilinear resample for spectrogram images."""
    in_h, in_w = array.shape
    ys = np.linspace(0, in_h - 1, out_h)
    xs = np.linspace(0, in_w - 1, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = array[y0][:, x0] * (1 - wx) + array[y0][:, x1] * wx
    bottom = array[y1][:, x0] * (1 - wx) + array[y1][:, x1] * wx
    return top * (1 - wy) + bottom * wy


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------
class DocumentEncoder:
    """A fixed random-projection text encoder (the BERT stand-in).

    Hashed bag-of-tokens -> tanh(random projection).  Deterministic for a
    given seed, so PipeStore-side encoding and Tuner-side training agree —
    the same weight-freeze property FT-DMP relies on for images.
    """

    def __init__(self, embedding_dim: int = 64, vocab_buckets: int = 2048,
                 seed: int = 0):
        if embedding_dim < 1 or vocab_buckets < 1:
            raise ValueError("embedding_dim and vocab_buckets must be positive")
        rng = np.random.default_rng(seed)
        self.embedding_dim = embedding_dim
        self.vocab_buckets = vocab_buckets
        self._projection = rng.normal(
            0, 1.0 / np.sqrt(vocab_buckets), size=(vocab_buckets, embedding_dim)
        )

    def encode(self, text: str) -> np.ndarray:
        """(embedding_dim,) fp32 embedding of a document."""
        counts = np.zeros(self.vocab_buckets)
        for token in text.lower().split():
            counts[_stable_hash(token) % self.vocab_buckets] += 1.0
        norm = np.linalg.norm(counts)
        if norm > 0:
            counts /= norm
        return np.tanh(counts @ self._projection).astype(np.float32)

    def embedding_bytes(self) -> int:
        return self.embedding_dim * 4


def _stable_hash(token: str) -> int:
    """FNV-1a; Python's hash() is salted per process, which would break
    the PipeStore/Tuner agreement this encoder exists to provide."""
    value = 2166136261
    for byte in token.encode():
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


class DocumentAdapter:
    """Document -> embedding near the data; only the vector ships (§7.1)."""

    def __init__(self, encoder: Optional[DocumentEncoder] = None):
        self.encoder = encoder or DocumentEncoder()

    def prepare(self, text: str) -> np.ndarray:
        return self.encoder.encode(text)

    def traffic_reduction(self, text: str) -> float:
        """Document bytes divided by embedding bytes."""
        doc_bytes = max(len(text.encode()), 1)
        return doc_bytes / self.encoder.embedding_bytes()


def synthesize_document(label: int, num_classes: int, length: int = 120,
                        seed: int = 0) -> str:
    """A synthetic document whose vocabulary leans on its class topic."""
    rng = np.random.default_rng(seed)
    topic_words = [f"topic{label}_{i}" for i in range(12)]
    common_words = [f"word{i}" for i in range(40)]
    words = []
    for _ in range(length):
        pool = topic_words if rng.random() < 0.45 else common_words
        words.append(pool[rng.integers(len(pool))])
    return " ".join(words)
