"""Mini-batch iteration utilities."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def batch_iter(x: np.ndarray, y: np.ndarray, batch_size: int,
               rng: Optional[np.random.Generator] = None,
               shuffle: bool = True) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (x_batch, y_batch) minibatches covering the dataset once."""
    if len(x) != len(y):
        raise ValueError(f"x and y disagree on length: {len(x)} vs {len(y)}")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(len(x))
    if shuffle:
        (rng or np.random.default_rng(0)).shuffle(indices)
    for start in range(0, len(x), batch_size):
        chosen = indices[start:start + batch_size]
        yield x[chosen], y[chosen]


def split_rounds(x: np.ndarray, y: np.ndarray, num_rounds: int,
                 ) -> list:
    """Split a dataset into ``num_rounds`` contiguous sub-datasets.

    This is the pipelined FT-DMP run split (§5.2): run ``k`` trains on the
    ``k``-th sub-dataset while PipeStores extract features for run ``k+1``.
    """
    if num_rounds <= 0:
        raise ValueError("num_rounds must be positive")
    if num_rounds > len(x):
        raise ValueError("more rounds than samples")
    bounds = np.linspace(0, len(x), num_rounds + 1).astype(int)
    return [(x[a:b], y[a:b]) for a, b in zip(bounds[:-1], bounds[1:])]


def normalize_images(x: np.ndarray, mean: float = 0.5, std: float = 0.25,
                     ) -> np.ndarray:
    """The standard preprocessing transform applied before the DNN."""
    return ((x - mean) / std).astype(np.float64)
