"""Dataset profiles standing in for CIFAR-100 / ImageNet-1K / ImageNet-21K.

The paper's three benchmarks differ mainly in class count and difficulty
(Table 2: CIFAR100 ~77 % top-1 for ResNet50, ImageNet-1K ~74 %,
ImageNet-21K ~36 %).  The profiles reproduce that ordering by scaling class
count and within-class noise of the synthetic world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .drift import DriftingPhotoWorld, WorldConfig


@dataclass(frozen=True)
class DatasetProfile:
    """A named benchmark scale for the accuracy experiments."""

    name: str
    initial_classes: int
    max_classes: int
    noise: float
    train_size: int
    test_size: int
    image_size: int = 16

    def world(self, seed: int = 0) -> DriftingPhotoWorld:
        return DriftingPhotoWorld(WorldConfig(
            initial_classes=self.initial_classes,
            max_classes=self.max_classes,
            image_size=self.image_size,
            noise=self.noise,
            seed=seed,
        ))


CIFAR100_LIKE = DatasetProfile(
    name="CIFAR100", initial_classes=8, max_classes=12, noise=0.30,
    train_size=1600, test_size=800,
)
IMAGENET1K_LIKE = DatasetProfile(
    name="ImageNet-1K", initial_classes=10, max_classes=14, noise=0.36,
    train_size=2000, test_size=1000,
)
IMAGENET21K_LIKE = DatasetProfile(
    name="ImageNet-21K", initial_classes=16, max_classes=22, noise=0.52,
    train_size=2400, test_size=1200,
)

PROFILES: Dict[str, DatasetProfile] = {
    p.name: p for p in (CIFAR100_LIKE, IMAGENET1K_LIKE, IMAGENET21K_LIKE)
}


def profile(name: str) -> DatasetProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(PROFILES)}"
        ) from None


def train_test_split(world: DriftingPhotoWorld, day: int, train_size: int,
                     test_size: int, seed: int = 0,
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sample disjointly seeded train and test sets from one day."""
    train_rng = np.random.default_rng(seed * 2 + 1)
    test_rng = np.random.default_rng(seed * 2 + 2)
    x_train, y_train = world.sample(train_size, day, rng=train_rng)
    x_test, y_test = world.sample(test_size, day, rng=test_rng)
    return x_train, y_train, x_test, y_test
