"""Synthetic drifting photo world.

Substitute for the paper's evolving photo uploads (§3.2): each class is a
prototype in a latent space, rendered to small RGB images through a fixed
random nonlinear map.  Drift has the two ingredients the paper studies:

* prototype motion — the input distribution of existing classes shifts a
  little every day (concept drift), and
* category growth — new classes appear over time; 5.3 % of newly uploaded
  images belong to new categories, with a 1.78 % daily upload growth rate
  (the paper's measured rates, §3.2).

A model trained at day 0 therefore genuinely loses accuracy on day-``d``
test sets, fine-tuning the classifier recovers most of it, and full
retraining recovers almost all — the phenomena behind Fig. 4 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

#: the paper's measured daily image-volume growth rate
DAILY_GROWTH_RATE = 0.0178
#: fraction of newly uploaded images in brand-new categories
NEW_CLASS_FRACTION = 0.053


@dataclass(frozen=True)
class WorldConfig:
    """Shape and difficulty of a drifting photo world."""

    initial_classes: int = 10
    max_classes: int = 16
    image_size: int = 16
    latent_dim: int = 24
    #: within-class latent noise; higher = harder dataset (lower accuracy)
    noise: float = 0.35
    #: per-day prototype displacement as a fraction of prototype norm
    drift_rate: float = 0.02
    #: days between new-class introductions once the world starts growing
    new_class_interval_days: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.initial_classes < 2:
            raise ValueError("need at least two initial classes")
        if self.max_classes < self.initial_classes:
            raise ValueError("max_classes must be >= initial_classes")


class DriftingPhotoWorld:
    """Generates (image, label) samples whose distribution evolves by day."""

    def __init__(self, config: WorldConfig = WorldConfig()):
        self.config = config
        rng = np.random.default_rng(config.seed)
        c, d = config.max_classes, config.latent_dim
        # well-separated prototypes: random directions scaled up
        self._prototypes = rng.normal(0.0, 1.0, size=(c, d))
        self._prototypes *= 3.0 / np.linalg.norm(self._prototypes, axis=1,
                                                 keepdims=True)
        # each class drifts along its own fixed unit direction
        drift = rng.normal(size=(c, d))
        self._drift_dirs = drift / np.linalg.norm(drift, axis=1, keepdims=True)
        # fixed nonlinear renderer latent -> pixels
        out_dim = 3 * config.image_size ** 2
        self._render_w1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, 2 * d))
        self._render_w2 = rng.normal(0.0, 1.0 / np.sqrt(2 * d), size=(2 * d, out_dim))
        # day each class first appears
        self._appear_day = np.zeros(c, dtype=int)
        for i in range(config.initial_classes, c):
            self._appear_day[i] = (
                (i - config.initial_classes + 1) * config.new_class_interval_days
            )

    # -- world state -------------------------------------------------------
    def classes_at(self, day: int) -> np.ndarray:
        """Class ids available on ``day``."""
        if day < 0:
            raise ValueError("day must be non-negative")
        return np.flatnonzero(self._appear_day <= day)

    def num_classes_at(self, day: int) -> int:
        return int(len(self.classes_at(day)))

    def prototypes_at(self, day: int) -> np.ndarray:
        """Prototype latents after ``day`` days of drift."""
        drift = self.config.drift_rate * day
        return self._prototypes + drift * self._drift_dirs * 3.0

    def dataset_size_at(self, day: int, initial_size: int) -> int:
        """Cumulative image count under 1.78 %/day growth."""
        return int(round(initial_size * (1.0 + DAILY_GROWTH_RATE) ** day))

    # -- sampling ---------------------------------------------------------
    def sample(self, n: int, day: int,
               rng: Optional[np.random.Generator] = None,
               classes: Optional[Sequence[int]] = None,
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` photos from the day-``day`` distribution.

        Returns ``(images, labels)`` with images float32 (n, 3, s, s) in
        [0, 1].  New classes are sampled at :data:`NEW_CLASS_FRACTION` of
        the mix (they are a small share of uploads) and established classes
        uniformly otherwise.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        rng = rng or np.random.default_rng(self.config.seed + 1000 + day)
        available = np.asarray(classes if classes is not None
                               else self.classes_at(day))
        if available.size == 0:
            raise ValueError("no classes available")
        recent = available[self._appear_day[available] > max(0, day - 7)]
        established = available[self._appear_day[available] <= max(0, day - 7)]
        if recent.size and established.size:
            n_new = rng.binomial(n, NEW_CLASS_FRACTION)
            labels = np.concatenate([
                rng.choice(recent, size=n_new),
                rng.choice(established, size=n - n_new),
            ])
            rng.shuffle(labels)
        else:
            labels = rng.choice(available, size=n)

        protos = self.prototypes_at(day)
        latents = protos[labels] + rng.normal(
            0.0, self.config.noise * 3.0, size=(n, self.config.latent_dim)
        )
        images = self._render(latents)
        return images, labels.astype(np.int64)

    def _render(self, latents: np.ndarray) -> np.ndarray:
        hidden = np.tanh(latents @ self._render_w1)
        flat = np.tanh(hidden @ self._render_w2)
        pixels = 0.5 + 0.5 * flat
        s = self.config.image_size
        return pixels.reshape(len(latents), 3, s, s).astype(np.float32)
