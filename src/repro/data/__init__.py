"""``repro.data`` — synthetic drifting photo datasets.

The drift generator reproduces the paper's data-evolution scenario: 1.78 %
daily upload growth with 5.3 % of new images in new categories, plus
gradual input-distribution drift of existing classes.
"""

from .datasets import (
    CIFAR100_LIKE,
    IMAGENET1K_LIKE,
    IMAGENET21K_LIKE,
    PROFILES,
    DatasetProfile,
    profile,
    train_test_split,
)
from .drift import (
    DAILY_GROWTH_RATE,
    NEW_CLASS_FRACTION,
    DriftingPhotoWorld,
    WorldConfig,
)
from .loader import batch_iter, normalize_images, split_rounds

__all__ = [
    "DriftingPhotoWorld", "WorldConfig", "DAILY_GROWTH_RATE",
    "NEW_CLASS_FRACTION",
    "DatasetProfile", "profile", "PROFILES", "train_test_split",
    "CIFAR100_LIKE", "IMAGENET1K_LIKE", "IMAGENET21K_LIKE",
    "batch_iter", "split_rounds", "normalize_images",
]
