"""Tuner high availability: warm standby, epoch election, failover.

The standby is kept current the only way the fabric allows — by
shipping tuner-scoped NDCP frames (:func:`pack_tuner_state`) over the
byte-accounted network at every FT-DMP run boundary.  Promotion is a
lease/epoch election: the new primary takes ``max(all known epochs)+1``,
imports the last shipped frame bit-exactly (model, optimizer moments,
RNG stream), adopts the store fleet *without* resending replicas (their
models are already current), and stamps its epoch on every subsequent
update so stores fence the deposed primary if it ever comes back
(:class:`~repro.faults.errors.StaleEpochError`).
"""

from __future__ import annotations

from typing import Optional

from ..durability.checkpoint import (
    FinetuneProgress,
    pack_tuner_state,
    unpack_tuner_state,
)
from ..faults.errors import FaultError
from ..faults.retry import call_with_retry
from ..lint.contracts import fenced_by
from .metrics import HAMetrics

#: traffic kind of standby-refresh frames on the fabric
CHECKPOINT_KIND = "ha-checkpoint"


@fenced_by("_check_promotable", "primary", "standby")
class TunerFailoverManager:
    """Owns the primary/standby pair and the election that swaps them.

    The role pair is fenced state: any method that reassigns the roles
    or pushes training state into them must first pass
    :meth:`_check_promotable`, and ND007 proves the dominance on every
    path — an election can never run off a frame that never arrived or
    onto a standby that is itself down.
    """

    def __init__(self, cluster, standby, metrics: HAMetrics):
        self.cluster = cluster
        self.primary = cluster.tuner
        self.standby = standby
        self.metrics = metrics
        #: the last tuner frame the standby received; what a promotion
        #: restores from (run-boundary granularity, like ``repro resume``)
        self.last_frame: Optional[bytes] = None
        self.metrics.epoch.set(self.primary.epoch)

    def ship_checkpoint(self,
                        progress: Optional[FinetuneProgress] = None) -> int:
        """Send the primary's current training state to the standby.

        Called by ``NDPipeCluster.finetune`` after every completed run
        (with the pending :class:`FinetuneProgress`) and after the final
        distribution round (with ``None``).  Returns the frame size, or
        0 when the standby could not take the frame — a dead standby (or
        a wire every retry dropped) must not block the primary's
        training; the standby re-syncs from the next boundary that lands
        after it recovers, and promotion keeps the last frame that did.
        """
        if not self.standby.is_available:
            return 0
        blob = pack_tuner_state(self.primary.export_training_state(),
                                self.primary.epoch, progress)
        try:
            call_with_retry(
                lambda: self.cluster.network.send(
                    self.primary.name, self.standby.name, len(blob),
                    CHECKPOINT_KIND),
                self.cluster.retry)
        except FaultError:
            return 0
        # the frame is only adopted once the send was acknowledged: a
        # dropped transfer must not leave the standby ahead of the wire
        self.last_frame = blob
        self.metrics.checkpoints_shipped.inc()
        self.metrics.checkpoint_bytes.inc(len(blob))
        return len(blob)

    def can_promote(self) -> bool:
        return self.last_frame is not None and self.standby.is_available

    def _check_promotable(self) -> None:
        """The promotion fence: raises unless an election may proceed."""
        if self.last_frame is None:
            raise RuntimeError(
                "no checkpoint has reached the standby; nothing to promote")
        if not self.standby.is_available:
            raise RuntimeError(
                f"standby {self.standby.name} is itself down")

    def promote(self) -> Optional[FinetuneProgress]:
        """Elect the standby primary; returns any pending FT-DMP resume.

        The old primary is demoted to standby duty (it catches up from
        future shipped frames once it recovers) but keeps its stale
        epoch — every update it distributes before observing the new
        epoch is fenced by the stores.
        """
        self._check_promotable()
        state, frame_epoch, progress = unpack_tuner_state(self.last_frame)
        new_epoch = 1 + max(frame_epoch, self.primary.epoch,
                            self.standby.epoch)
        self.standby.import_training_state(state)
        self.standby.epoch = new_epoch
        self.standby.adopt_fleet(self.primary.stores)
        old_primary = self.primary
        self.primary, self.standby = self.standby, old_primary
        self.cluster.adopt_tuner(self.primary)
        self.metrics.failovers.inc()
        self.metrics.epoch.set(new_epoch)
        return progress
