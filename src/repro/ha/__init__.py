"""Control-plane robustness: membership, Tuner failover, chaos harness.

This package turns the fault-injection substrate (`repro.faults`) into
an *automated* control plane:

* :class:`FailureDetector` — deadline/phi heartbeat suspicion on the
  deterministic logical clock;
* :class:`TunerFailoverManager` — warm-standby Tuner kept current with
  tuner-scoped NDCP frames, epoch-fenced promotion on suspicion;
* :class:`HAController` — one poll loop wiring the detector to store
  eviction/rejoin, Tuner failover, and serving-replica drains;
* :class:`NemesisHarness` — seeded random fault schedules with
  cross-component invariant checks after every step.

Entry point: ``cluster.enable_ha(HAConfig(...), injector=...)``.
"""

from .config import HAConfig
from .controller import CONTROLLER_NODE, PRIMARY_MEMBER, HAController
from .detector import ALIVE, SUSPECT, UNKNOWN, FailureDetector
from .failover import CHECKPOINT_KIND, TunerFailoverManager
from .metrics import HAMetrics
from .nemesis import InvariantViolation, NemesisHarness, NemesisReport

__all__ = [
    "ALIVE",
    "CHECKPOINT_KIND",
    "CONTROLLER_NODE",
    "FailureDetector",
    "HAConfig",
    "HAController",
    "HAMetrics",
    "InvariantViolation",
    "NemesisHarness",
    "NemesisReport",
    "PRIMARY_MEMBER",
    "SUSPECT",
    "TunerFailoverManager",
    "UNKNOWN",
]
