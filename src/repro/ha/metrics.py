"""HAMetrics — the sole registration site for ha/failover families.

Mirrors :class:`repro.serving.metrics.ServingMetrics`: every membership
and failover family is registered here exactly once (ND004) against the
cluster's shared registry, and the handles are passed to collaborators
(the fencing counter is bound onto each Tuner) instead of re-registering.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry


class HAMetrics:
    """Metric handles for the membership / failover subsystem."""

    def __init__(self, metrics: MetricsRegistry):
        self.registry = metrics
        self.heartbeats = metrics.counter(
            "ha_heartbeats_total",
            "heartbeat probes observed alive, per member",
            label_names=("member",))
        self.suspicions = metrics.counter(
            "ha_suspicions_total",
            "alive->suspect transitions flagged by the failure detector",
            label_names=("member",))
        self.epoch = metrics.gauge(
            "ha_epoch",
            "election epoch of the current primary Tuner")
        self.failovers = metrics.counter(
            "ha_failovers_total",
            "standby Tuner promotions after primary suspicion")
        self.checkpoints_shipped = metrics.counter(
            "ha_checkpoints_shipped_total",
            "tuner-scoped NDCP frames shipped to the warm standby")
        self.checkpoint_bytes = metrics.counter(
            "ha_checkpoint_bytes_total",
            "bytes shipped keeping the standby current")
        self.store_evictions = metrics.counter(
            "ha_store_evictions_total",
            "suspected stores whose orphans were auto re-placed",
            label_names=("store",))
        self.store_rejoins = metrics.counter(
            "ha_store_rejoins_total",
            "suspected stores recovered back into the fleet",
            label_names=("store",))
        self.orphans_reingested = metrics.counter(
            "ha_orphans_reingested_total",
            "photos the detector-driven eviction re-placed, per lost store",
            label_names=("store",))
        self.replica_drains = metrics.counter(
            "ha_replica_drains_total",
            "serving replicas drained/undrained on suspicion",
            label_names=("replica", "action"))
        self.fenced_updates = metrics.counter(
            "ha_fenced_updates_total",
            "model updates stores rejected for carrying a stale epoch",
            label_names=("node",))
