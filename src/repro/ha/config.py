"""HAConfig — tunables for the control-plane robustness layer."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class HAConfig:
    """Failure-detection and failover policy knobs.

    All timings are **logical ticks** of the faults clock (one tick per
    observed fabric transfer / pipeline stage item, plus one per
    controller poll), so suspicion thresholds replay deterministically
    with the workload — the same property the fault schedule itself has.
    """

    #: ticks between controller heartbeat probes (poll granularity)
    heartbeat_interval_ticks: int = 1
    #: hard deadline: a member silent this many ticks is suspected
    suspect_after_ticks: int = 3
    #: phi-accrual threshold: elapsed / mean-inter-arrival ratio at which
    #: a member is suspected even before the hard deadline
    phi_threshold: float = 8.0
    #: heartbeat inter-arrival window the phi estimate is computed over
    window: int = 32
    #: on store suspicion, re-place its journalled photos automatically
    auto_evict: bool = True
    #: on a suspected store's heartbeat resuming, run recover/reconcile
    auto_rejoin: bool = True
    #: keep a warm standby Tuner and promote it on primary suspicion
    standby: bool = True
    #: accounted bytes per heartbeat probe (when accounting is on)
    heartbeat_bytes: int = 32
    #: send heartbeats through the byte-accounted fabric (each probe
    #: then advances the logical clock like any other message)
    account_heartbeats: bool = False

    def validated(self) -> "HAConfig":
        if self.heartbeat_interval_ticks < 1:
            raise ValueError("heartbeat_interval_ticks must be >= 1")
        if self.suspect_after_ticks < 1:
            raise ValueError("suspect_after_ticks must be >= 1")
        if self.phi_threshold <= 0:
            raise ValueError("phi_threshold must be positive")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.heartbeat_bytes < 0:
            raise ValueError("heartbeat_bytes must be >= 0")
        return self

    @classmethod
    def field_names(cls):
        return {f.name for f in fields(cls)}

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "HAConfig":
        unknown = sorted(set(data) - cls.field_names())
        if unknown:
            raise ValueError(f"unknown HAConfig fields {unknown}")
        return cls(**data)
