"""Heartbeat failure detector on the faults logical clock.

A deadline/phi hybrid: a member is suspected when it has been silent
past a hard tick deadline (``suspect_after_ticks``) **or** when the
phi-accrual score — elapsed silence over the member's mean heartbeat
inter-arrival — crosses ``phi_threshold``.  The hard deadline bounds
detection latency for members that died young (too few samples for a
meaningful mean); the phi score adapts to members whose heartbeats
arrive at irregular logical cadence (a store busy with a long near-data
job ticks the clock in bursts).

Because the clock only advances with observed work, detection is
deterministic: the same workload and fault schedule suspect the same
member at the same tick, every run.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from .config import HAConfig

#: membership states reported by :meth:`FailureDetector.state`
ALIVE = "alive"
SUSPECT = "suspect"
UNKNOWN = "unknown"


class FailureDetector:
    """Tracks last-heard ticks and inter-arrival history per member."""

    def __init__(self, config: HAConfig):
        self.config = config.validated()
        self._last: Dict[str, int] = {}
        self._intervals: Dict[str, Deque[int]] = {}
        self._suspected: set = set()

    # -- observations --------------------------------------------------------
    def heartbeat(self, member: str, tick: int) -> bool:
        """Record one heartbeat; returns True if this is a rejoin
        (the member was suspected and is now heard again)."""
        prev = self._last.get(member)
        if prev is not None and tick > prev:
            window = self._intervals.setdefault(
                member, deque(maxlen=self.config.window))
            window.append(tick - prev)
        self._last[member] = tick
        rejoined = member in self._suspected
        self._suspected.discard(member)
        return rejoined

    # -- suspicion -----------------------------------------------------------
    def phi(self, member: str, tick: int) -> float:
        """Silence score: elapsed ticks over mean heartbeat interval."""
        last = self._last.get(member)
        if last is None:
            return 0.0
        elapsed = max(0, tick - last)
        window = self._intervals.get(member)
        if window:
            mean = sum(window) / len(window)
        else:
            mean = float(self.config.heartbeat_interval_ticks)
        return elapsed / max(mean, 1e-9)

    def check(self, member: str, tick: int) -> bool:
        """Evaluate suspicion now; returns True on the alive->suspect
        transition (exactly once per outage)."""
        last = self._last.get(member)
        if last is None or member in self._suspected:
            return False
        elapsed = tick - last
        if (elapsed >= self.config.suspect_after_ticks
                or self.phi(member, tick) >= self.config.phi_threshold):
            self._suspected.add(member)
            return True
        return False

    def state(self, member: str) -> str:
        if member not in self._last:
            return UNKNOWN
        return SUSPECT if member in self._suspected else ALIVE

    def is_suspect(self, member: str) -> bool:
        return member in self._suspected

    def suspects(self) -> List[str]:
        return sorted(self._suspected)

    def last_heard(self, member: str) -> Optional[int]:
        return self._last.get(member)
