"""Nemesis — seeded chaos schedules with cross-component invariants.

The harness drives a real (tiny) cluster through a random-but-seeded
interleaving of lifecycle actions — ingest, batched serving, FT-DMP
fine-tuning, offline relabel, scrub — while a
:class:`~repro.faults.FaultInjector` replays a
:meth:`~repro.faults.FaultInjector.random_schedule` that now includes
tuner-targeted crash/recover pairs, and the
:class:`~repro.ha.HAController` reacts.  After **every** step it checks
the invariants the whole stack promises to hold under faults:

1. **no acknowledged upload lost** — every photo id a caller got back
   is still in the database, and its bytes are reachable: on the
   authoritative store if it is up, else on a healthy replica, in the
   upload journal, or parked on the downed store's surviving media;
2. **model lineage is monotonic** — the serving ``(epoch, version)``
   pair never moves backwards: the epoch only grows (elections), and
   within an epoch the version only grows (split-brain corruption would
   break exactly this);
3. **serving conservation** — every offered request is accounted:
   ``offered == completed + shed`` for each serving round;
4. **placement consistency** — the replica map's first holder always
   agrees with the database's authoritative location.

Violations raise :class:`InvariantViolation` with the step and the
offending ids; the per-step event log (:attr:`NemesisHarness.events`)
is JSON-serialisable and byte-identical across same-seed runs, which is
itself asserted by the chaos suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults import FaultInjector
from ..faults.errors import FaultError
from ..lint.sanitizer import SANITIZER
from .config import HAConfig

#: the primary Tuner's fabric node name targeted by tuner crash events
TUNER_NODE = "tuner"


class InvariantViolation(AssertionError):
    """A cross-component invariant failed after a nemesis step."""


@dataclass
class NemesisReport:
    """Summary of one nemesis run (the event log is the full story)."""

    seed: int
    steps: int
    num_stores: int
    schedule: List[str] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    failovers: int = 0
    final_epoch: int = 0
    final_version: int = 0
    photos_acknowledged: int = 0
    invariant_checks: int = 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "steps": self.steps,
            "num_stores": self.num_stores,
            "schedule": list(self.schedule),
            "events": [dict(e) for e in self.events],
            "failovers": self.failovers,
            "final_epoch": self.final_epoch,
            "final_version": self.final_version,
            "photos_acknowledged": self.photos_acknowledged,
            "invariant_checks": self.invariant_checks,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class NemesisHarness:
    """Runs one seeded chaos scenario against a demo-sized cluster."""

    #: (action, weight) bands the per-step RNG draws from
    ACTIONS: Tuple[Tuple[str, float], ...] = (
        ("ingest", 0.30),
        ("serve", 0.15),
        ("finetune", 0.20),
        ("relabel", 0.10),
        ("scrub", 0.10),
        ("poll", 0.15),
    )

    def __init__(self, seed: int = 0, steps: int = 8, num_stores: int = 3,
                 photos_per_step: int = 4, horizon: Optional[int] = None,
                 config: Optional[HAConfig] = None):
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if horizon is None:
            # match the fault window to the ticks the workload actually
            # generates (~a dozen per step), so most events get to fire
            horizon = max(40, steps * 12)
        if num_stores < 2:
            raise ValueError("nemesis needs >= 2 stores to survive crashes")
        from ..core.cluster import NDPipeCluster
        from ..core.config import ClusterConfig
        from ..data.drift import DriftingPhotoWorld, WorldConfig
        from ..models.registry import tiny_model

        self.seed = seed
        self.steps = steps
        self.photos_per_step = photos_per_step
        self.world = DriftingPhotoWorld(WorldConfig(
            initial_classes=6, max_classes=8, image_size=16, noise=0.3,
            seed=seed,
        ))
        self.cluster = NDPipeCluster(
            lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
            ClusterConfig(num_stores=num_stores, nominal_raw_bytes=8192,
                          replication=min(2, num_stores), seed=seed),
        )
        schedule = FaultInjector.random_schedule(
            [s.store_id for s in self.cluster.stores], horizon=horizon,
            seed=seed, tuner_id=TUNER_NODE)
        self.injector = FaultInjector(schedule).attach(self.cluster)
        self.ha = self.cluster.enable_ha(config, injector=self.injector)
        #: photo ids the caller was told are durable, in ack order
        self.acknowledged: List[str] = []
        #: JSON-able per-step log; deterministic for a given seed
        self.events: List[dict] = []
        self._rng = np.random.default_rng(seed + 1)
        self._lineage: Tuple[int, int] = (self.cluster.tuner.epoch,
                                          self.cluster.tuner.version)
        self._checks = 0
        self._schedule_desc = [e.describe() for e in schedule]

    # -- the run loop --------------------------------------------------------
    def run(self) -> NemesisReport:
        """Execute every step, checking invariants after each.

        Raises :class:`InvariantViolation` on the first broken
        invariant; :attr:`events` holds the log up to and including the
        violating step either way.
        """
        names = [name for name, _ in self.ACTIONS]
        weights = np.array([w for _, w in self.ACTIONS])
        weights = weights / weights.sum()
        for step in range(self.steps):
            # the first step always ingests so later actions have data
            action = (names[0] if step == 0 else
                      str(self._rng.choice(names, p=weights)))
            entry = {"step": step, "action": action,
                     "clock_before": self.injector.clock}
            entry.update(self._perform(step, action))
            entry["ha_events"] = [list(e) for e in
                                  self.ha.poll_until_quiet()]
            if self.ha.pending_resume is not None:
                entry["resume"] = self._resume()
            entry["clock"] = self.injector.clock
            entry["epoch"] = self.cluster.tuner.epoch
            entry["version"] = self.cluster.tuner.version
            entry["stores_down"] = self.injector.crashed_stores()
            self.events.append(entry)
            self.check_invariants(step)
        return NemesisReport(
            seed=self.seed, steps=self.steps,
            num_stores=len(self.cluster.stores),
            schedule=self._schedule_desc, events=self.events,
            failovers=(self.ha.metrics.failovers.value()
                       if self.ha.failover is not None else 0),
            final_epoch=self.cluster.tuner.epoch,
            final_version=self.cluster.tuner.version,
            photos_acknowledged=len(self.acknowledged),
            invariant_checks=self._checks,
        )

    def _perform(self, step: int, action: str) -> dict:
        from ..core.pipestore import StoreUnavailableError

        try:
            if action == "ingest":
                x, y = self.world.sample(self.photos_per_step, step,
                                         rng=self._rng)
                ids = self.cluster.ingest(x, train_labels=y)
                self.acknowledged.extend(ids)
                return {"outcome": "ok", "acknowledged": len(ids)}
            if action == "serve":
                return self._serve(step)
            if action == "finetune":
                report = self.cluster.finetune(epochs=1, num_runs=2)
                return {"outcome": "ok",
                        "images_extracted": report.images_extracted}
            if action == "relabel":
                stats = self.cluster.offline_relabel()
                return {"outcome": "ok",
                        "relabelled": stats.photos_processed,
                        "deferred": stats.photos_deferred}
            if action == "scrub":
                report = self.cluster.scrub_and_repair()
                return {"outcome": "ok",
                        "repaired": len(report.repaired),
                        "restored": len(report.restored),
                        "unrecoverable": len(report.unrecoverable)}
            if action == "poll":
                return {"outcome": "ok"}
            raise ValueError(f"unknown nemesis action {action!r}")
        except (FaultError, StoreUnavailableError) as exc:
            # an injected fault surfaced to the caller: acceptable — the
            # invariants below still must hold for everything acked
            return {"outcome": "failed",
                    "error": type(exc).__name__}

    def _serve(self, step: int) -> dict:
        from ..serving import ServeRequest

        x, y = self.world.sample(self.photos_per_step, step, rng=self._rng)
        requests = [
            ServeRequest(request_id=f"step{step}-req{i}",
                         arrival_s=i * 0.005, pixels=x[i],
                         train_label=int(y[i]))
            for i in range(len(x))
        ]
        report, ids = self.cluster.serve_uploads(requests)
        if report.offered != report.completed + report.shed_total:
            raise InvariantViolation(
                f"step {step}: serving conservation broken — offered "
                f"{report.offered} != completed {report.completed} + "
                f"shed {report.shed_total}")
        self.acknowledged.extend(ids)
        self._checks += 1
        return {"outcome": "ok", "offered": report.offered,
                "completed": report.completed,
                "shed": report.shed_total, "acknowledged": len(ids)}

    def _resume(self) -> dict:
        from ..core.pipestore import StoreUnavailableError

        try:
            report = self.ha.resume_pending()
        except (FaultError, StoreUnavailableError) as exc:
            return {"outcome": "failed", "error": type(exc).__name__}
        return {"outcome": "ok",
                "images_extracted": (0 if report is None
                                     else report.images_extracted)}

    # -- invariants -----------------------------------------------------------
    def check_invariants(self, step: int) -> None:
        self._check_no_acknowledged_loss(step)
        self._check_lineage(step)
        self._check_placement(step)
        self._checks += 3 + self._check_sanitizer(step)

    def _check_sanitizer(self, step: int) -> int:
        """Surface runtime concurrency violations as nemesis failures.

        When the suite runs under ``NDPIPE_SANITIZE``, every fabric send
        and lock acquisition feeds the global sanitizer; draining it
        after each step cross-validates the static ND008
        blocking-under-lock verdicts (and the lock-order graph) against
        what the chaos interleaving actually executed.  Returns how many
        checks this contributed (0 when the sanitizer is off).
        """
        if not SANITIZER.enabled:
            return 0
        violations = SANITIZER.drain()
        if violations:
            details = "; ".join(f"{v.kind}: {v.detail}" for v in violations)
            raise InvariantViolation(
                f"step {step}: runtime sanitizer flagged "
                f"{len(violations)} concurrency violation(s): {details}")
        return 1

    def _check_no_acknowledged_loss(self, step: int) -> None:
        cluster = self.cluster
        journal = cluster._journal or {}
        lost: List[str] = []
        for pid in self.acknowledged:
            if pid not in cluster.database:
                lost.append(pid)
                continue
            location = cluster.database.lookup(pid).location
            store = cluster._resolve_store(location)
            if not store.is_available:
                # an outage, not a loss: the blobs survive on the downed
                # store's media and recover/scrub restore access
                continue
            if store.objects.exists(store.objects.raw_key(pid)):
                continue
            if pid in journal:
                continue  # recoverable: re-ingest will re-place it
            if any(self._holder_has(pid, holder)
                   for holder in cluster.replicas.holders(pid)
                   if holder != location):
                continue  # recoverable: scrub re-fetches from the replica
            lost.append(pid)
        if lost:
            raise InvariantViolation(
                f"step {step}: acknowledged uploads lost with no "
                f"recoverable copy: {lost[:5]}{'...' if len(lost) > 5 else ''}")

    def _holder_has(self, pid: str, holder: str) -> bool:
        try:
            store = self.cluster._resolve_store(holder)
        except KeyError:
            return False
        return (store.is_available
                and store.objects.exists(store.objects.raw_key(pid)))

    def _check_lineage(self, step: int) -> None:
        epoch = self.cluster.tuner.epoch
        version = self.cluster.tuner.version
        prev_epoch, prev_version = self._lineage
        if epoch < prev_epoch or (epoch == prev_epoch
                                  and version < prev_version):
            raise InvariantViolation(
                f"step {step}: model lineage moved backwards — "
                f"(epoch, version) ({prev_epoch}, {prev_version}) -> "
                f"({epoch}, {version})")
        self._lineage = (epoch, version)

    def _check_placement(self, step: int) -> None:
        cluster = self.cluster
        bad: List[str] = []
        for pid in self.acknowledged:
            if pid not in cluster.database:
                continue  # already reported by the loss check
            primary = cluster.replicas.primary(pid)
            if primary is not None and (
                    primary != cluster.database.lookup(pid).location):
                bad.append(pid)
        if bad:
            raise InvariantViolation(
                f"step {step}: replica map disagrees with the database "
                f"about the primary holder: {bad[:5]}")
