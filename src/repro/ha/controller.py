"""HAController — wires detector, standby, and eviction/rejoin together.

One controller per cluster (built by ``NDPipeCluster.enable_ha``).  Each
``poll()`` advances the logical clock one tick (a heartbeat round is
itself observed work), samples every member's liveness, and reacts to
detector transitions:

* **store suspected** — its journalled photos are re-placed onto
  survivors (``reingest_orphans``), exactly what test code used to drive
  by hand;
* **store heard again** — ``recover``/``reconcile`` bring it back and
  the Tuner resyncs the model rounds it missed;
* **primary Tuner suspected** — the warm standby is promoted under a
  fresh epoch and any mid-fine-tune progress from the last shipped
  frame becomes ``pending_resume``;
* **serving replica suspected/heard** — attached
  :class:`~repro.serving.dispatcher.ReplicaDispatcher` objects drain or
  undrain it, so serving degrades instead of erroring.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.tuner import Tuner
from ..durability.checkpoint import FinetuneProgress
from ..faults.errors import FaultError
from .config import HAConfig
from .detector import FailureDetector
from .failover import TunerFailoverManager
from .metrics import HAMetrics

#: fabric node name heartbeat probes are charged to
CONTROLLER_NODE = "ha-controller"

#: the member id of the primary-Tuner *role* (stable across elections)
PRIMARY_MEMBER = "tuner-primary"


class HAController:
    """Failure detection + automated reaction for one cluster."""

    def __init__(self, cluster, config: HAConfig,
                 injector: Optional[Any] = None):
        self.cluster = cluster
        self.config = config.validated()
        self.injector = injector
        self.metrics = HAMetrics(cluster.metrics)
        self.detector = FailureDetector(self.config)
        self._tick = 0
        #: member id -> {"kind", "liveness"} in registration order
        self._members: Dict[str, Dict[str, Any]] = {}
        self._dispatchers: List[Any] = []
        #: FT-DMP progress recovered by the latest promotion, if any —
        #: feed it to ``cluster.finetune(resume=...)`` (or call
        #: :meth:`resume_pending`) to finish the interrupted lifecycle
        self.pending_resume: Optional[FinetuneProgress] = None

        self.failover: Optional[TunerFailoverManager] = None
        if self.config.standby:
            standby = Tuner(
                cluster.model_factory(), cluster.network,
                split=cluster.tuner.split, name="tuner-standby",
                lr=cluster.config.lr, batch_size=cluster.config.batch_size,
                seed=cluster.config.seed, retry_policy=cluster.retry,
                metrics=cluster.metrics, tracer=cluster.tracer)
            self.failover = TunerFailoverManager(cluster, standby,
                                                 self.metrics)
            # fence accounting rides the single HAMetrics site: both
            # roles get the counter so a deposed ex-primary's rejected
            # rounds are visible whichever object it happens to be
            cluster.tuner.bind_fencing_counter(self.metrics.fenced_updates)
            standby.bind_fencing_counter(self.metrics.fenced_updates)
            # seed the standby so a primary that dies before the first
            # run boundary can still be failed over
            self.failover.ship_checkpoint(None)

        for store in cluster.stores:
            self.register_member(
                store.store_id,
                (lambda s: (lambda: s.is_available))(store), kind="store")
        self.register_member(PRIMARY_MEMBER, self._primary_alive,
                             kind="tuner")
        if injector is not None:
            injector.register_tuner(cluster.tuner)
            if self.failover is not None:
                injector.register_tuner(self.failover.standby)

    # -- membership ----------------------------------------------------------
    def register_member(self, member_id: str,
                        liveness: Callable[[], bool],
                        kind: str = "store") -> None:
        """Put one component under heartbeat surveillance.

        ``kind`` selects the reaction on suspicion: ``"store"`` evicts
        and rejoins through the recovery control plane, ``"tuner"``
        triggers failover, ``"replica"`` drains attached dispatchers.
        """
        self._members[member_id] = {"kind": kind, "liveness": liveness}
        # bootstrap: a member is presumed alive when it registers, so a
        # component that dies before the first poll is still suspectable
        # (the detector needs a last-heard tick to measure silence from)
        self.detector.heartbeat(member_id, self._now())

    def attach_dispatcher(self, dispatcher: Any) -> None:
        """Drain/undrain this dispatcher's replicas on suspicion."""
        self._dispatchers.append(dispatcher)

    def tuners(self) -> List[Tuner]:
        """Every Tuner this controller manages (for injector wiring)."""
        if self.failover is None:
            return [self.cluster.tuner]
        return [self.failover.primary, self.failover.standby]

    def _now(self) -> int:
        if self.injector is not None:
            return self.injector.clock
        return self._tick

    def _primary_alive(self) -> bool:
        if self.failover is not None:
            return self.failover.primary.is_available
        return self.cluster.tuner.is_available

    # -- checkpoint shipping (cluster.finetune hook) -------------------------
    def ship_checkpoint(self,
                        progress: Optional[FinetuneProgress] = None) -> None:
        if self.failover is not None:
            self.failover.ship_checkpoint(progress)

    # -- the heartbeat round -------------------------------------------------
    def poll(self) -> List[Tuple[str, str]]:
        """One heartbeat round; returns ``(transition, member)`` events.

        Advances the logical clock one tick (through the injector when
        attached, so scheduled faults can fire between rounds), records
        a heartbeat for every member whose liveness holds, and reacts to
        alive->suspect and suspect->alive transitions.
        """
        if self.injector is not None:
            self.injector.advance()
            tick = self.injector.clock
        else:
            self._tick += 1
            tick = self._tick
        events: List[Tuple[str, str]] = []
        for member_id, info in list(self._members.items()):
            alive = self._probe(member_id, info)
            if alive:
                self.metrics.heartbeats.inc(member=member_id)
                if self.detector.heartbeat(member_id, tick):
                    self._on_rejoin(member_id, info)
                    events.append(("rejoin", member_id))
            elif self.detector.check(member_id, tick):
                self.metrics.suspicions.inc(member=member_id)
                self._on_suspect(member_id, info)
                events.append(("suspect", member_id))
        return events

    def poll_until_quiet(self, max_rounds: int = 64) -> List[Tuple[str, str]]:
        """Poll until transitions stop arriving (bounded).

        "Quiet" means more consecutive event-free rounds than the
        suspicion deadline — any member about to be suspected would have
        transitioned within that window.
        """
        seen: List[Tuple[str, str]] = []
        quiet = 0
        for _ in range(max_rounds):
            events = self.poll()
            seen.extend(events)
            quiet = 0 if events else quiet + 1
            if quiet > self.config.suspect_after_ticks:
                break
        return seen

    def _probe(self, member_id: str, info: Dict[str, Any]) -> bool:
        alive = bool(info["liveness"]())
        if alive and self.config.account_heartbeats:
            try:
                # ndlint: fire-and-forget -- a failed probe IS the signal
                self.cluster.network.send(
                    CONTROLLER_NODE, member_id,
                    self.config.heartbeat_bytes, "heartbeat")
            except FaultError:
                return False
        return alive

    # -- reactions -----------------------------------------------------------
    def _on_suspect(self, member_id: str, info: Dict[str, Any]) -> None:
        kind = info["kind"]
        if kind == "store" and self.config.auto_evict:
            moved = self.cluster.reingest_orphans(member_id)
            self.metrics.store_evictions.inc(store=member_id)
            if moved:
                self.metrics.orphans_reingested.inc(len(moved),
                                                    store=member_id)
            for dispatcher in self._dispatchers:
                dispatcher.drain(member_id)
        elif kind == "tuner":
            if self.failover is not None and self.failover.can_promote():
                self.pending_resume = self.failover.promote()
        elif kind == "replica":
            for dispatcher in self._dispatchers:
                if dispatcher.drain(member_id):
                    self.metrics.replica_drains.inc(replica=member_id,
                                                    action="drain")

    def _on_rejoin(self, member_id: str, info: Dict[str, Any]) -> None:
        kind = info["kind"]
        if kind == "store" and self.config.auto_rejoin:
            self.cluster.recover(member_id)
            self.metrics.store_rejoins.inc(store=member_id)
            for dispatcher in self._dispatchers:
                dispatcher.undrain(member_id)
        elif kind == "replica":
            for dispatcher in self._dispatchers:
                if dispatcher.undrain(member_id):
                    self.metrics.replica_drains.inc(replica=member_id,
                                                    action="undrain")
        # a revived ex-primary tuner needs no reaction: it keeps its
        # stale epoch and the stores fence anything it distributes

    # -- resume --------------------------------------------------------------
    def resume_pending(self, **finetune_kwargs):
        """Finish the fine-tune interrupted by the failover, if any."""
        if self.pending_resume is None:
            return None
        progress, self.pending_resume = self.pending_resume, None
        return self.cluster.finetune(resume=progress, **finetune_kwargs)
